"""Ablations for the reproduction's calibration choices (see DESIGN.md).

Three design decisions deviate from or refine the paper's letter, and each
gets an ablation that regenerates the evidence for it:

1. **Amortized creation charge in topIndices** — the paper subtracts the raw
   δ⁺ from a per-statement benefit average; in this cost model that locks
   every new index out of the monitored set. The ablation compares AUTO
   under the raw charge (factor=1.0) vs the amortized default (1/histSize).
2. **histSize** — the window length behind benefit*/doi* (paper default 100).
3. **Partition refresh period** — how often the randomized choosePartition
   search re-runs (the paper re-runs per statement; the default here is
   every 10 statements plus whenever the monitored set changes).
"""

from __future__ import annotations

from repro.bench import FigureResult
from repro.core.driver import run_online
from repro.core.wfit import WFIT


def _auto_ratio(context, **wfit_options):
    tuner = WFIT(
        context.optimizer, context.transitions,
        idx_cnt=40, state_cnt=500, seed=1, **wfit_options,
    )
    result = run_online(
        tuner, context.statements, context.optimizer.cost, context.transitions
    )
    return context.ratio_series(result.total_work_series), tuner


def test_ablation_create_penalty(benchmark, context, save_result):
    def run():
        result = FigureResult(
            name="Ablation create-penalty",
            description="topIndices creation charge: amortized vs paper-raw",
        )
        series, _ = _auto_ratio(context)  # default: 1/hist_size
        result.add_curve("amortized", series)
        series, tuner = _auto_ratio(context, create_penalty_factor=1.0)
        result.add_curve("raw (paper)", series)
        result.notes.append(
            "raw charge admits new indices only if a single statement's "
            "average benefit exceeds the full creation cost"
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    assert result.final_ratio("amortized") >= result.final_ratio("raw (paper)") - 0.05


def test_ablation_hist_size(benchmark, context, save_result):
    def run():
        result = FigureResult(
            name="Ablation histSize",
            description="benefit*/doi* history window length",
        )
        for hist_size in (25, 100, 400):
            series, _ = _auto_ratio(context, hist_size=hist_size)
            result.add_curve(f"histSize={hist_size}", series)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    finals = [result.final_ratio(label) for label in result.curves]
    assert max(finals) - min(finals) < 0.5, "histSize should not be make-or-break"


def test_ablation_refresh_period(benchmark, context, save_result):
    def run():
        result = FigureResult(
            name="Ablation refresh-period",
            description="choosePartition randomized-search cadence",
        )
        for period in (1, 10, 50):
            series, tuner = _auto_ratio(context, partition_refresh_period=period)
            result.add_curve(f"refresh={period}", series)
            result.notes.append(
                f"refresh={period}: {tuner.repartition_count} repartitions"
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(result)
    dense = result.final_ratio("refresh=1")
    sparse = result.final_ratio("refresh=50")
    assert abs(dense - sparse) < 0.35, (
        "quality should degrade gracefully with sparser refreshes"
    )
