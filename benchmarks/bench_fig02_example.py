"""Example 4.1 / Figure 2 micro-benchmark.

Validates the worked example's exact values once, then benchmarks the raw
WFA `analyzeQuery` kernel — the inner loop every experiment pays per
statement and per part.
"""

from __future__ import annotations

import random

from repro.core.wfa import WFA, TransitionCosts
from repro.db import Index

from synth_bench import make_part_instance


def test_example_41_kernel(benchmark):
    a = Index("db.t", ("c",))
    costs = {
        "q1": {frozenset(): 15.0, frozenset({a}): 5.0},
        "q2": {frozenset(): 20.0, frozenset({a}): 2.0},
        "q3": {frozenset(): 15.0, frozenset({a}): 20.0},
    }
    transitions = TransitionCosts(create={a: 20.0}, drop={a: 0.0})

    def run_example():
        wfa = WFA([a], frozenset(), lambda q, X: costs[q][frozenset(X)], transitions)
        recs = [wfa.analyze_statement(q) for q in ("q1", "q2", "q3")]
        return wfa, recs

    wfa, recs = benchmark(run_example)
    assert [len(r) for r in recs] == [0, 1, 1]
    assert wfa.work_value(frozenset()) == 42.0
    assert wfa.work_value({a}) == 47.0
    scores = wfa.scores()
    assert scores[frozenset()] == 62.0
    assert scores[frozenset({a})] == 47.0


def test_wfa_analyze_kernel_8_indices(benchmark):
    """Throughput of one analyzeQuery over a 2^8-state part."""
    rng = random.Random(0)
    wfa, statements = make_part_instance(rng, part_size=8, n_statements=32)
    for statement in statements[:16]:
        wfa.analyze_statement(statement)

    remaining = statements[16:]

    def analyze_batch():
        for statement in remaining:
            wfa.analyze_statement(statement)

    benchmark(analyze_batch)
