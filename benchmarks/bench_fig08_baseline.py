"""Figure 8: baseline performance evaluation.

Regenerates the total-work-ratio curves for WFIT under stateCnt ∈
{2000, 500, 100}, WFIT-IND, and BC, all normalized to OPT over the same
fixed candidate set. Expected shape (paper): graceful degradation from
2000 to 100, a clearly larger drop for WFIT-IND, and BC well below WFIT
(~0.65 vs >0.9 of OPT at the end of the workload on the authors' testbed).
"""

from __future__ import annotations

from repro.bench import figure8_baseline


def test_figure8_baseline(benchmark, context, save_result):
    result = benchmark.pedantic(
        figure8_baseline, args=(context,), rounds=1, iterations=1
    )
    save_result(result)

    final = {label: result.final_ratio(label) for label in result.curves}
    # Shape assertions from the paper: WFIT dominates the independence
    # variant, which in turn beats BC; coarser stateCnt degrades gracefully.
    assert final["WFIT-2000"] >= final["WFIT-IND"] - 0.05
    assert final["WFIT-500"] >= final["WFIT-IND"] - 0.05
    assert final["WFIT-2000"] > final["BC"]
    assert final["WFIT-500"] > final["BC"]
    assert final["WFIT-IND"] > final["BC"] - 0.02
    # All online algorithms stay within the feasible band.
    for label, value in final.items():
        assert 0.0 < value <= 1.5, (label, value)
