"""Figure 9: the effect of DBA feedback.

Regenerates the GOOD / WFIT / BAD curves: a prescient DBA casts votes
aligned with (GOOD) or opposed to (BAD) the offline-optimal schedule.
Expected shape (paper): GOOD lifts the baseline toward OPT; BAD initially
drags it down but WFIT recovers from the erroneous votes instead of
collapsing (paper: still >0.9 by the end of the workload).
"""

from __future__ import annotations

from repro.bench import figure9_feedback


def test_figure9_feedback(benchmark, context, save_result):
    result = benchmark.pedantic(
        figure9_feedback, args=(context,), rounds=1, iterations=1
    )
    save_result(result)

    final = {label: result.final_ratio(label) for label in result.curves}
    assert final["GOOD"] > final["WFIT"], "good feedback must help"
    assert final["BAD"] <= final["WFIT"] + 1e-9, "bad feedback must not help"
    # Recovery: bad advice degrades but does not destroy performance.
    assert final["BAD"] > 0.5 * final["WFIT"]

    # GOOD should end close to OPT (paper: within ~10%).
    assert final["GOOD"] > 0.8
