"""Figure 10: DBA feedback under the independence assumption.

WFIT-IND keeps every index in a singleton part (doi ≡ 0), so its internal
statistics are knowingly inaccurate. The experiment shows that good DBA
feedback still improves its recommendations significantly — the scenario
where semi-automatic tuning shines because automated analysis alone is
handicapped. (The paper omits the BAD variant here as too artificial.)
"""

from __future__ import annotations

from repro.bench import figure10_feedback_independent


def test_figure10_feedback_independent(benchmark, context, save_result):
    result = benchmark.pedantic(
        figure10_feedback_independent, args=(context,), rounds=1, iterations=1
    )
    save_result(result)

    final = {label: result.final_ratio(label) for label in result.curves}
    assert final["GOOD-IND"] > final["WFIT-IND"], (
        "good feedback must lift the handicapped independence variant"
    )
