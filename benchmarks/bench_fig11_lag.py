"""Figure 11: the effect of delayed DBA responses.

The DBA requests and accepts WFIT's recommendation every T statements
(T ∈ {1, 25, 50, 75}); acceptance casts the lease-renewing implicit
feedback. Expected shape (paper): T=1 is full autonomy; larger lags lose
performance because most indices are beneficial only for short windows,
but the degradation flattens out rather than growing without bound.
"""

from __future__ import annotations

from repro.bench import figure11_lag


def test_figure11_lag(benchmark, context, save_result):
    result = benchmark.pedantic(
        figure11_lag, args=(context,), rounds=1, iterations=1
    )
    save_result(result)

    final = {label: result.final_ratio(label) for label in result.curves}
    assert final["WFIT"] >= final["LAG 25"], "lag must not beat full autonomy"
    assert final["LAG 25"] >= final["LAG 50"] - 0.05
    # Degradation does not explode: LAG 75 keeps a sane fraction of OPT.
    assert final["LAG 75"] > 0.25
