"""Figure 12: automatic maintenance of the stable partition (AUTO vs FIXED).

AUTO runs the full WFIT pipeline — candidate mining, benefit/interaction
statistics, choosePartition and repartition per statement — while FIXED
uses the offline-chosen partition throughout. Expected shape (paper): AUTO
at least matches FIXED overall and may exceed OPT on early (read-mostly)
phases because it can specialize candidates per phase while OPT is limited
to one candidate set for the whole workload.
"""

from __future__ import annotations

from repro.bench import figure12_auto


def test_figure12_auto(benchmark, context, save_result):
    result = benchmark.pedantic(
        figure12_auto, args=(context,), rounds=1, iterations=1
    )
    save_result(result)

    final = {label: result.final_ratio(label) for label in result.curves}
    assert final["AUTO"] >= final["FIXED"] - 0.05, (
        "automatic candidate maintenance should not lose to the fixed partition"
    )
