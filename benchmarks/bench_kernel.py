#!/usr/bin/env python
"""Bitset-kernel throughput benchmark: statements/sec for WFA⁺.

Measures the per-statement analysis throughput of the kernel-backed WFA⁺
against the retained seed implementation (``ReferenceWFA`` + a faithful
replica of the seed's frozenset-keyed what-if memo table) at partition
sizes 4, 8, and 12 over the figure-8 style benchmark workload, plus the
total number of actual what-if plan optimizations each run performed (the
machine-independent overhead metric of §6.2).

Both pipelines execute the same algorithm over the same workload with a
cold cache, so they pay for the same set of plan optimizations; the ratio
isolates the representation cost (frozenset hashing/decoding vs int
arithmetic) that the bitset kernel removes.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py           # full run
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick   # CI smoke

The full run records its table under ``benchmarks/results/`` and exits
non-zero if the size-8 speedup falls below the 3x acceptance floor
(disable with ``--no-check``).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pathlib
import pstats
import sys
import time
from collections import Counter
from typing import Dict, FrozenSet, List, Sequence

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import obs
from repro.ioutil import atomic_write_json
from repro.core import wfa_kernel
from repro.core.wfa_plus import WFAPlus
from repro.core.wfa_reference import ReferenceWFA
from repro.db import Index, StatsTransitionCosts, build_catalog
from repro.optimizer import WhatIfOptimizer, extract_indices
from repro.optimizer.cost_model import CostModel
from repro.workload import generate_workload, scaled_phases

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Acceptance floor: kernel statements/sec over seed statements/sec at the
#: partition-size-8 point.
SPEEDUP_FLOOR = 3.0


class SeedWhatIfCache:
    """The seed's what-if memoization, preserved for the baseline.

    Keys the cache on ``(statement, relevant frozenset)`` — computing the
    relevant subset by scanning the configuration and hashing a container
    per lookup — exactly as the pre-kernel ``WhatIfOptimizer`` did.
    """

    def __init__(self, stats) -> None:
        self._model = CostModel(stats)
        self._cache: Dict[object, float] = {}
        self.whatif_calls = 0
        self.optimizations = 0

    def cost(self, statement, config) -> float:
        self.whatif_calls += 1
        tables = set(statement.tables_referenced())
        relevant = frozenset(ix for ix in config if ix.table in tables)
        key = (statement, relevant)
        cached = self._cache.get(key)
        if cached is None:
            self.optimizations += 1
            cached = self._model.explain(statement, relevant).total_cost
            self._cache[key] = cached
        return cached


class ReferenceWFAPlus:
    """Seed WFA⁺: one ReferenceWFA per part (mirrors WFAPlus.analyze)."""

    def __init__(self, partition, initial, cost_fn, transitions) -> None:
        self._instances = [
            ReferenceWFA(sorted(part), frozenset(initial) & part, cost_fn, transitions)
            for part in partition
        ]

    def analyze_statement(self, statement) -> None:
        for instance in self._instances:
            instance.analyze_statement(statement)

    def recommend(self) -> FrozenSet[Index]:
        out: set = set()
        for instance in self._instances:
            out.update(instance.recommend())
        return frozenset(out)


def candidate_pool(statements, limit: int) -> List[Index]:
    """The ``limit`` most frequently extracted candidate indices."""
    counts: Counter = Counter()
    for statement in statements:
        counts.update(extract_indices(statement))
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [index for index, _ in ranked[:limit]]


def chunk_partition(pool: Sequence[Index], part_size: int):
    """Disjoint parts of exactly ``part_size`` from the (sorted) pool."""
    ordered = sorted(pool)
    usable = (len(ordered) // part_size) * part_size
    return [
        frozenset(ordered[i:i + part_size])
        for i in range(0, usable, part_size)
    ]


def run_kernel(stats, partition, statements, transitions, backend=None):
    """One kernel-pipeline run; ``backend`` pins the work-function kernel
    (None: the size-aware default selection).

    The returned registry snapshot is taken after the timer stops but
    while the run's optimizer is still alive — its what-if counters are
    exported through a weak registry collector, so a snapshot taken after
    this function returns would no longer see them.
    """
    optimizer = WhatIfOptimizer(stats)
    if backend is None:
        tuner = WFAPlus(partition, frozenset(), optimizer.cost, transitions)
    else:
        with wfa_kernel.force_backend(backend):
            tuner = WFAPlus(partition, frozenset(), optimizer.cost, transitions)
    started = time.perf_counter()
    for statement in statements:
        tuner.analyze_statement(statement)
    elapsed = time.perf_counter() - started
    snapshot = obs.default_registry().snapshot()
    return elapsed, optimizer.optimizations, tuner.recommend(), snapshot


def run_seed(stats, partition, statements, transitions):
    cache = SeedWhatIfCache(stats)
    tuner = ReferenceWFAPlus(partition, frozenset(), cache.cost, transitions)
    started = time.perf_counter()
    for statement in statements:
        tuner.analyze_statement(statement)
    elapsed = time.perf_counter() - started
    return elapsed, cache.optimizations, tuner.recommend()


def profile_kernel(stats, partition, statements, transitions, top=20,
                   backend=None):
    """cProfile top-``top`` of a (separate, untimed) kernel run.

    Run *after* the timed measurement so profiler overhead never leaks into
    the reported statements/sec; the returned lines go into the result JSON
    so an optimizer-bound regression is diagnosable straight from the CI
    artifact.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    run_kernel(stats, partition, statements, transitions, backend=backend)
    profiler.disable()
    buffer = io.StringIO()
    stats_view = pstats.Stats(profiler, stream=buffer)
    stats_view.sort_stats("cumulative").print_stats(top)
    lines = [
        line.rstrip() for line in buffer.getvalue().splitlines() if line.strip()
    ]
    # Drop the profiler preamble up to the column header.
    for i, line in enumerate(lines):
        if line.lstrip().startswith("ncalls"):
            return lines[i:]
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: part sizes 4/8, a shorter workload, no speedup gate",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale factor (default 0.05)")
    parser.add_argument("--per-phase", type=int, default=None,
                        help="statements per phase (default 12, quick 4)")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--no-check", action="store_true",
                        help="report only; do not enforce the 3x floor")
    parser.add_argument("--no-save", action="store_true",
                        help="do not write benchmarks/results/bench_kernel.json")
    parser.add_argument("--profile", action="store_true",
                        help="attach a cProfile top-20 (cumulative) of an "
                        "extra, untimed kernel run to every row")
    parser.add_argument("--backends", type=str, default=None,
                        help="comma-separated work-function kernel backends "
                        "to measure (default: every available backend — "
                        "'numpy,python' when numpy is importable)")
    parser.add_argument("--out", type=str, default=None,
                        help="result JSON path (default: "
                        "benchmarks/results/bench_kernel.json; point quick "
                        "runs elsewhere to keep the committed baseline clean)")
    args = parser.parse_args(argv)

    sizes = (4, 8) if args.quick else (4, 8, 12)
    per_phase = args.per_phase or (4 if args.quick else 12)
    scale = 0.02 if args.quick and args.scale == 0.05 else args.scale

    print(f"building catalog (scale={scale}) and workload "
          f"({per_phase} statements/phase, seed={args.seed})…")
    catalog, stats = build_catalog(scale=scale)
    workload = generate_workload(
        catalog, stats, scaled_phases(per_phase), seed=args.seed
    )
    statements = workload.statements
    transitions = StatsTransitionCosts(stats)
    pool = candidate_pool(statements, limit=2 * max(sizes))

    if args.backends:
        backends = [name.strip() for name in args.backends.split(",") if name.strip()]
        for name in backends:
            if name not in wfa_kernel.available_backends():
                parser.error(
                    f"backend {name!r} not available here "
                    f"(have {wfa_kernel.available_backends()})"
                )
    else:
        backends = wfa_kernel.available_backends()

    rows = []
    for part_size in sizes:
        partition = chunk_partition(pool, part_size)
        if not partition:
            print(f"part size {part_size}: not enough candidates "
                  f"({len(pool)}), skipped")
            continue
        # One seed-baseline run per size, shared by every backend row: the
        # seed pipeline has no kernel and re-measuring it would only add
        # noise to the seed-relative speedups.
        seed_s, seed_opts, seed_rec = run_seed(
            stats, partition, statements, transitions
        )
        for backend in backends:
            # Registry delta around the timed run (snapshots taken outside
            # the timer): perf_gate can gate on counters, not just st/s.
            obs_before = obs.default_registry().snapshot()
            kernel_s, kernel_opts, kernel_rec, obs_after = run_kernel(
                stats, partition, statements, transitions, backend=backend
            )
            obs_delta = obs.diff_snapshots(obs_before, obs_after)
            row = {
                "part_size": part_size,
                "backend": backend,
                "parts": len(partition),
                "tracked_states": sum(1 << len(p) for p in partition),
                "statements": len(statements),
                "kernel_stmts_per_sec": len(statements) / kernel_s,
                "seed_stmts_per_sec": len(statements) / seed_s,
                "speedup": seed_s / kernel_s,
                "kernel_optimizations": kernel_opts,
                "seed_optimizations": seed_opts,
                "recommendations_match": kernel_rec == seed_rec,
                "obs": obs_delta,
            }
            if args.profile:
                row["profile_kernel_top20"] = profile_kernel(
                    stats, partition, statements, transitions, backend=backend
                )
            rows.append(row)

    header = (
        f"{'size':>4} {'backend':>7} {'parts':>5} {'states':>6} "
        f"{'kernel st/s':>12} {'seed st/s':>10} {'speedup':>8} "
        f"{'whatif opts':>11} {'rec==':>5}"
    )
    print()
    print("bitset kernel vs seed frozenset WFA+ "
          f"({len(statements)} statements, figure-8 workload)")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['part_size']:>4} {row['backend']:>7} "
            f"{row['parts']:>5} {row['tracked_states']:>6} "
            f"{row['kernel_stmts_per_sec']:>12.1f} "
            f"{row['seed_stmts_per_sec']:>10.1f} "
            f"{row['speedup']:>7.2f}x "
            f"{row['kernel_optimizations']:>11} "
            f"{str(row['recommendations_match']):>5}"
        )
    if args.profile:
        for row in rows:
            print(f"\ncProfile top-20 (cumulative), part size "
                  f"{row['part_size']}, backend {row['backend']}:")
            for line in row["profile_kernel_top20"]:
                print(f"  {line}")

    if not args.no_save:
        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "scale": scale,
            "per_phase": per_phase,
            "seed": args.seed,
            "quick": args.quick,
            "obs_enabled": obs.enabled(),
            "rows": rows,
        }
        out = (
            pathlib.Path(args.out) if args.out
            else RESULTS_DIR / "bench_kernel.json"
        )
        out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(out, payload)
        print(f"\nsaved {out}")

    for row in rows:
        if not row["recommendations_match"]:
            print(f"FAIL: recommendations diverged at part size "
                  f"{row['part_size']} (backend {row['backend']})")
            return 1
    if not args.quick and not args.no_check:
        gates = [row for row in rows if row["part_size"] == 8]
        if not gates:
            print("FAIL: no size-8 measurement for the speedup gate")
            return 1
        for gate in gates:
            if gate["speedup"] < SPEEDUP_FLOOR:
                print(f"FAIL: size-8 speedup {gate['speedup']:.2f}x "
                      f"({gate['backend']}) < {SPEEDUP_FLOOR}x floor")
                return 1
            print(f"size-8 speedup {gate['speedup']:.2f}x "
                  f"({gate['backend']}) ≥ {SPEEDUP_FLOOR}x floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
