"""§6.2 overhead numbers: per-statement analysis cost.

The paper reports ≈300 ms/query for the Java-over-DB2 prototype, 5–100
what-if optimizations per query, and that stateCnt=100 cuts overhead ~25×
vs 2000 (complexity grows quadratically with stateCnt). Machine-independent
comparison here is optimizer *optimizations* per statement; wall-clock is
reported for the pure-Python substrate.
"""

from __future__ import annotations

from repro.bench import overhead_table


def test_overhead(benchmark, context, save_result):
    result = benchmark.pedantic(
        overhead_table, args=(context,), rounds=1, iterations=1
    )
    save_result(result)

    # stateCnt=100 must be cheaper per statement than stateCnt=2000 in
    # tracked-state terms; wall-clock follows on any reasonable machine.
    ms_2000 = result.curves["WFIT-2000"][1]
    ms_100 = result.curves["WFIT-100"][1]
    assert ms_100 <= ms_2000 * 1.5
    # The cached what-if interface answers most lookups without optimizing.
    for label in ("WFIT-2000", "WFIT-500", "WFIT-100"):
        assert result.curves[label][2] <= result.curves[label][3] + 1e-9
