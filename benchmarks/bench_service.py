#!/usr/bin/env python
"""Service throughput benchmark: shared engine vs independent sessions.

Measures the aggregate statements/sec of N clients with *overlapping*
workloads served two ways:

* **shared** — one :class:`~repro.service.engine.TuningEngine` (one WFIT
  core, one what-if optimizer) multiplexing all N sessions through the
  micro-batched ingest queue. Overlap means each client's statements hit
  the shared statement/IBG caches warmed by the other clients.
* **independent** — N legacy-shaped :class:`~repro.advisor.AdvisorSession`
  objects, each with its own optimizer and tuner (each now a thin client
  of its own private engine, so per-statement bookkeeping is identical to
  the shared mode and the ratio isolates cache sharing).

Both modes analyze the same 4×|W| statement stream under the same fixed
stable partition. The shared engine wins because each plan derivation
(template build + memo miss) is paid once instead of N times. The margin
is structurally smaller since ISSUE 4's batched plan templates: both modes
pay identical per-statement WFA work, and the optimizer work that sharing
amortizes collapsed from full re-planning to a menu argmin — the shared
engine now wins ~1.6x rather than the pre-template ~3.5x, because the
*absolute* per-statement cost dropped ~5x for everyone. The full run
enforces a recalibrated 1.25x floor.

A second section measures **partition-parallel ingest**: the shared engine
re-runs a many-session trace (default 32 sessions over 4 large parts) once
per worker count (default 1 and 4), pinning aggregate st/s per pool size.
The 1-worker row is the determinism oracle — every row must produce
exactly the same recommendations and totWork — and on capable hosts
(≥4 cpus, numpy kernel backend) the full run enforces a ≥2.5× floor at
4 workers; under-provisioned runners WARN instead (the fan-out runs on
threads, so cores and a GIL-releasing kernel are prerequisites, mirroring
perf_gate's unavailable-backend handling).

A third section measures the **priority flood** QoS contract (ISSUE 10):
an interactive session trickles statements into a live engine while a
large background flood sits queued. Paired rounds pin the interactive
p95 submit→analyzed latency with and without the flood; the scheduler's
foreground-first drain and one-statement background lane must keep the
ratio ≤1.25× (enforced on full runs; the machine-independent invariant —
the interactive stream finishes while flood backlog remains — gates every
run, quick included).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py           # full run
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from bench_kernel import candidate_pool, chunk_partition

from repro import obs
from repro.advisor import AdvisorSession
from repro.db import StatsTransitionCosts, build_catalog
from repro.ioutil import atomic_write_json
from repro.optimizer import WhatIfOptimizer
from repro.service import Durability, TuningEngine
from repro.workload import MultiClientTrace, generate_workload, scaled_phases

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Acceptance floor: shared-engine aggregate statements/sec over N
#: independent sessions on overlapping workloads. Originally 2.0 (ISSUE 2);
#: recalibrated to 1.25 after ISSUE 4's plan templates made the per-session
#: optimizer work that sharing amortizes ~5x cheaper in absolute terms (see
#: module docstring) — the gate still catches any loss of cache sharing.
SPEEDUP_FLOOR = 1.25

#: Partition-parallel ingest acceptance floor (ISSUE 6): aggregate st/s of
#: the shared engine at PARALLEL_WORKERS_GATE workers / PARALLEL_CLIENTS_GATE
#: sessions must be at least this multiple of the 1-worker pin. Enforced
#: only on capable hosts: the fan-out runs on threads, so it needs >=
#: PARALLEL_WORKERS_GATE cores and the (GIL-releasing) numpy kernel backend
#: — under-provisioned runners report the measurement and WARN, mirroring
#: perf_gate's unavailable-backend handling.
PARALLEL_SPEEDUP_FLOOR = 2.5
PARALLEL_WORKERS_GATE = 4
PARALLEL_CLIENTS_GATE = 32


def _parallel_gate_capable(parallel: dict) -> bool:
    """Whether the parallel floor is meaningful for this measurement."""
    return (
        parallel["clients"] >= PARALLEL_CLIENTS_GATE
        and (parallel["cpu_count"] or 1) >= PARALLEL_WORKERS_GATE
        and "numpy" in parallel["backend"]
        and str(PARALLEL_WORKERS_GATE) in parallel["speedup"]
    )


def run_parallel_scaling(stats, statements, args):
    """Shared-engine aggregate st/s keyed by worker count.

    Every worker count analyzes the identical trace (``--scaling-clients``
    sessions round-robin over the same statements) on a fresh engine with a
    fresh optimizer, so rows differ only in pool size. Parts are sized
    large (``--scaling-part-size``) so the per-part kernel relaxation — the
    phase the pool parallelizes — dominates each statement. The rows'
    recommendations and totWork must be exactly equal (``identical``): the
    1-worker row is the determinism oracle.
    """
    worker_counts = [int(w) for w in str(args.workers).split(",") if w.strip()]
    pool_size = args.scaling_parts * args.scaling_part_size
    pool = candidate_pool(statements, limit=pool_size)
    partition = chunk_partition(pool, args.scaling_part_size)
    clients = [f"client-{i}" for i in range(args.scaling_clients)]
    trace = MultiClientTrace.round_robin(
        {client: statements for client in clients}
    )
    rows = []
    outcomes = []
    backend = None
    for workers in worker_counts:
        optimizer = WhatIfOptimizer(stats)
        engine = TuningEngine(
            optimizer,
            StatsTransitionCosts(stats),
            batch_size=args.batch_size,
            workers=workers,
            fixed_partition=partition,
        )
        obs_before = obs.default_registry().snapshot()
        started = time.perf_counter()
        engine.submit_many(trace)
        engine.pump()
        elapsed = time.perf_counter() - started
        metrics = engine.metrics()
        backend = engine.tuner.kernel_backend
        rows.append({
            "workers": workers,
            "elapsed_seconds": elapsed,
            "stmts_per_sec": len(trace) / elapsed,
            "parallel_efficiency": metrics["parallel"]["parallel_efficiency"],
            "backend": backend,
            # Windowed per-row cache counters (reset=True restarts the
            # optimizer's counters for the next consumer) plus the registry
            # delta over just this row's work — the engine/optimizer must
            # still be alive here or their weak collectors drop out.
            "cache": optimizer.cache_stats(reset=True),
            "obs": obs.diff_snapshots(
                obs_before, obs.default_registry().snapshot()
            ),
        })
        outcomes.append((
            tuple(sorted(ix.name for ix in engine.tuner.recommend())),
            engine.total_work,
        ))
        engine.close()
    by_workers = {row["workers"]: row["stmts_per_sec"] for row in rows}
    serial = by_workers.get(1)
    speedup = {
        str(w): (rate / serial if serial else None)
        for w, rate in by_workers.items()
        if w != 1
    }
    return {
        "clients": args.scaling_clients,
        "part_size": args.scaling_part_size,
        "parts": len(partition),
        "pool_indices": len(pool),
        "statements_total": len(trace),
        "cpu_count": os.cpu_count(),
        "backend": backend,
        "rows": rows,
        "identical": len(set(outcomes)) == 1,
        "speedup": speedup,
    }


#: Priority-flood acceptance (ISSUE 10): with a large background flood
#: queued, an interactive session's p95 submit→analyzed wall latency must
#: stay within this factor of its no-flood baseline. The scheduler's
#: contract makes this achievable: foreground batches always form before
#: background ones, and background drains one statement per cycle
#: (``background_batch_size=1``), so head-of-line blocking is bounded by a
#: single (cache-warm, cheap) flood statement.
PRIORITY_FLOOD_FACTOR = 1.25


def _nearest_rank_p95(samples):
    ordered = sorted(samples)
    rank = -(-95 * len(ordered) // 100) - 1  # ceil(0.95·n) − 1
    return ordered[max(0, min(len(ordered) - 1, rank))]


def run_priority_flood(stats, partition, statements, args, *, rounds=3):
    """Interactive p95 latency with vs. without a queued background flood.

    Each round runs the same interactive trickle twice on fresh engines
    with the background drain thread live: once against an empty queue
    (baseline) and once with a flood of background statements pre-queued.
    The flood is ``--flood-count`` copies of one warm statement — a
    queued backlog whose per-statement cost is mostly cache hits, the
    worst case for *queueing* (depth) but not an artificial inflation of
    head-of-line blocking. Latency is wall-clock submit→analyzed per
    interactive statement, measured by polling the session's processed
    count. Paired rounds with a median-of-ratios, exactly like the
    WAL-overhead section: adjacent runs share a host-throughput regime.

    Also asserts the machine-independent scheduling invariants: every
    interactive statement is analyzed while flood backlog still remains
    (foreground never waits behind the flood), and nothing is rejected.
    """
    interactive_statements = statements[: args.flood_interactive]
    flood_statement = statements[0]

    def _run(flood_count):
        engine = TuningEngine(
            WhatIfOptimizer(stats),
            StatsTransitionCosts(stats),
            batch_size=args.batch_size,
            background_batch_size=1,
            fixed_partition=partition,
        )
        # Warm the flood statement's caches so queued copies are cheap —
        # the flood stresses queue depth, not first-touch plan derivation.
        engine.submit("bg", flood_statement, priority="background")
        engine.pump()
        session = engine.session("fg", priority="interactive")
        if flood_count:
            engine.submit_many(
                [("bg", flood_statement, "background")] * flood_count
            )
        engine.start(poll_interval=0.001)
        latencies = []
        processed = session.statements_processed
        for statement in interactive_statements:
            started = time.perf_counter()
            session.submit(statement)
            processed += 1
            while session.statements_processed < processed:
                time.sleep(0.0002)
            latencies.append(time.perf_counter() - started)
            # Trickle gap: decouples each submit from the completion of
            # the previous statement, so arrivals sample random phases of
            # the background drain cycle instead of synchronizing to its
            # worst case (a background statement starting the instant the
            # interactive one finished).
            time.sleep(0.001)
        flood_remaining = engine.queue_depths["background"]
        rejections = engine.backpressure_rejections
        engine.stop(drain=False)
        engine.close()
        return _nearest_rank_p95(latencies) * 1000.0, flood_remaining, rejections

    baseline_p95 = flood_p95 = None
    flood_remaining = rejections = 0
    ratios = []
    # A latency bench over ~0.5 ms statements cannot tolerate the default
    # 5 ms GIL switch interval: every submit→drain-thread handoff would
    # cost up to one full slice, drowning the scheduler's contribution.
    switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        for _ in range(rounds):
            base, _, _ = _run(0)
            baseline_p95 = (
                base if baseline_p95 is None else min(baseline_p95, base)
            )
            flood, flood_remaining, rejections = _run(args.flood_count)
            flood_p95 = (
                flood if flood_p95 is None else min(flood_p95, flood)
            )
            ratios.append(flood / base)
    finally:
        sys.setswitchinterval(switch_interval)
    ratios.sort()
    return {
        "interactive_statements": len(interactive_statements),
        "flood_count": args.flood_count,
        "baseline_p95_ms": baseline_p95,
        "flood_p95_ms": flood_p95,
        "ratio": ratios[len(ratios) // 2],
        "pair_ratios": ratios,
        "flood_remaining_at_fg_done": flood_remaining,
        "backpressure_rejections": rejections,
        "foreground_first": flood_remaining > 0,
        "factor": PRIORITY_FLOOD_FACTOR,
    }


#: The WAL-overhead section drives at least this many *unique* statements
#: per mode. A quick trace (~100 statements, ~40 ms) is far too small to
#: measure a ~10 µs/append + group-committed-fsync overhead against —
#: startup costs and timer jitter dominate and the ratio swings ±30%.
#: Repeating the trace is no fix: repeats are statement-cache hits, which
#: shrinks the per-statement base cost and inflates the apparent relative
#: overhead instead of stabilizing it.
WAL_BENCH_MIN_STATEMENTS = 1200


def run_wal_overhead(stats, partition, statements, batch_size,
                     *, fsync_interval_ms):
    """Per-statement ingest throughput with and without a WAL attached.

    Both runs drive the identical single-client statement stream one
    ``submit`` at a time (so the durable run pays one WAL append per
    statement — ``submit_many`` would batch the whole stream into one
    record and hide the cost), then pump. The durable run uses a
    throwaway directory and the given group-commit interval; its
    recommendations and totWork must be bit-identical to the non-durable
    run (logging must never perturb tuning).
    """

    def _run(durable_dir):
        optimizer = WhatIfOptimizer(stats)
        engine = TuningEngine(
            optimizer,
            StatsTransitionCosts(stats),
            batch_size=batch_size,
            fixed_partition=partition,
        )
        durability = None
        if durable_dir is not None:
            durability = Durability(
                durable_dir, fsync_interval_ms=fsync_interval_ms
            )
            durability.attach(engine)
        started = time.perf_counter()
        for statement in statements:
            engine.submit("wal-bench", statement)
        engine.pump()
        elapsed = time.perf_counter() - started
        outcome = (
            tuple(sorted(ix.name for ix in engine.tuner.recommend())),
            engine.total_work,
        )
        wal_stats = None
        if durability is not None:
            wal = durability.wal
            wal_stats = {
                "records": wal.records_appended,
                "bytes": wal.bytes_appended,
            }
            durability.checkpoint(full=True)  # untimed: proves the full cycle
            durability.close()
        engine.close()
        return len(statements) / elapsed, outcome, wal_stats

    # Paired rounds, median per-pair ratio kept. The WAL's true cost is a
    # few percent of per-statement analysis time, but host throughput
    # drifts ±20% between CPU regimes on shared runners — comparing a
    # best-of max per mode lets the two maxima sample *different* regimes
    # and swing the ratio below any honest floor. Adjacent off/on runs
    # share a regime, so their per-pair ratio cancels the drift, and the
    # median across pairs shrugs off a single fsync spike or stall.
    off_rate = on_rate = 0.0
    off_outcome = on_outcome = wal_stats = None
    ratios = []
    for round_index in range(5):
        rate, off_outcome, _ = _run(None)
        off_rate = max(off_rate, rate)
        with tempfile.TemporaryDirectory(prefix="bench-wal-") as tmp:
            on, on_outcome, wal_stats = _run(os.path.join(tmp, "durable"))
            on_rate = max(on_rate, on)
            ratios.append(on / rate)
    ratios.sort()
    return {
        "fsync_interval_ms": fsync_interval_ms,
        "statements": len(statements),
        "off_stmts_per_sec": off_rate,
        "on_stmts_per_sec": on_rate,
        "ratio": ratios[len(ratios) // 2],
        "pair_ratios": ratios,
        "wal_records": wal_stats["records"],
        "wal_bytes": wal_stats["bytes"],
        "identical": off_outcome == on_outcome,
    }


def run_shared(stats, partition, trace, batch_size):
    optimizer = WhatIfOptimizer(stats)
    engine = TuningEngine(
        optimizer,
        StatsTransitionCosts(stats),
        batch_size=batch_size,
        fixed_partition=partition,
    )
    started = time.perf_counter()
    engine.submit_many(trace)
    engine.pump()
    elapsed = time.perf_counter() - started
    return elapsed, engine, optimizer


def run_independent(stats, partition, clients, statements):
    sessions = {}
    optimizers = {}
    for client in clients:
        optimizer = WhatIfOptimizer(stats)
        optimizers[client] = optimizer
        sessions[client] = AdvisorSession(
            optimizer,
            StatsTransitionCosts(stats),
            fixed_partition=partition,
        )
    started = time.perf_counter()
    for client in clients:
        sessions[client].execute_many(statements)
    elapsed = time.perf_counter() - started
    return elapsed, sessions, optimizers


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: smaller catalog/workload, no floor gate")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale factor (default 0.05)")
    parser.add_argument("--per-phase", type=int, default=None,
                        help="statements per phase (default 8, quick 3)")
    parser.add_argument("--clients", type=int, default=4,
                        help="number of concurrent sessions (default 4)")
    parser.add_argument("--part-size", type=int, default=4,
                        help="fixed-partition part size (default 4)")
    parser.add_argument("--pool-limit", type=int, default=None,
                        help="candidate pool size (default 4×part-size)")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="shared-engine ingest micro-batch size")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--workers", type=str, default="1,4",
                        help="comma list of worker counts for the "
                        "parallel-scaling rows (default 1,4)")
    parser.add_argument("--scaling-clients", type=int, default=None,
                        help=f"sessions in the parallel-scaling rows "
                        f"(default {PARALLEL_CLIENTS_GATE}, quick 8)")
    parser.add_argument("--scaling-part-size", type=int, default=None,
                        help="part size for the scaling rows (default 12, "
                        "quick 6; large parts make the fanned-out kernel "
                        "phase dominate)")
    parser.add_argument("--scaling-parts", type=int, default=None,
                        help="number of parts for the scaling rows "
                        "(default 4, quick 2)")
    parser.add_argument("--no-parallel", action="store_true",
                        help="skip the worker-count scaling rows")
    parser.add_argument("--no-wal", action="store_true",
                        help="skip the WAL-overhead section")
    parser.add_argument("--no-flood", action="store_true",
                        help="skip the priority-flood section")
    parser.add_argument("--flood-count", type=int, default=None,
                        help="queued background statements in the flood "
                        "(default 4000, quick 1500)")
    parser.add_argument("--flood-interactive", type=int, default=None,
                        help="interactive statements trickled per run "
                        "(default 60, quick 20)")
    parser.add_argument("--wal-fsync-ms", type=float, default=5.0,
                        help="group-commit interval for the WAL-overhead "
                        "section (default 5.0 ms)")
    parser.add_argument("--no-check", action="store_true",
                        help="report only; do not enforce the 2x floor")
    parser.add_argument("--no-save", action="store_true",
                        help="do not write benchmarks/results/bench_service.json")
    parser.add_argument("--out", type=str, default=None,
                        help="result JSON path (default: "
                        "benchmarks/results/bench_service.json; point quick "
                        "runs elsewhere to keep the committed baseline clean)")
    args = parser.parse_args(argv)

    per_phase = args.per_phase or (3 if args.quick else 8)
    scale = 0.02 if args.quick and args.scale == 0.05 else args.scale
    if args.scaling_clients is None:
        args.scaling_clients = 8 if args.quick else PARALLEL_CLIENTS_GATE
    if args.scaling_part_size is None:
        args.scaling_part_size = 6 if args.quick else 12
    if args.scaling_parts is None:
        args.scaling_parts = 2 if args.quick else 4
    if args.flood_count is None:
        args.flood_count = 1500 if args.quick else 4000
    if args.flood_interactive is None:
        args.flood_interactive = 20 if args.quick else 60

    print(f"building catalog (scale={scale}) and workload "
          f"({per_phase} statements/phase, seed={args.seed})…")
    catalog, stats = build_catalog(scale=scale)
    workload = generate_workload(
        catalog, stats, scaled_phases(per_phase), seed=args.seed
    )
    statements = list(workload.statements)
    pool = candidate_pool(statements, limit=args.pool_limit or 4 * args.part_size)
    partition = chunk_partition(pool, args.part_size)
    clients = [f"client-{i}" for i in range(args.clients)]
    # Overlapping workloads: every client streams the same statements; the
    # shared engine sees them round-robin interleaved.
    trace = MultiClientTrace.round_robin(
        {client: statements for client in clients}
    )
    total = len(trace)

    obs_shared_before = obs.default_registry().snapshot()
    shared_s, engine, shared_opt = run_shared(
        stats, partition, trace, args.batch_size
    )
    obs_shared = obs.diff_snapshots(
        obs_shared_before, obs.default_registry().snapshot()
    )
    obs_indep_before = obs.default_registry().snapshot()
    indep_s, sessions, indep_opts = run_independent(
        stats, partition, clients, statements
    )
    obs_indep = obs.diff_snapshots(
        obs_indep_before, obs.default_registry().snapshot()
    )

    # Windowed read: per-section counts, and the shared optimizer's
    # counters restart so any later section reports only its own work.
    shared_stats = shared_opt.cache_stats(reset=True)
    indep_optimizations = sum(o.optimizations for o in indep_opts.values())
    recs = {c: sessions[c].tuner.recommend() for c in clients}
    independents_agree = len(set(map(frozenset, recs.values()))) == 1

    def _session_latencies(metrics):
        return {
            client_id: {
                "p50_ms": entry["latency_p50_ms"],
                "p95_ms": entry["latency_p95_ms"],
            }
            for client_id, entry in metrics["sessions"].items()
        }

    shared_latencies = _session_latencies(engine.metrics())
    indep_latencies = {
        client: _session_latencies(sessions[client].engine.metrics())["dba"]
        for client in clients
    }

    result = {
        "scale": scale,
        "per_phase": per_phase,
        "seed": args.seed,
        "quick": args.quick,
        "clients": args.clients,
        "part_size": args.part_size,
        "batch_size": args.batch_size,
        "statements_per_client": len(statements),
        "total_statements": total,
        "shared": {
            "elapsed_seconds": shared_s,
            "stmts_per_sec": total / shared_s,
            "optimizations": shared_stats["optimizations"],
            "statement_hit_rate": shared_stats["statement_hit_rate"],
            "template_hit_rate": shared_stats["template_hit_rate"],
            "ibg_hit_rate": shared_stats["ibg_hit_rate"],
            "batches": engine.batches_processed,
            "session_latency": shared_latencies,
            "obs": obs_shared,
        },
        "independent": {
            "elapsed_seconds": indep_s,
            "stmts_per_sec": total / indep_s,
            "optimizations": indep_optimizations,
            "sessions_agree": independents_agree,
            "session_latency": indep_latencies,
            "obs": obs_indep,
        },
        "speedup": indep_s / shared_s,
        "obs_enabled": obs.enabled(),
    }

    wal = None
    if not args.no_wal:
        # A dedicated single-client stream of unique statements: enough
        # work per statement (fresh plan derivations, not cache hits) and
        # enough of them that the ~10 µs/append WAL cost is measured
        # against real analysis cost, not timer jitter.
        phases = max(1, len(statements) // per_phase)
        wal_per_phase = max(
            per_phase, -(-WAL_BENCH_MIN_STATEMENTS // phases)
        )
        wal_workload = generate_workload(
            catalog, stats, scaled_phases(wal_per_phase), seed=args.seed
        )
        wal_statements = list(wal_workload.statements)
        print(f"\nWAL overhead: {len(wal_statements)} single-client "
              f"statements, {args.wal_fsync_ms:g} ms group commit…")
        wal = run_wal_overhead(
            stats, partition, wal_statements, args.batch_size,
            fsync_interval_ms=args.wal_fsync_ms,
        )
        result["wal"] = wal

    flood = None
    if not args.no_flood:
        print(f"\npriority flood: {args.flood_count} background statements "
              f"queued, {args.flood_interactive} interactive trickled…")
        flood = run_priority_flood(stats, partition, statements, args)
        result["priority_flood"] = flood

    parallel = None
    if not args.no_parallel:
        print("\nparallel scaling: "
              f"{args.scaling_clients} sessions, "
              f"{args.scaling_parts}×size-{args.scaling_part_size} parts, "
              f"workers {args.workers}…")
        parallel = run_parallel_scaling(stats, statements, args)
        result["parallel"] = parallel

    print()
    print(f"{args.clients} overlapping sessions × {len(statements)} statements "
          f"({total} total), part size {args.part_size}")
    print(f"{'mode':<12} {'st/s':>10} {'elapsed':>9} {'whatif opts':>12}")
    print("-" * 46)
    print(f"{'shared':<12} {result['shared']['stmts_per_sec']:>10.1f} "
          f"{shared_s:>8.2f}s {result['shared']['optimizations']:>12}")
    print(f"{'independent':<12} {result['independent']['stmts_per_sec']:>10.1f} "
          f"{indep_s:>8.2f}s {indep_optimizations:>12}")
    print(f"speedup {result['speedup']:.2f}x; shared statement-cache hit rate "
          f"{shared_stats['statement_hit_rate']:.2f}")
    shared_p95 = max(v["p95_ms"] for v in shared_latencies.values())
    indep_p95 = max(v["p95_ms"] for v in indep_latencies.values())
    print(f"per-session statement latency (worst client): "
          f"shared p95 {shared_p95:.3f} ms, independent p95 {indep_p95:.3f} ms")

    if wal is not None:
        print()
        print(f"WAL overhead ({wal['wal_records']} records, "
              f"{wal['wal_bytes']} bytes, "
              f"{wal['fsync_interval_ms']:g} ms group commit)")
        print(f"{'mode':<10} {'st/s':>10}")
        print("-" * 22)
        print(f"{'wal off':<10} {wal['off_stmts_per_sec']:>10.1f}")
        print(f"{'wal on':<10} {wal['on_stmts_per_sec']:>10.1f}")
        print(f"durable/non-durable throughput ratio {wal['ratio']:.3f}; "
              f"outcomes identical: {wal['identical']}")

    if flood is not None:
        print()
        print(f"priority flood ({flood['flood_count']} background queued, "
              f"{flood['interactive_statements']} interactive trickled)")
        print(f"{'mode':<10} {'p95 ms':>10}")
        print("-" * 22)
        print(f"{'no flood':<10} {flood['baseline_p95_ms']:>10.3f}")
        print(f"{'flood':<10} {flood['flood_p95_ms']:>10.3f}")
        print(f"interactive p95 flood/no-flood ratio {flood['ratio']:.3f}; "
              f"flood backlog remaining when interactive stream finished: "
              f"{flood['flood_remaining_at_fg_done']}")

    if parallel is not None:
        print()
        print(f"parallel scaling ({parallel['clients']} sessions × "
              f"{parallel['parts']} parts of size {parallel['part_size']}, "
              f"{parallel['statements_total']} statements, backend "
              f"{parallel['backend']}, {parallel['cpu_count']} cpus)")
        print(f"{'workers':<8} {'st/s':>10} {'elapsed':>9} {'efficiency':>11}")
        print("-" * 42)
        for row in parallel["rows"]:
            print(f"{row['workers']:<8} {row['stmts_per_sec']:>10.1f} "
                  f"{row['elapsed_seconds']:>8.2f}s "
                  f"{row['parallel_efficiency']:>11.2f}")
        for workers, ratio in sorted(parallel["speedup"].items()):
            if ratio is not None:
                print(f"speedup at {workers} workers: {ratio:.2f}x vs the "
                      f"1-worker pin")
        print("serial-vs-parallel outcomes identical: "
              f"{parallel['identical']}")

    if not args.no_save:
        out = (
            pathlib.Path(args.out) if args.out
            else RESULTS_DIR / "bench_service.json"
        )
        out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(out, result)
        print(f"saved {out}")

    if not independents_agree:
        print("FAIL: independent sessions diverged (determinism bug)")
        return 1
    if wal is not None and not wal["identical"]:
        # Correctness, not perf: attaching a WAL must never perturb the
        # tuner, so this gates every run, quick included. The throughput
        # ratio itself is gated by perf_gate.py --wal-overhead.
        print("FAIL: durable and non-durable runs produced different "
              "recommendations or totWork (WAL perturbed tuning)")
        return 1
    if flood is not None and not flood["foreground_first"]:
        # Correctness, not perf: the scheduler's contract is that the
        # interactive trickle never waits behind the flood, so the whole
        # backlog must still be queued (minus the one-per-idle-cycle
        # background drains) when the last interactive statement lands.
        # Gates every run, quick included; the p95 factor itself is gated
        # by perf_gate.py --priority-flood.
        print("FAIL: background flood fully drained before the interactive "
              "stream finished (priority scheduling broken)")
        return 1
    if flood is not None and flood["backpressure_rejections"]:
        print("FAIL: admission control rejected flood submissions sized "
              "within the queue limit")
        return 1
    if parallel is not None and not parallel["identical"]:
        # Correctness, not perf: bit-identity across worker counts is the
        # contract, so it gates every run, quick included.
        print("FAIL: worker counts produced different recommendations or "
              "totWork (parallel determinism bug)")
        return 1
    if not args.quick and not args.no_check:
        if result["speedup"] < SPEEDUP_FLOOR:
            print(f"FAIL: shared-engine speedup {result['speedup']:.2f}x "
                  f"< {SPEEDUP_FLOOR}x floor")
            return 1
        print(f"shared-engine speedup {result['speedup']:.2f}x "
              f"≥ {SPEEDUP_FLOOR}x floor")
        if flood is not None:
            if flood["ratio"] > PRIORITY_FLOOD_FACTOR:
                print(f"FAIL: interactive p95 under flood "
                      f"{flood['ratio']:.3f}x of no-flood baseline > "
                      f"{PRIORITY_FLOOD_FACTOR}x ceiling")
                return 1
            print(f"interactive p95 under flood {flood['ratio']:.3f}x "
                  f"≤ {PRIORITY_FLOOD_FACTOR}x ceiling")
        if parallel is not None:
            gate_ratio = parallel["speedup"].get(str(PARALLEL_WORKERS_GATE))
            if _parallel_gate_capable(parallel):
                if gate_ratio < PARALLEL_SPEEDUP_FLOOR:
                    print(f"FAIL: parallel speedup {gate_ratio:.2f}x at "
                          f"{PARALLEL_WORKERS_GATE} workers < "
                          f"{PARALLEL_SPEEDUP_FLOOR}x floor")
                    return 1
                print(f"parallel speedup {gate_ratio:.2f}x at "
                      f"{PARALLEL_WORKERS_GATE} workers ≥ "
                      f"{PARALLEL_SPEEDUP_FLOOR}x floor")
            else:
                print(f"WARN: parallel floor not enforceable here "
                      f"(needs ≥{PARALLEL_WORKERS_GATE} cpus, "
                      f"≥{PARALLEL_CLIENTS_GATE} sessions, the numpy "
                      f"kernel backend, and a {PARALLEL_WORKERS_GATE}-"
                      f"worker row; have cpus={parallel['cpu_count']}, "
                      f"sessions={parallel['clients']}, "
                      f"backend={parallel['backend']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
