"""Shared fixtures for the figure-regeneration benchmarks.

Scale via environment variables (defaults keep CI fast):

* ``REPRO_BENCH_STATEMENTS=200`` reproduces the paper's 8×200 workload.
* ``REPRO_BENCH_SCALE=1.0`` reproduces the full-size catalogs.

Each benchmark prints its figure's table (run with ``-s`` to see it) and
writes it under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import ExperimentContext, get_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """The shared experiment context (built once per session)."""
    return get_context()


@pytest.fixture(scope="session")
def save_result():
    """Print a figure table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        table = result.format_table()
        print()
        print(table)
        slug = result.name.lower().replace(" ", "_")
        (RESULTS_DIR / f"{slug}.txt").write_text(table + "\n")

    return _save
