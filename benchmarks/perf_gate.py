#!/usr/bin/env python
"""CI perf gate: fail on statements/sec regressions in bench_kernel runs.

Compares a fresh ``bench_kernel.py --quick`` result against the pinned
baseline committed under ``benchmarks/results/`` so perf drift can never
land silently. Rows are keyed by ``(part size, work-function kernel
backend)`` — the numpy kernel and its pure-Python twin are pinned and
gated independently, so a regression in the fallback cannot hide behind
the vectorized path (or vice versa). Two machine-independent checks
**fail** the gate per row (raw wall-clock is not comparable between the
machine that pinned the baseline and an arbitrary CI runner):

* **seed-relative throughput** — the ``speedup`` column (kernel st/s over
  the in-run seed-baseline st/s on the same machine) must not drop by more
  than ``--max-regression`` (default 25%). A kernel slowdown shows up here
  immediately because the seed pipeline is compiled from the same checkout.
* **plan-derivation count** — ``kernel_optimizations`` must not grow by
  more than the same fraction (the §6.2 machine-independent overhead
  metric; a caching/batching regression shows up here even if wall-clock
  happens to be quiet on the runner).

``recommendations_match`` must hold on every current row. Raw kernel
statements/sec drops are reported as *warnings* only.

Usage (what the CI job runs)::

    python benchmarks/bench_kernel.py --quick --out /tmp/quick.json
    python benchmarks/perf_gate.py --current /tmp/quick.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_BASELINE = RESULTS_DIR / "bench_kernel_quick.json"


def _rows_by_key(payload):
    """Rows keyed by ``(part_size, backend)``.

    Pre-kernel baselines carry no ``backend`` field; those rows were the
    scalar pure-Python implementation, which the ``python`` work-function
    kernel succeeds, so they gate that backend.
    """
    return {
        (row["part_size"], row.get("backend", "python")): row
        for row in payload["rows"]
    }


def compare(baseline, current, max_regression):
    """Yields (level, message) pairs; level is "FAIL" or "WARN"."""
    base_rows = _rows_by_key(baseline)
    cur_rows = _rows_by_key(current)
    for key in ("scale", "per_phase", "seed"):
        if baseline.get(key) != current.get(key):
            yield ("FAIL", f"workload mismatch: {key} baseline="
                   f"{baseline.get(key)} current={current.get(key)} — "
                   f"rerun bench_kernel with the baseline's parameters")
            return
    shared = sorted(set(base_rows) & set(cur_rows))
    if not shared:
        yield ("FAIL", "no common (part size, backend) rows between "
               "baseline and current run")
        return
    for size, backend in sorted(base_rows):
        if (size, backend) not in cur_rows:
            # Legitimate on runners that cannot build the backend (no
            # numpy interpreter) — but surface every ungated baseline row
            # so a silently skipped measurement is at least visible.
            yield ("WARN", f"size {size}/{backend}: baseline row has no "
                   f"current measurement (not measured in this run; "
                   f"not gated)")
    floor = 1.0 - max_regression
    ceiling = 1.0 + max_regression
    for size, backend in shared:
        label = f"size {size}/{backend}"
        base, cur = base_rows[(size, backend)], cur_rows[(size, backend)]
        if not cur["recommendations_match"]:
            yield ("FAIL", f"{label}: kernel and seed recommendations "
                   f"diverged (correctness, not perf)")
        ratio = cur["speedup"] / base["speedup"]
        if ratio < floor:
            yield ("FAIL", f"{label}: seed-relative throughput fell to "
                   f"{ratio:.2f}x of baseline "
                   f"({cur['speedup']:.2f}x vs {base['speedup']:.2f}x; "
                   f"allowed floor {floor:.2f}x)")
        else:
            yield ("ok", f"{label}: seed-relative throughput "
                   f"{cur['speedup']:.2f}x vs baseline {base['speedup']:.2f}x")
        base_opts = max(1, base["kernel_optimizations"])
        opt_ratio = cur["kernel_optimizations"] / base_opts
        if opt_ratio > ceiling:
            yield ("FAIL", f"{label}: plan derivations grew "
                   f"{opt_ratio:.2f}x ({cur['kernel_optimizations']} vs "
                   f"{base['kernel_optimizations']})")
        raw_ratio = cur["kernel_stmts_per_sec"] / base["kernel_stmts_per_sec"]
        if raw_ratio < floor:
            yield ("WARN", f"{label}: raw kernel st/s at {raw_ratio:.2f}x "
                   f"of the pinned baseline (machine-dependent; not gated)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE,
                        help=f"pinned baseline JSON (default {DEFAULT_BASELINE})")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly produced bench_kernel JSON to gate")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop/growth (default 0.25)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    failures = 0
    for level, message in compare(baseline, current, args.max_regression):
        print(f"{level}: {message}")
        if level == "FAIL":
            failures += 1
    if failures:
        print(f"\nperf gate: {failures} failing check(s) "
              f"(threshold {args.max_regression:.0%})")
        return 1
    print("\nperf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
