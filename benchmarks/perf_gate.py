#!/usr/bin/env python
"""CI perf gate: fail on statements/sec regressions in bench_kernel runs.

Compares a fresh ``bench_kernel.py --quick`` result against the pinned
baseline committed under ``benchmarks/results/`` so perf drift can never
land silently. Rows are keyed by ``(part size, work-function kernel
backend)`` — the numpy kernel and its pure-Python twin are pinned and
gated independently, so a regression in the fallback cannot hide behind
the vectorized path (or vice versa). Two machine-independent checks
**fail** the gate per row (raw wall-clock is not comparable between the
machine that pinned the baseline and an arbitrary CI runner):

* **seed-relative throughput** — the ``speedup`` column (kernel st/s over
  the in-run seed-baseline st/s on the same machine) must not drop by more
  than ``--max-regression`` (default 25%). A kernel slowdown shows up here
  immediately because the seed pipeline is compiled from the same checkout.
* **plan-derivation count** — ``kernel_optimizations`` must not grow by
  more than the same fraction (the §6.2 machine-independent overhead
  metric; a caching/batching regression shows up here even if wall-clock
  happens to be quiet on the runner).

``recommendations_match`` must hold on every current row. Raw kernel
statements/sec drops are reported as *warnings* only.

With ``--service-current`` the gate additionally checks a fresh
``bench_service.py`` JSON's partition-parallel section: the worker-count
rows must be *identical* in recommendations/totWork (a divergence FAILs —
that is the parallel determinism contract, machine-independent), and on
capable measurements (≥4 cpus, ≥32 sessions, numpy kernel backend, full
run) the 4-worker aggregate st/s must hold the ≥2.5× floor over the
1-worker pin. Under-provisioned or quick measurements WARN, exactly like
baseline rows with no available backend.

With ``--wal-overhead`` (requires ``--service-current``) the gate also
checks the service payload's WAL-overhead section: durable ingest under
a group-committed WAL must hold ≥0.90× of the same trace's non-durable
throughput (same machine, same run) — below that FAILs full runs (quick
measurements WARN, like the parallel floor), 0.90–0.97× WARNs — and the
durable run's recommendations/totWork must be identical
to the non-durable run's (a divergence FAILs: logging must never perturb
tuning).

With ``--priority-flood`` (requires ``--service-current``) the gate also
checks the service payload's priority-flood section: the interactive
session's p95 submit→analyzed latency with a background flood queued
must stay ≤1.25× of its no-flood baseline (full runs FAIL above that,
quick measurements WARN), and two machine-independent invariants always
gate — the interactive stream must finish while flood backlog remains,
and admission control must not reject a flood sized within its limit.

With ``--obs-overhead`` the gate compares two fresh quick runs of the
same checkout — one with telemetry enabled (the default), one with
``REPRO_OBS=0`` — row by row against each other and against the pinned
baseline: the disabled run regressing more than 5% in seed-relative
throughput vs the baseline **fails** (the no-op telemetry path must stay
within noise of the pre-telemetry kernel), and the enabled run falling
more than 2% behind the disabled run's raw st/s (a same-machine
comparison) **warns**.

Usage (what the CI job runs)::

    python benchmarks/bench_kernel.py --quick --out /tmp/quick.json
    python benchmarks/perf_gate.py --current /tmp/quick.json \
        [--service-current /tmp/service.json]

    REPRO_OBS=0 python benchmarks/bench_kernel.py --quick --out /tmp/off.json
    python benchmarks/bench_kernel.py --quick --out /tmp/on.json
    python benchmarks/perf_gate.py --obs-overhead \
        --obs-disabled /tmp/off.json --obs-enabled /tmp/on.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_BASELINE = RESULTS_DIR / "bench_kernel_quick.json"


def _rows_by_key(payload):
    """Rows keyed by ``(part_size, backend)``.

    Pre-kernel baselines carry no ``backend`` field; those rows were the
    scalar pure-Python implementation, which the ``python`` work-function
    kernel succeeds, so they gate that backend.
    """
    return {
        (row["part_size"], row.get("backend", "python")): row
        for row in payload["rows"]
    }


def compare(baseline, current, max_regression):
    """Yields (level, message) pairs; level is "FAIL" or "WARN"."""
    base_rows = _rows_by_key(baseline)
    cur_rows = _rows_by_key(current)
    for key in ("scale", "per_phase", "seed"):
        if baseline.get(key) != current.get(key):
            yield ("FAIL", f"workload mismatch: {key} baseline="
                   f"{baseline.get(key)} current={current.get(key)} — "
                   f"rerun bench_kernel with the baseline's parameters")
            return
    shared = sorted(set(base_rows) & set(cur_rows))
    if not shared:
        yield ("FAIL", "no common (part size, backend) rows between "
               "baseline and current run")
        return
    for size, backend in sorted(base_rows):
        if (size, backend) not in cur_rows:
            # Legitimate on runners that cannot build the backend (no
            # numpy interpreter) — but surface every ungated baseline row
            # so a silently skipped measurement is at least visible.
            yield ("WARN", f"size {size}/{backend}: baseline row has no "
                   f"current measurement (not measured in this run; "
                   f"not gated)")
    floor = 1.0 - max_regression
    ceiling = 1.0 + max_regression
    for size, backend in shared:
        label = f"size {size}/{backend}"
        base, cur = base_rows[(size, backend)], cur_rows[(size, backend)]
        if not cur["recommendations_match"]:
            yield ("FAIL", f"{label}: kernel and seed recommendations "
                   f"diverged (correctness, not perf)")
        ratio = cur["speedup"] / base["speedup"]
        if ratio < floor:
            yield ("FAIL", f"{label}: seed-relative throughput fell to "
                   f"{ratio:.2f}x of baseline "
                   f"({cur['speedup']:.2f}x vs {base['speedup']:.2f}x; "
                   f"allowed floor {floor:.2f}x)")
        else:
            yield ("ok", f"{label}: seed-relative throughput "
                   f"{cur['speedup']:.2f}x vs baseline {base['speedup']:.2f}x")
        base_opts = max(1, base["kernel_optimizations"])
        opt_ratio = cur["kernel_optimizations"] / base_opts
        if opt_ratio > ceiling:
            yield ("FAIL", f"{label}: plan derivations grew "
                   f"{opt_ratio:.2f}x ({cur['kernel_optimizations']} vs "
                   f"{base['kernel_optimizations']})")
        raw_ratio = cur["kernel_stmts_per_sec"] / base["kernel_stmts_per_sec"]
        if raw_ratio < floor:
            yield ("WARN", f"{label}: raw kernel st/s at {raw_ratio:.2f}x "
                   f"of the pinned baseline (machine-dependent; not gated)")


def compare_service(payload, parallel_floor):
    """Gate checks for a bench_service JSON's partition-parallel section.

    Yields the same (level, message) pairs as :func:`compare`. The
    identity check is machine-independent and always gates; the speedup
    floor gates only measurements taken where it is meaningful (full run,
    enough cores/sessions, numpy backend) and WARNs elsewhere.
    """
    parallel = payload.get("parallel")
    if parallel is None:
        yield ("WARN", "service run has no parallel section (run "
               "bench_service.py without --no-parallel); not gated")
        return
    if not parallel.get("identical", False):
        yield ("FAIL", "parallel ingest: worker counts produced different "
               "recommendations or totWork (determinism, not perf)")
    else:
        yield ("ok", "parallel ingest: all worker counts bit-identical")
    # The floor constants live here (not read from the JSON) so a bench
    # edit cannot quietly relax the gate.
    workers_gate, clients_gate = 4, 32
    ratio = (parallel.get("speedup") or {}).get(str(workers_gate))
    capable = (
        not payload.get("quick", False)
        and ratio is not None
        and parallel.get("clients", 0) >= clients_gate
        and (parallel.get("cpu_count") or 1) >= workers_gate
        and "numpy" in (parallel.get("backend") or "")
    )
    if not capable:
        yield ("WARN", f"parallel floor not enforceable for this "
               f"measurement (needs a full run at ≥{clients_gate} sessions "
               f"with a {workers_gate}-worker row on ≥{workers_gate} cpus "
               f"and the numpy backend; have quick="
               f"{payload.get('quick', False)}, "
               f"cpus={parallel.get('cpu_count')}, "
               f"sessions={parallel.get('clients')}, "
               f"backend={parallel.get('backend')}); not gated")
        return
    if ratio < parallel_floor:
        yield ("FAIL", f"parallel ingest: {ratio:.2f}x aggregate st/s at "
               f"{workers_gate} workers < {parallel_floor}x floor over the "
               f"1-worker pin")
    else:
        yield ("ok", f"parallel ingest: {ratio:.2f}x at {workers_gate} "
               f"workers ≥ {parallel_floor}x floor")


#: --wal-overhead thresholds: durable-ingest throughput as a fraction of
#: the same trace without a WAL attached (same machine, same run — raw
#: rates are comparable). Below WAL_OVERHEAD_FAIL the group-committed log
#: is eating more than its budget and the gate FAILs; between the two it
#: WARNs. The constants live here, not in the bench JSON, so a bench edit
#: cannot quietly relax the gate.
WAL_OVERHEAD_FAIL = 0.90
WAL_OVERHEAD_WARN = 0.97


def compare_wal(payload):
    """Gate checks for a bench_service JSON's WAL-overhead section."""
    wal = payload.get("wal")
    if wal is None:
        yield ("WARN", "service run has no wal section (run "
               "bench_service.py without --no-wal); not gated")
        return
    if not wal.get("identical", False):
        yield ("FAIL", "wal overhead: durable and non-durable runs diverged "
               "in recommendations or totWork (correctness, not perf)")
    else:
        yield ("ok", "wal overhead: durable run bit-identical to the "
               "non-durable run")
    ratio = wal.get("ratio")
    if ratio is None:
        yield ("WARN", "wal overhead: no throughput ratio recorded; "
               "not gated")
        return
    detail = (f"durable ingest at {ratio:.3f}x of non-durable throughput "
              f"({wal.get('fsync_interval_ms')} ms group commit, "
              f"{wal.get('wal_records')} records)")
    if ratio < WAL_OVERHEAD_FAIL:
        if payload.get("quick", False):
            # Same convention as the parallel floor: quick measurements
            # are too short to hold a throughput ratio steady on a noisy
            # runner, so the floor only FAILs full runs.
            yield ("WARN", f"wal overhead: {detail}; below the "
                   f"{WAL_OVERHEAD_FAIL:.2f}x floor but this is a --quick "
                   f"measurement (not gated; rerun the full bench)")
            return
        yield ("FAIL", f"wal overhead: {detail}; floor "
               f"{WAL_OVERHEAD_FAIL:.2f}x")
    elif ratio < WAL_OVERHEAD_WARN:
        yield ("WARN", f"wal overhead: {detail}; below the "
               f"{WAL_OVERHEAD_WARN:.2f}x comfort line but above the "
               f"{WAL_OVERHEAD_FAIL:.2f}x floor")
    else:
        yield ("ok", f"wal overhead: {detail} "
               f"(≥ {WAL_OVERHEAD_WARN:.2f}x)")


#: --priority-flood threshold: with a background flood queued, the
#: interactive session's p95 submit→analyzed latency may be at most this
#: multiple of its no-flood baseline (same machine, same run — paired
#: rounds). The constant lives here, not in the bench JSON, so a bench
#: edit cannot quietly relax the gate.
PRIORITY_FLOOD_FACTOR = 1.25


def compare_flood(payload):
    """Gate checks for a bench_service JSON's priority-flood section."""
    flood = payload.get("priority_flood")
    if flood is None:
        yield ("WARN", "service run has no priority_flood section (run "
               "bench_service.py without --no-flood); not gated")
        return
    # Machine-independent scheduling invariants gate every measurement:
    # the interactive trickle must finish while flood backlog remains
    # (foreground never queues behind background), and a flood sized
    # within the class limit must never be rejected.
    if not flood.get("foreground_first", False):
        yield ("FAIL", "priority flood: background backlog fully drained "
               "before the interactive stream finished (priority "
               "scheduling broken, not perf)")
    else:
        yield ("ok", f"priority flood: interactive stream finished with "
               f"{flood.get('flood_remaining_at_fg_done')} background "
               f"statements still queued")
    if flood.get("backpressure_rejections", 0):
        yield ("FAIL", "priority flood: admission control rejected "
               "submissions sized within the queue limit")
    ratio = flood.get("ratio")
    if ratio is None:
        yield ("WARN", "priority flood: no latency ratio recorded; "
               "not gated")
        return
    detail = (f"interactive p95 at {ratio:.3f}x of its no-flood baseline "
              f"({flood.get('flood_count')} background statements queued)")
    if ratio > PRIORITY_FLOOD_FACTOR:
        if payload.get("quick", False):
            # Same convention as the WAL floor: quick measurements are too
            # short to hold a latency ratio steady on a noisy runner.
            yield ("WARN", f"priority flood: {detail}; above the "
                   f"{PRIORITY_FLOOD_FACTOR:.2f}x ceiling but this is a "
                   f"--quick measurement (not gated; rerun the full bench)")
            return
        yield ("FAIL", f"priority flood: {detail}; ceiling "
               f"{PRIORITY_FLOOD_FACTOR:.2f}x")
    else:
        yield ("ok", f"priority flood: {detail} "
               f"(≤ {PRIORITY_FLOOD_FACTOR:.2f}x)")


#: --obs-overhead thresholds: the REPRO_OBS=0 run may lose at most this
#: fraction of seed-relative throughput vs the pinned baseline (FAIL), and
#: the enabled run at most this fraction of the disabled run's raw st/s
#: (WARN; same-machine, so raw rates are comparable).
OBS_DISABLED_MAX_REGRESSION = 0.05
OBS_ENABLED_MAX_OVERHEAD = 0.02


def compare_obs_overhead(baseline, disabled, enabled):
    """Gate checks for telemetry overhead; yields (level, message) pairs.

    ``disabled``/``enabled`` are two quick bench_kernel payloads from the
    *same* checkout and machine; ``baseline`` is the pinned pre-telemetry
    quick baseline.
    """
    if disabled.get("obs_enabled", True):
        yield ("FAIL", "obs-overhead: the --obs-disabled payload was "
               "recorded with telemetry on (rerun it under REPRO_OBS=0)")
        return
    if not enabled.get("obs_enabled", False):
        yield ("FAIL", "obs-overhead: the --obs-enabled payload was "
               "recorded with telemetry off")
        return
    dis_rows = _rows_by_key(disabled)
    en_rows = _rows_by_key(enabled)
    base_rows = _rows_by_key(baseline)
    shared = sorted(set(dis_rows) & set(en_rows))
    if not shared:
        yield ("FAIL", "obs-overhead: no common (part size, backend) rows "
               "between the enabled and disabled runs")
        return
    floor = 1.0 - OBS_DISABLED_MAX_REGRESSION
    for size, backend in shared:
        label = f"size {size}/{backend}"
        dis, en = dis_rows[(size, backend)], en_rows[(size, backend)]
        base = base_rows.get((size, backend))
        if base is not None:
            # Machine-independent: the no-op path vs the pinned pre-PR
            # speedup. A >5% drop means the disabled branch is not free.
            ratio = dis["speedup"] / base["speedup"]
            if ratio < floor:
                yield ("FAIL", f"{label}: REPRO_OBS=0 seed-relative "
                       f"throughput at {ratio:.3f}x of the pinned baseline "
                       f"({dis['speedup']:.2f}x vs {base['speedup']:.2f}x; "
                       f"floor {floor:.2f}x)")
            else:
                yield ("ok", f"{label}: REPRO_OBS=0 at {ratio:.3f}x of the "
                       f"pinned seed-relative baseline")
        else:
            yield ("WARN", f"{label}: no pinned baseline row; disabled-path "
                   f"regression not gated")
        # Same-machine, same-run-pair: enabled vs disabled raw throughput.
        overhead = 1.0 - en["kernel_stmts_per_sec"] / dis["kernel_stmts_per_sec"]
        if overhead > OBS_ENABLED_MAX_OVERHEAD:
            yield ("WARN", f"{label}: telemetry-enabled run is "
                   f"{overhead:.1%} slower than REPRO_OBS=0 "
                   f"(> {OBS_ENABLED_MAX_OVERHEAD:.0%})")
        else:
            yield ("ok", f"{label}: enabled-vs-disabled overhead "
                   f"{overhead:+.1%} (≤ {OBS_ENABLED_MAX_OVERHEAD:.0%})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE,
                        help=f"pinned baseline JSON (default {DEFAULT_BASELINE})")
    parser.add_argument("--current", type=pathlib.Path, default=None,
                        help="freshly produced bench_kernel JSON to gate")
    parser.add_argument("--service-current", type=pathlib.Path, default=None,
                        help="freshly produced bench_service JSON whose "
                        "partition-parallel section should be gated too")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop/growth (default 0.25)")
    parser.add_argument("--parallel-floor", type=float, default=2.5,
                        help="aggregate st/s floor at 4 workers vs the "
                        "1-worker pin (default 2.5)")
    parser.add_argument("--wal-overhead", action="store_true",
                        help="also gate the --service-current payload's "
                        "WAL-overhead section (durable ingest ≥ "
                        f"{WAL_OVERHEAD_FAIL}x of non-durable throughput)")
    parser.add_argument("--priority-flood", action="store_true",
                        help="also gate the --service-current payload's "
                        "priority-flood section (interactive p95 ≤ "
                        f"{PRIORITY_FLOOD_FACTOR}x of its no-flood "
                        "baseline, foreground never starved)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="gate telemetry overhead: requires "
                        "--obs-disabled and --obs-enabled quick payloads")
    parser.add_argument("--obs-disabled", type=pathlib.Path, default=None,
                        help="bench_kernel quick JSON recorded under "
                        "REPRO_OBS=0")
    parser.add_argument("--obs-enabled", type=pathlib.Path, default=None,
                        help="bench_kernel quick JSON recorded with "
                        "telemetry on (the default)")
    args = parser.parse_args(argv)

    if args.obs_overhead and (args.obs_disabled is None
                              or args.obs_enabled is None):
        parser.error("--obs-overhead requires --obs-disabled and "
                     "--obs-enabled")
    if args.current is None and not args.obs_overhead:
        parser.error("provide --current (and/or --obs-overhead with its "
                     "two payloads)")
    if args.wal_overhead and args.service_current is None:
        parser.error("--wal-overhead requires --service-current")
    if args.priority_flood and args.service_current is None:
        parser.error("--priority-flood requires --service-current")

    baseline = json.loads(args.baseline.read_text())
    failures = 0
    if args.current is not None:
        current = json.loads(args.current.read_text())
        for level, message in compare(baseline, current, args.max_regression):
            print(f"{level}: {message}")
            if level == "FAIL":
                failures += 1
    if args.obs_overhead:
        disabled = json.loads(args.obs_disabled.read_text())
        enabled = json.loads(args.obs_enabled.read_text())
        for level, message in compare_obs_overhead(
            baseline, disabled, enabled
        ):
            print(f"{level}: {message}")
            if level == "FAIL":
                failures += 1
    if args.service_current is not None:
        service = json.loads(args.service_current.read_text())
        for level, message in compare_service(service, args.parallel_floor):
            print(f"{level}: {message}")
            if level == "FAIL":
                failures += 1
        if args.wal_overhead:
            for level, message in compare_wal(service):
                print(f"{level}: {message}")
                if level == "FAIL":
                    failures += 1
        if args.priority_flood:
            for level, message in compare_flood(service):
                print(f"{level}: {message}")
                if level == "FAIL":
                    failures += 1
    if failures:
        print(f"\nperf gate: {failures} failing check(s) "
              f"(threshold {args.max_regression:.0%})")
        return 1
    print("\nperf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
