"""Synthetic helpers for the micro-benchmarks."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.wfa import WFA, TransitionCosts
from repro.db import Index


def make_part_instance(
    rng: random.Random, part_size: int, n_statements: int
) -> Tuple[WFA, List[str]]:
    """One WFA over ``part_size`` indices with random per-subset costs."""
    indices = [Index("syn.t", (f"c{i:02d}",)) for i in range(part_size)]
    statements = [f"q{i}" for i in range(n_statements)]
    tables = {}
    for statement in statements:
        costs = {}
        for mask in range(1 << part_size):
            subset = frozenset(
                ix for i, ix in enumerate(indices) if mask & (1 << i)
            )
            costs[subset] = float(rng.randint(0, 100))
        tables[statement] = costs

    transitions = TransitionCosts(
        create={ix: float(rng.randint(20, 80)) for ix in indices},
        drop={ix: 1.0 for ix in indices},
    )
    wfa = WFA(
        indices,
        frozenset(),
        lambda q, X: tables[q][frozenset(X)],
        transitions,
    )
    return wfa, statements
