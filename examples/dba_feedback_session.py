"""A scripted semi-automatic tuning session: the DBA stays in the loop.

Reenacts the paper's §1 narrative: the tuner recommends indices {a, b, c};
the DBA materializes a (implicit positive feedback), vetoes c explicitly
(bad past experience with the locking subsystem), and promotes d instead.
Later the workload turns against the DBA's favorite and WFIT gracefully
overrides the stale advice.

Run with::

    python examples/dba_feedback_session.py
"""

from __future__ import annotations

from repro import (
    StatsTransitionCosts,
    WFIT,
    WhatIfOptimizer,
    build_catalog,
    select,
    update,
)
from repro.db import Index
from repro.query import InsertStatement


def show(title: str, recommendation) -> None:
    print(f"\n{title}")
    if not recommendation:
        print("    (no indices recommended)")
    for index in sorted(recommendation):
        print(f"    {index}")


def main() -> None:
    catalog, stats = build_catalog(scale=0.05, datasets=("tpch",))
    optimizer = WhatIfOptimizer(stats)
    transitions = StatsTransitionCosts(stats)
    tuner = WFIT(optimizer, transitions, idx_cnt=20, state_cnt=256)

    # Phase 1: an analyst hammers lineitem with shipdate/price ranges.
    reporting = [
        select("tpch.lineitem")
        .where_between("l_shipdate", 8500 + 30 * i, 8560 + 30 * i)
        .where_between("l_extendedprice", 1000, 20_000)
        .count_star()
        .build()
        for i in range(6)
    ]
    for query in reporting:
        tuner.analyze_statement(query)
    show("After the reporting burst, WFIT recommends:", tuner.recommend())

    # The DBA creates the shipdate index out-of-band -> implicit + vote,
    # and vetoes the price index: "it interacted badly with locking".
    shipdate_ix = Index("tpch.lineitem", ("l_shipdate",))
    price_ix = Index("tpch.lineitem", ("l_extendedprice",))
    composite_ix = Index("tpch.lineitem", ("l_shipdate", "l_extendedprice"))
    rec = tuner.notify_materialized(created={shipdate_ix}, dropped=set())
    show("After the DBA creates ix_lineitem_l_shipdate out-of-band:", rec)
    assert shipdate_ix in rec, "consistency: implicit +vote must be honored"

    rec = tuner.feedback(f_plus={composite_ix}, f_minus={price_ix})
    show("After explicit votes (+composite, -price):", rec)
    assert price_ix not in rec, "consistency: the veto must be honored"

    # Phase 2: the workload shifts to heavy write churn on lineitem (bulk
    # loads maintain every index on the table), so the indices the DBA
    # blessed become expensive to keep.
    churn = []
    for i in range(30):
        churn.append(InsertStatement("tpch.lineitem", row_count=2000))
        churn.append(
            update("tpch.lineitem")
            .set("l_tax")
            .where_between("l_extendedprice", 60_000 + 500 * i, 60_400 + 500 * i)
            .build()
        )
    announced = False
    for statement in churn:
        rec = tuner.analyze_statement(statement)
        if shipdate_ix not in rec and not announced:
            announced = True
            print(
                "\nWFIT overrides the DBA's earlier preference: the write"
                " churn made ix_lineitem_l_shipdate too expensive to keep."
            )
    show("After the write-heavy phase:", tuner.recommend())
    if not announced:
        print(
            "\n(the churn was not long enough to override the DBA's votes —"
            " increase the loop count to watch WFIT drop the indices)"
        )
    print(
        f"\nworkload analyzed: {tuner.statements_analyzed} statements, "
        f"what-if optimizations: {optimizer.optimizations}"
    )


if __name__ == "__main__":
    main()
