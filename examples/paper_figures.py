"""Regenerate every figure of the paper's evaluation in one go.

A standalone (no pytest) runner around :mod:`repro.bench`: builds the shared
experiment context once, then prints each figure's total-work-ratio table.

Run with::

    python examples/paper_figures.py                    # CI scale
    REPRO_BENCH_STATEMENTS=200 REPRO_BENCH_SCALE=1.0 \\
        python examples/paper_figures.py                # paper scale (slow)
"""

from __future__ import annotations

import time

from repro.bench import (
    figure8_baseline,
    figure9_feedback,
    figure10_feedback_independent,
    figure11_lag,
    figure12_auto,
    get_context,
    overhead_table,
)

FIGURES = (
    figure8_baseline,
    figure9_feedback,
    figure10_feedback_independent,
    figure11_lag,
    figure12_auto,
    overhead_table,
)


def main() -> None:
    started = time.perf_counter()
    print("building experiment context (catalog, workload, fixed partition, OPT)...")
    context = get_context()
    print(
        f"  {len(context.statements)} statements, "
        f"{len(context.fixed.candidates)} candidate indices, "
        f"{len(context.fixed.partition)} parts "
        f"({time.perf_counter() - started:.0f}s)\n"
    )
    for figure in FIGURES:
        t0 = time.perf_counter()
        result = figure(context)
        print(result.format_table())
        print(f"({time.perf_counter() - t0:.0f}s)\n")


if __name__ == "__main__":
    main()
