"""Quickstart: online index tuning with WFIT in ~40 lines.

Builds a toy two-table catalog, feeds a small query stream to WFIT, and
prints the evolving recommendation. Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    StatsTransitionCosts,
    WFIT,
    WhatIfOptimizer,
    build_toy_catalog,
    parse_statement,
    to_sql,
)

WORKLOAD = [
    # A reporting burst over sales: range scans on date and amount.
    "SELECT count(*) FROM shop.sales WHERE sale_date BETWEEN 17000 AND 17060",
    "SELECT count(*) FROM shop.sales WHERE sale_date BETWEEN 17200 AND 17290",
    "SELECT count(*) FROM shop.sales WHERE amount BETWEEN 100 AND 220",
    "SELECT count(*) FROM shop.sales WHERE sale_date BETWEEN 17400 AND 17475"
    " AND amount BETWEEN 150 AND 900",
    # A join against customers by region.
    "SELECT count(*) FROM shop.sales s, shop.customers c"
    " WHERE s.customer_id = c.customer_id AND c.region = 7",
    # Updates make an index on `amount` expensive to keep.
    "UPDATE shop.sales SET amount = amount + 1"
    " WHERE sale_date BETWEEN 17450 AND 17455",
    "UPDATE shop.sales SET amount = amount + 1"
    " WHERE sale_date BETWEEN 17456 AND 17461",
]


def main() -> None:
    catalog, stats = build_toy_catalog(rows=200_000)
    optimizer = WhatIfOptimizer(stats)
    transitions = StatsTransitionCosts(stats)
    tuner = WFIT(optimizer, transitions, idx_cnt=16, state_cnt=128)

    print("=== WFIT quickstart ===")
    for position, sql in enumerate(WORKLOAD):
        statement = parse_statement(sql)
        recommendation = tuner.analyze_statement(statement)
        print(f"\n[{position}] {to_sql(statement)}")
        if recommendation:
            for index in sorted(recommendation):
                print(f"    recommend: CREATE INDEX {index.name} ON {index}")
        else:
            print("    recommend: (no indices)")

    print("\n--- DBA feedback: veto the amount index, bless the date index ---")
    amount_ix = next(
        (ix for ix in tuner.candidates if ix.columns == ("amount",)), None
    )
    date_ix = next(
        (ix for ix in tuner.candidates if ix.columns == ("sale_date",)), None
    )
    f_plus = {date_ix} if date_ix else set()
    f_minus = {amount_ix} if amount_ix else set()
    recommendation = tuner.feedback(f_plus, f_minus)
    print("after feedback, recommendation:")
    for index in sorted(recommendation):
        print(f"    {index}")
    print(f"\nwhat-if optimizations performed: {optimizer.optimizations}")


if __name__ == "__main__":
    main()
