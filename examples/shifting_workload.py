"""Online tuning of the shifting benchmark workload: WFIT vs BC vs OPT.

Generates a miniature version of the paper's 8-phase benchmark, runs WFIT
(automatic candidate maintenance) and the BC baseline side by side, and
prints an ASCII chart of the total-work ratio against the offline optimum —
a terminal rendition of Figure 8 / Figure 12.

Run with::

    python examples/shifting_workload.py [statements_per_phase]
"""

from __future__ import annotations

import sys

from repro import (
    BC,
    OfflineOptimizer,
    StatsTransitionCosts,
    WFIT,
    WhatIfOptimizer,
    build_catalog,
    compute_fixed_partition,
    generate_workload,
    run_online,
    scaled_phases,
)

CHART_WIDTH = 48


def ascii_chart(title: str, series) -> None:
    print(f"\n{title}")
    for n, ratio in series.items():
        bar = "#" * max(0, min(CHART_WIDTH, int(ratio * CHART_WIDTH)))
        print(f"  q={n:<5d} {ratio:5.3f} |{bar}")


def main() -> None:
    per_phase = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    print(f"building catalog and workload ({per_phase} statements/phase)...")
    catalog, stats = build_catalog(scale=0.05)
    optimizer = WhatIfOptimizer(stats)
    transitions = StatsTransitionCosts(stats)
    workload = generate_workload(catalog, stats, scaled_phases(per_phase), seed=7)
    print(workload.summary())

    print("\ncomputing the fixed candidate set and the OPT reference...")
    fixed = compute_fixed_partition(
        workload.statements, optimizer, transitions, idx_cnt=32, state_cnt=400
    )
    checkpoints = tuple(per_phase * k for k in range(1, 9))
    schedule = OfflineOptimizer(
        fixed.partition, frozenset(), optimizer.cost, transitions
    ).run(workload.statements, checkpoints=checkpoints)

    def ratios(result):
        return {
            n: schedule.optimum_at(n) / result.total_work_series[n - 1]
            for n in checkpoints
        }

    print("running WFIT (automatic candidate maintenance)...")
    wfit = WFIT(optimizer, transitions, idx_cnt=32, state_cnt=400, seed=1)
    wfit_result = run_online(
        wfit, workload.statements, optimizer.cost, transitions, optimizer=optimizer
    )

    print("running the BC baseline...")
    bc = BC(fixed.candidates, frozenset(), optimizer.cost, transitions)
    bc_result = run_online(bc, workload.statements, optimizer.cost, transitions)

    ascii_chart("WFIT total-work ratio (OPT = 1.0):", ratios(wfit_result))
    ascii_chart("BC total-work ratio (OPT = 1.0):", ratios(bc_result))

    print("\nfinal recommendation (WFIT):")
    for index in sorted(wfit.recommend()):
        print(f"  {index}")
    print(
        f"\nWFIT: {wfit.repartition_count} repartitions, "
        f"{len(wfit.universe)} candidates mined, "
        f"{wfit_result.wall_time_seconds * 1000 / len(workload):.1f} ms/statement"
    )


if __name__ == "__main__":
    main()
