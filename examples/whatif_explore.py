"""Exploring the what-if substrate: plans, benefits, and index interactions.

Shows the machinery beneath WFIT: hypothetical-configuration costing,
candidate extraction, the Index Benefit Graph, degrees of interaction, and
the stable partition they induce — the concepts of §2 of the paper, on a
concrete TPC-H query.

Run with::

    python examples/whatif_explore.py
"""

from __future__ import annotations

import random

from repro import (
    StatsTransitionCosts,
    WhatIfOptimizer,
    build_catalog,
    build_ibg,
    degree_of_interaction,
    extract_indices,
    max_benefit,
    parse_statement,
)
from repro.core.partitioning import choose_partition, partition_loss
from repro.ibg import interaction_pairs

QUERY = """
SELECT count(*)
FROM tpch.lineitem l, tpch.orders o
WHERE l.l_orderkey = o.o_orderkey
  AND l.l_shipdate BETWEEN 8100 AND 8400
  AND l.l_extendedprice BETWEEN 900 AND 12000
  AND o.o_totalprice BETWEEN 900 AND 60000
"""


def main() -> None:
    catalog, stats = build_catalog(scale=0.1, datasets=("tpch",))
    optimizer = WhatIfOptimizer(stats)
    transitions = StatsTransitionCosts(stats)
    query = parse_statement(QUERY)

    print("=== candidate extraction (extractIndices) ===")
    candidates = extract_indices(query)
    for index in sorted(candidates):
        print(f"  {index}   create cost ≈ {transitions.create_cost(index):.0f}")

    print("\n=== what-if costing ===")
    empty_cost = optimizer.cost(query, frozenset())
    full_cost = optimizer.cost(query, candidates)
    print(f"  cost with no indices:   {empty_cost:10.1f}")
    print(f"  cost with all of them:  {full_cost:10.1f}")
    print("\n  chosen plan under the full configuration:")
    for line in optimizer.explain(query, candidates).describe().splitlines():
        print(f"    {line}")

    print("\n=== the Index Benefit Graph ===")
    ibg = build_ibg(optimizer, query, candidates)
    print(
        f"  {ibg.node_count} IBG nodes encode costs for all "
        f"2^{len(ibg.candidates)} subsets "
        f"({optimizer.optimizations} optimizer calls so far)"
    )
    print("  per-index maximum benefit β:")
    for index in sorted(candidates):
        beta = max_benefit(ibg, index)
        if beta > 0:
            print(f"    β({index.name}) = {beta:.1f}")

    print("\n=== degrees of interaction (doi) ===")
    pairs = interaction_pairs(ibg, candidates)
    if not pairs:
        print("  (no interactions for this query)")
    for (a, b), doi in sorted(pairs.items(), key=lambda kv: -kv[1]):
        print(f"  doi({a.name}, {b.name}) = {doi:.1f}")

    print("\n=== stable partition induced by the interactions ===")
    def doi_lookup(a, b):
        key = (a, b) if a <= b else (b, a)
        return pairs.get(key, 0.0)

    partition = choose_partition(
        candidates, state_cnt=256, current_partition=[],
        doi=doi_lookup, rng=random.Random(0),
    )
    for k, part in enumerate(partition, 1):
        print(f"  part {k}: {sorted(ix.name for ix in part)}")
    print(f"  partition loss = {partition_loss(partition, doi_lookup):.2f}")
    print("  doi is symmetric:", all(
        degree_of_interaction(ibg, a, b) == degree_of_interaction(ibg, b, a)
        for (a, b) in list(pairs)[:3]
    ))


if __name__ == "__main__":
    main()
