"""Legacy setup shim.

The environment has no `wheel` package and no network access, so PEP 660
editable installs (which require building a wheel) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the classic
``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: ship the py.typed marker so downstream type checkers see
    # the package's inline annotations.
    package_data={"repro": ["py.typed"]},
)
