"""Legacy setup shim.

The environment has no `wheel` package and no network access, so PEP 660
editable installs (which require building a wheel) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the classic
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
