"""repro: reproduction of *Semi-Automatic Index Tuning: Keeping DBAs in the
Loop* (Schnaitter & Polyzotis, VLDB 2012).

The package provides the paper's WFIT online index advisor together with
every substrate it needs to run without a commercial DBMS: a statistics-only
catalog of the benchmark datasets, an analytical what-if optimizer, the
Index Benefit Graph machinery, the shifting benchmark workload, and the OPT
and BC baselines of the evaluation.

Quickstart
----------
>>> from repro import build_catalog, WhatIfOptimizer, StatsTransitionCosts, WFIT
>>> catalog, stats = build_catalog(scale=0.05)
>>> optimizer = WhatIfOptimizer(stats)
>>> tuner = WFIT(optimizer, StatsTransitionCosts(stats))
>>> # feed statements with tuner.analyze_statement(...), read
>>> # tuner.recommend(), and cast votes with tuner.feedback(...)
"""

from .advisor import AdvisorSession, AdvisorEvent, Recommendation
from .core import (
    BC,
    FeedbackEvent,
    FixedPartitionResult,
    OfflineOptimizer,
    OptimalSchedule,
    TransitionCosts,
    TuningResult,
    WFA,
    WFAPlus,
    WFIT,
    compute_fixed_partition,
    run_online,
)
from .db import (
    Catalog,
    Index,
    StatsRepository,
    StatsTransitionCosts,
    build_catalog,
    build_toy_catalog,
)
from .ibg import IndexBenefitGraph, build_ibg, degree_of_interaction, max_benefit
from .optimizer import CostModelConfig, WhatIfOptimizer, extract_indices
from .query import parse_statement, select, to_sql, update
from .service import ClientSession, SessionEvent, TuningEngine
from .workload import (
    DEFAULT_PHASES,
    MultiClientTrace,
    Workload,
    generate_workload,
    scaled_phases,
)

__version__ = "1.0.0"

__all__ = [
    "AdvisorEvent",
    "AdvisorSession",
    "BC",
    "Catalog",
    "ClientSession",
    "CostModelConfig",
    "DEFAULT_PHASES",
    "FeedbackEvent",
    "FixedPartitionResult",
    "Index",
    "IndexBenefitGraph",
    "MultiClientTrace",
    "OfflineOptimizer",
    "OptimalSchedule",
    "SessionEvent",
    "StatsRepository",
    "StatsTransitionCosts",
    "TransitionCosts",
    "TuningEngine",
    "TuningResult",
    "WFA",
    "WFAPlus",
    "WFIT",
    "WhatIfOptimizer",
    "Recommendation",
    "Workload",
    "build_catalog",
    "build_ibg",
    "build_toy_catalog",
    "compute_fixed_partition",
    "degree_of_interaction",
    "extract_indices",
    "generate_workload",
    "max_benefit",
    "parse_statement",
    "run_online",
    "scaled_phases",
    "select",
    "to_sql",
    "update",
    "__version__",
]
