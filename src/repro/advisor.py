"""The semi-automatic advisor middleware: the paper's deployment shape.

The prototype in §6 is middleware that *intercepts SQL text*, analyzes each
statement online, and lets the DBA pull recommendations and push feedback at
any time. :class:`AdvisorSession` packages the library the same way:

* ``execute(sql)`` — intercept one statement (text or AST) on its way to the
  database; WFIT analyzes it in passing.
* ``recommendation()`` — the current recommendation with human-readable
  CREATE/DROP statements relative to what is materialized.
* ``vote_up`` / ``vote_down`` — explicit feedback.
* ``create_index`` / ``drop_index`` — the DBA acts; the session tracks the
  materialized set and forwards the implicit votes (§3.1).
* ``history()`` — an audit log of everything that happened.

Since the service layer landed, ``AdvisorSession`` is a *thin client* of a
:class:`~repro.service.engine.TuningEngine`: by default it owns a private
single-client engine (the legacy in-process shape — identical
recommendations and feedback semantics; see :meth:`overhead` for the one
counter-level difference), but :meth:`AdvisorSession.for_engine` attaches
the same API to a shared multi-session engine, where many advisors ride
one WFIT core and one what-if cache.

Example
-------
>>> from repro import build_toy_catalog
>>> from repro.advisor import AdvisorSession
>>> catalog, stats = build_toy_catalog()
>>> session = AdvisorSession.for_stats(stats)
>>> session.execute("SELECT count(*) FROM shop.sales"
...                 " WHERE amount BETWEEN 10 AND 20")   # doctest: +SKIP
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, Tuple, Union

from .core.wfit import WFIT
from .db.index import Index
from .db.stats import StatsRepository
from .db.transitions import StatsTransitionCosts
from .optimizer.whatif import WhatIfOptimizer
from .query.ast import Statement
from .service.engine import Recommendation, SessionEvent, TuningEngine

__all__ = ["AdvisorSession", "AdvisorEvent", "Recommendation"]

#: Audit-log entries are the service layer's session events; the historical
#: name is kept for callers of the pre-service API.
AdvisorEvent = SessionEvent


class AdvisorSession:
    """Stateful semi-automatic tuning session: a client of a TuningEngine."""

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        transitions,
        materialized: AbstractSet[Index] = frozenset(),
        **wfit_options,
    ) -> None:
        engine = TuningEngine(
            optimizer,
            transitions,
            materialized=frozenset(materialized),
            **wfit_options,
        )
        self._engine = engine
        self._client = engine.session("dba")

    @classmethod
    def for_stats(
        cls, stats: StatsRepository, **wfit_options
    ) -> "AdvisorSession":
        """Build a session with the default optimizer/δ over ``stats``."""
        optimizer = WhatIfOptimizer(stats)
        transitions = StatsTransitionCosts(stats)
        return cls(optimizer, transitions, **wfit_options)

    @classmethod
    def for_engine(
        cls, engine: TuningEngine, client_id: str = "dba"
    ) -> "AdvisorSession":
        """Attach a session to a shared engine as ``client_id``.

        Many sessions can share one engine: they see one recommendation,
        one materialized set, and one what-if cache, but keep per-client
        audit logs and statement counters.
        """
        session = cls.__new__(cls)
        session._engine = engine
        session._client = engine.session(client_id)
        return session

    # -- workload interception -------------------------------------------------

    def execute(self, statement: Union[str, Statement]) -> Statement:
        """Intercept one statement (SQL text or AST); returns the AST.

        In a real deployment this is where the statement would also be
        forwarded to the database for execution.
        """
        return self._client.execute(statement)

    def execute_many(self, statements: Iterable[Union[str, Statement]]) -> int:
        """Intercept a batch; returns how many statements were analyzed."""
        return self._client.execute_many(statements)

    # -- recommendations and feedback ---------------------------------------------

    def recommendation(self) -> Recommendation:
        """The current recommendation, diffed against the materialized set."""
        return self._client.recommendation()

    def vote_up(self, *indices: Index) -> FrozenSet[Index]:
        """Explicit positive votes; returns the adjusted recommendation."""
        return self._client.vote_up(*indices)

    def vote_down(self, *indices: Index) -> FrozenSet[Index]:
        """Explicit negative votes; returns the adjusted recommendation."""
        return self._client.vote_down(*indices)

    def vote(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Simultaneous votes, as in the paper's feedback model."""
        return self._client.vote(f_plus, f_minus)

    # -- DBA actions (implicit feedback) ----------------------------------------------

    def create_index(self, index: Index) -> None:
        """The DBA materializes an index; WFIT learns via an implicit +vote."""
        self._client.create_index(index)

    def drop_index(self, index: Index) -> None:
        """The DBA drops an index; WFIT learns via an implicit −vote."""
        self._client.drop_index(index)

    def adopt(self) -> Tuple[Tuple[Index, ...], Tuple[Index, ...]]:
        """Adopt the current recommendation wholesale.

        Returns ``(created, dropped)``. Equivalent to the lagged-DBA
        acceptance of Figure 11 (with its lease-renewing implicit votes).
        """
        return self._client.adopt()

    # -- introspection ---------------------------------------------------------------

    @property
    def engine(self) -> TuningEngine:
        """The engine this session is a client of."""
        return self._engine

    @property
    def materialized(self) -> FrozenSet[Index]:
        return self._engine.materialized

    @property
    def statements_seen(self) -> int:
        return self._client.statements_processed

    @property
    def tuner(self) -> WFIT:
        return self._engine.tuner

    def history(self) -> Tuple[AdvisorEvent, ...]:
        return self._client.history()

    def overhead(self) -> Dict[str, float]:
        """What-if accounting for the session's engine so far.

        Counts *all* optimizer traffic, including the engine's per-statement
        totWork-accounting lookup (one extra, almost always memo-hitting
        ``cost`` call per statement that the pre-service ``AdvisorSession``
        did not make), so absolute counter values are slightly higher than
        in the pre-service releases; the machine-independent
        ``optimizations``-dominated trend is unchanged.
        """
        optimizer = self._engine.optimizer
        seen = self.statements_seen
        return {
            "whatif_calls": float(optimizer.whatif_calls),
            "optimizations": float(optimizer.optimizations),
            "per_statement": (
                optimizer.optimizations / seen if seen else 0.0
            ),
        }
