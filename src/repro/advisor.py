"""The semi-automatic advisor middleware: the paper's deployment shape.

The prototype in §6 is middleware that *intercepts SQL text*, analyzes each
statement online, and lets the DBA pull recommendations and push feedback at
any time. :class:`AdvisorSession` packages the library the same way:

* ``execute(sql)`` — intercept one statement (text or AST) on its way to the
  database; WFIT analyzes it in passing.
* ``recommendation()`` — the current recommendation with human-readable
  CREATE/DROP statements relative to what is materialized.
* ``vote_up`` / ``vote_down`` — explicit feedback.
* ``create_index`` / ``drop_index`` — the DBA acts; the session tracks the
  materialized set and forwards the implicit votes (§3.1).
* ``history()`` — an audit log of everything that happened.

Example
-------
>>> from repro import build_toy_catalog
>>> from repro.advisor import AdvisorSession
>>> catalog, stats = build_toy_catalog()
>>> session = AdvisorSession.for_stats(stats)
>>> session.execute("SELECT count(*) FROM shop.sales"
...                 " WHERE amount BETWEEN 10 AND 20")   # doctest: +SKIP
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from .core.wfit import WFIT
from .db.index import Index
from .db.stats import StatsRepository
from .db.transitions import StatsTransitionCosts
from .optimizer.whatif import WhatIfOptimizer
from .query.ast import Statement
from .query.parser import parse_statement, to_sql

__all__ = ["AdvisorSession", "AdvisorEvent", "Recommendation"]


@dataclass(frozen=True)
class AdvisorEvent:
    """One entry of the session's audit log."""

    kind: str          # "statement" | "vote" | "create" | "drop" | "recommendation"
    detail: str
    position: int      # statements analyzed when the event happened


@dataclass(frozen=True)
class Recommendation:
    """A point-in-time recommendation, diffed against the materialized set."""

    recommended: FrozenSet[Index]
    materialized: FrozenSet[Index]

    @property
    def to_create(self) -> Tuple[Index, ...]:
        return tuple(sorted(self.recommended - self.materialized))

    @property
    def to_drop(self) -> Tuple[Index, ...]:
        return tuple(sorted(self.materialized - self.recommended))

    def statements(self) -> List[str]:
        """DDL the DBA would run to adopt the recommendation."""
        out = [
            f"CREATE INDEX {ix.name} ON {ix.table} ({', '.join(ix.columns)})"
            for ix in self.to_create
        ]
        out.extend(f"DROP INDEX {ix.name}" for ix in self.to_drop)
        return out

    @property
    def is_adopted(self) -> bool:
        return self.recommended == self.materialized


class AdvisorSession:
    """Stateful semi-automatic tuning session around one WFIT instance."""

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        transitions,
        materialized: AbstractSet[Index] = frozenset(),
        **wfit_options,
    ) -> None:
        self._optimizer = optimizer
        self._transitions = transitions
        self._materialized: set = set(materialized)
        self._tuner = WFIT(
            optimizer, transitions, initial_config=frozenset(materialized),
            **wfit_options,
        )
        self._events: List[AdvisorEvent] = []
        self._statements_seen = 0

    @classmethod
    def for_stats(
        cls, stats: StatsRepository, **wfit_options
    ) -> "AdvisorSession":
        """Build a session with the default optimizer/δ over ``stats``."""
        optimizer = WhatIfOptimizer(stats)
        transitions = StatsTransitionCosts(stats)
        return cls(optimizer, transitions, **wfit_options)

    # -- workload interception -------------------------------------------------

    def execute(self, statement: Union[str, Statement]) -> Statement:
        """Intercept one statement (SQL text or AST); returns the AST.

        In a real deployment this is where the statement would also be
        forwarded to the database for execution.
        """
        parsed = (
            parse_statement(statement) if isinstance(statement, str) else statement
        )
        self._tuner.analyze_statement(parsed)
        self._statements_seen += 1
        self._log("statement", to_sql(parsed))
        return parsed

    def execute_many(self, statements: Iterable[Union[str, Statement]]) -> int:
        """Intercept a batch; returns how many statements were analyzed."""
        count = 0
        for statement in statements:
            self.execute(statement)
            count += 1
        return count

    # -- recommendations and feedback ---------------------------------------------

    def recommendation(self) -> Recommendation:
        """The current recommendation, diffed against the materialized set."""
        rec = Recommendation(
            recommended=self._tuner.recommend(),
            materialized=frozenset(self._materialized),
        )
        self._log(
            "recommendation",
            f"create={len(rec.to_create)} drop={len(rec.to_drop)}",
        )
        return rec

    def vote_up(self, *indices: Index) -> FrozenSet[Index]:
        """Explicit positive votes; returns the adjusted recommendation."""
        rec = self._tuner.feedback(frozenset(indices), frozenset())
        self._log("vote", "+" + ", +".join(ix.name for ix in indices))
        return rec

    def vote_down(self, *indices: Index) -> FrozenSet[Index]:
        """Explicit negative votes; returns the adjusted recommendation."""
        rec = self._tuner.feedback(frozenset(), frozenset(indices))
        self._log("vote", "-" + ", -".join(ix.name for ix in indices))
        return rec

    def vote(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Simultaneous votes, as in the paper's feedback model."""
        rec = self._tuner.feedback(frozenset(f_plus), frozenset(f_minus))
        self._log(
            "vote",
            "+{" + ", ".join(ix.name for ix in sorted(f_plus)) + "} "
            "-{" + ", ".join(ix.name for ix in sorted(f_minus)) + "}",
        )
        return rec

    # -- DBA actions (implicit feedback) ----------------------------------------------

    def create_index(self, index: Index) -> None:
        """The DBA materializes an index; WFIT learns via an implicit +vote."""
        if index in self._materialized:
            raise ValueError(f"{index.name} is already materialized")
        self._materialized.add(index)
        self._tuner.notify_materialized(created={index}, dropped=frozenset())
        self._log("create", index.name)

    def drop_index(self, index: Index) -> None:
        """The DBA drops an index; WFIT learns via an implicit −vote."""
        if index not in self._materialized:
            raise ValueError(f"{index.name} is not materialized")
        self._materialized.discard(index)
        self._tuner.notify_materialized(created=frozenset(), dropped={index})
        self._log("drop", index.name)

    def adopt(self) -> Tuple[Tuple[Index, ...], Tuple[Index, ...]]:
        """Adopt the current recommendation wholesale.

        Returns ``(created, dropped)``. Equivalent to the lagged-DBA
        acceptance of Figure 11 (with its lease-renewing implicit votes).
        """
        rec = self._tuner.recommend()
        created = tuple(sorted(rec - self._materialized))
        dropped = tuple(sorted(self._materialized - rec))
        self._materialized = set(rec)
        self._tuner.feedback(rec, frozenset(dropped))
        for index in created:
            self._log("create", index.name)
        for index in dropped:
            self._log("drop", index.name)
        return created, dropped

    # -- introspection ---------------------------------------------------------------

    @property
    def materialized(self) -> FrozenSet[Index]:
        return frozenset(self._materialized)

    @property
    def statements_seen(self) -> int:
        return self._statements_seen

    @property
    def tuner(self) -> WFIT:
        return self._tuner

    def history(self) -> Tuple[AdvisorEvent, ...]:
        return tuple(self._events)

    def overhead(self) -> Dict[str, float]:
        """What-if accounting for the session so far."""
        return {
            "whatif_calls": float(self._optimizer.whatif_calls),
            "optimizations": float(self._optimizer.optimizations),
            "per_statement": (
                self._optimizer.optimizations / self._statements_seen
                if self._statements_seen
                else 0.0
            ),
        }

    def _log(self, kind: str, detail: str) -> None:
        self._events.append(AdvisorEvent(kind, detail, self._statements_seen))
