"""Experiment harness: shared context and per-figure drivers (§6)."""

from .context import ExperimentContext, bench_parameters, get_context
from .figures import (
    FigureResult,
    figure8_baseline,
    figure9_feedback,
    figure10_feedback_independent,
    figure11_lag,
    figure11_lag_engine,
    figure12_auto,
    overhead_table,
)

__all__ = [
    "ExperimentContext",
    "FigureResult",
    "bench_parameters",
    "figure10_feedback_independent",
    "figure11_lag",
    "figure11_lag_engine",
    "figure12_auto",
    "figure8_baseline",
    "figure9_feedback",
    "get_context",
    "overhead_table",
]
