"""Shared experiment context: the expensive setup every figure reuses.

Building a figure needs the catalog, a shared what-if optimizer (its cache
is the analogue of configuration-parametric optimization [8] and is what
keeps the experiments fast), the benchmark workload, the fixed candidate
set/partitions of §6.1, and the OPT reference schedule. All of that is
assembled once per parameter set and cached.

Scale knobs (environment variables, used by the ``benchmarks/`` tree):

* ``REPRO_BENCH_STATEMENTS`` — statements per phase (default 50; the paper
  runs 200).
* ``REPRO_BENCH_SCALE`` — dataset scale factor (default 0.05).
* ``REPRO_BENCH_SEED`` — workload seed (default 7).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..core.offline import FixedPartitionResult, compute_fixed_partition
from ..core.opt import OfflineOptimizer, OptimalSchedule
from ..core.partitioning import choose_partition
from ..db import Catalog, Index, StatsRepository, StatsTransitionCosts
from ..db.datagen import build_catalog
from ..optimizer import WhatIfOptimizer
from ..workload import Workload, generate_workload, scaled_phases

__all__ = ["ExperimentContext", "get_context", "bench_parameters"]


def bench_parameters() -> Tuple[int, float, int]:
    """(statements per phase, scale, seed) from the environment."""
    per_phase = int(os.environ.get("REPRO_BENCH_STATEMENTS", "50"))
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "7"))
    return per_phase, scale, seed


@dataclass
class ExperimentContext:
    """Everything a figure experiment needs, built once."""

    per_phase: int
    scale: float
    seed: int
    catalog: Catalog
    stats: StatsRepository
    optimizer: WhatIfOptimizer
    transitions: StatsTransitionCosts
    workload: Workload
    fixed: FixedPartitionResult                      # stateCnt=2000 reference
    partitions: Dict[int, Tuple[FrozenSet[Index], ...]]  # per stateCnt
    opt_schedule: OptimalSchedule
    checkpoints: Tuple[int, ...]

    @property
    def statements(self):
        return self.workload.statements

    def partition_for(self, state_cnt: int) -> Tuple[FrozenSet[Index], ...]:
        """The §6.1 fixed partition of C under a given stateCnt budget."""
        return self.partitions[state_cnt]

    def ratio_series(self, total_work_series: Sequence[float]) -> Dict[int, float]:
        """totWork(OPT, Q_n) / totWork(A, Q_n) at every checkpoint."""
        out: Dict[int, float] = {}
        for n in self.checkpoints:
            algorithm_work = total_work_series[n - 1]
            out[n] = (
                self.opt_schedule.optimum_at(n) / algorithm_work
                if algorithm_work > 0
                else float("nan")
            )
        return out


_CACHE: Dict[Tuple[int, float, int, int, Tuple[int, ...]], ExperimentContext] = {}

#: The paper's stateCnt settings for Figure 8, largest first (the reference
#: partition for OPT is the most detailed one).
STATE_COUNTS = (2000, 500, 100)


def get_context(
    per_phase: Optional[int] = None,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    idx_cnt: int = 40,
    state_counts: Tuple[int, ...] = STATE_COUNTS,
) -> ExperimentContext:
    """Build (or fetch the cached) experiment context."""
    env_per_phase, env_scale, env_seed = bench_parameters()
    per_phase = env_per_phase if per_phase is None else per_phase
    scale = env_scale if scale is None else scale
    seed = env_seed if seed is None else seed
    key = (per_phase, scale, seed, idx_cnt, tuple(sorted(state_counts)))
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    catalog, stats = build_catalog(scale=scale)
    optimizer = WhatIfOptimizer(stats)
    transitions = StatsTransitionCosts(stats)
    workload = generate_workload(
        catalog, stats, scaled_phases(per_phase), seed=seed
    )
    reference_state_cnt = max(state_counts)
    fixed = compute_fixed_partition(
        workload.statements,
        optimizer,
        transitions,
        idx_cnt=idx_cnt,
        state_cnt=reference_state_cnt,
        seed=0,
    )
    partitions: Dict[int, Tuple[FrozenSet[Index], ...]] = {
        reference_state_cnt: fixed.partition
    }
    import random as _random
    for state_cnt in state_counts:
        if state_cnt in partitions:
            continue
        def doi_lookup(a, b, _avg=fixed.average_doi):
            pair = (a, b) if a <= b else (b, a)
            return _avg.get(pair, 0.0)
        partitions[state_cnt] = tuple(choose_partition(
            fixed.candidates,
            state_cnt,
            current_partition=[],
            doi=doi_lookup,
            rng=_random.Random(0),
        ))

    checkpoints = tuple(
        per_phase * k for k in range(1, len(workload.phase_boundaries) + 1)
    )
    opt_schedule = OfflineOptimizer(
        fixed.partition, frozenset(), optimizer.cost, transitions
    ).run(workload.statements, checkpoints=checkpoints)

    context = ExperimentContext(
        per_phase=per_phase,
        scale=scale,
        seed=seed,
        catalog=catalog,
        stats=stats,
        optimizer=optimizer,
        transitions=transitions,
        workload=workload,
        fixed=fixed,
        partitions=partitions,
        opt_schedule=opt_schedule,
        checkpoints=checkpoints,
    )
    _CACHE[key] = context
    return context
