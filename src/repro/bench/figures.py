"""Experiment drivers: one function per figure of the paper's §6.

Every function returns a :class:`FigureResult` whose curves map checkpoint
(query #) to the normalized metric ``totWork(OPT, Q_n) / totWork(A, Q_n)``
— the y-axis of Figures 8–12 ("Total Work Ratio, OPT = 1").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.bc import BC
from ..core.driver import TuningResult, run_online
from ..core.wfit import WFIT
from .context import ExperimentContext

__all__ = [
    "FigureResult",
    "figure8_baseline",
    "figure9_feedback",
    "figure10_feedback_independent",
    "figure11_lag",
    "figure11_lag_engine",
    "figure12_auto",
    "overhead_table",
]


@dataclass
class FigureResult:
    """Curves of one figure: label -> {query # -> total-work ratio}."""

    name: str
    description: str
    curves: Dict[str, Dict[int, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_curve(self, label: str, series: Dict[int, float]) -> None:
        self.curves[label] = series

    def final_ratio(self, label: str) -> float:
        series = self.curves[label]
        return series[max(series)]

    def format_table(self) -> str:
        """Paper-style text table: one row per curve, one column per checkpoint."""
        checkpoints = sorted(next(iter(self.curves.values()))) if self.curves else []
        width = max((len(label) for label in self.curves), default=8)
        header = f"{self.name}: {self.description}"
        lines = [header, "-" * len(header)]
        lines.append(
            " " * (width + 2)
            + "".join(f"q={n:<8d}" for n in checkpoints)
        )
        for label, series in self.curves.items():
            row = f"{label:<{width}}  " + "".join(
                f"{series.get(n, float('nan')):<10.3f}" for n in checkpoints
            )
            lines.append(row)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _run_and_ratio(
    context: ExperimentContext, algorithm, **run_kwargs
) -> Tuple[Dict[int, float], TuningResult]:
    result = run_online(
        algorithm,
        context.statements,
        context.optimizer.cost,
        context.transitions,
        optimizer=context.optimizer,
        **run_kwargs,
    )
    return context.ratio_series(result.total_work_series), result


def _default_state_cnt(context: ExperimentContext) -> int:
    """The paper's workhorse setting (500) when available, else the largest."""
    if 500 in context.partitions:
        return 500
    return max(context.partitions)


def _fresh_wfit(context: ExperimentContext, state_cnt: Optional[int] = None) -> WFIT:
    if state_cnt is None:
        state_cnt = _default_state_cnt(context)
    return WFIT(
        context.optimizer,
        context.transitions,
        fixed_partition=context.partition_for(state_cnt),
    )


def figure8_baseline(context: ExperimentContext) -> FigureResult:
    """Figure 8: baseline performance evaluation.

    WFIT under stateCnt ∈ {2000, 500, 100}, WFIT-IND (independence
    assumption), and BC, all over the same fixed candidate set, normalized
    to OPT. Expected shape: graceful degradation 2000 → 100, a larger drop
    for WFIT-IND, and BC clearly below WFIT.
    """
    result = FigureResult(
        name="Figure 8",
        description="baseline total-work ratio vs OPT (fixed stable partition)",
    )
    for state_cnt in sorted(context.partitions, reverse=True):
        series, _ = _run_and_ratio(context, _fresh_wfit(context, state_cnt))
        result.add_curve(f"WFIT-{state_cnt}", series)
    ind = WFIT(
        context.optimizer,
        context.transitions,
        fixed_partition=context.fixed.singleton_partition(),
    )
    series, _ = _run_and_ratio(context, ind)
    result.add_curve("WFIT-IND", series)
    bc = BC(
        context.fixed.candidates,
        frozenset(),
        context.optimizer.cost,
        context.transitions,
    )
    series, _ = _run_and_ratio(context, bc)
    result.add_curve("BC", series)
    return result


def figure9_feedback(
    context: ExperimentContext, vote_period: Optional[int] = None
) -> FigureResult:
    """Figure 9: the effect of DBA feedback (V_GOOD / none / V_BAD).

    Votes follow the prescient-DBA model: aligned with (resp. opposed to)
    the offline-optimal schedule, re-affirmed every ``vote_period``
    statements (default: one phase). Expected shape: GOOD above the
    baseline and approaching OPT; BAD below but recovering — never
    collapsing — as the workload overrides the erroneous votes.
    """
    period = vote_period if vote_period is not None else context.per_phase
    result = FigureResult(
        name="Figure 9",
        description="effect of DBA feedback",
    )
    good = context.opt_schedule.sustained_events(period, good=True)
    bad = context.opt_schedule.sustained_events(period, good=False)
    series, _ = _run_and_ratio(
        context, _fresh_wfit(context), feedback_events=good
    )
    result.add_curve("GOOD", series)
    series, _ = _run_and_ratio(context, _fresh_wfit(context))
    result.add_curve("WFIT", series)
    series, _ = _run_and_ratio(
        context, _fresh_wfit(context), feedback_events=bad
    )
    result.add_curve("BAD", series)
    result.notes.append(
        "votes re-affirmed every "
        f"{period} statements (see EXPERIMENTS.md on event-timed votes)"
    )
    return result


def figure10_feedback_independent(
    context: ExperimentContext, vote_period: Optional[int] = None
) -> FigureResult:
    """Figure 10: feedback under the independence assumption.

    WFIT-IND has inaccurate internal statistics (all interactions ignored),
    so good feedback should still lift it (the paper omits BAD here).
    """
    period = vote_period if vote_period is not None else context.per_phase
    result = FigureResult(
        name="Figure 10",
        description="DBA feedback under the independence assumption",
    )
    good = context.opt_schedule.sustained_events(period, good=True)

    def fresh_ind() -> WFIT:
        return WFIT(
            context.optimizer,
            context.transitions,
            fixed_partition=context.fixed.singleton_partition(),
        )

    series, _ = _run_and_ratio(context, fresh_ind(), feedback_events=good)
    result.add_curve("GOOD-IND", series)
    series, _ = _run_and_ratio(context, fresh_ind())
    result.add_curve("WFIT-IND", series)
    return result


def figure11_lag(
    context: ExperimentContext, lags: Tuple[int, ...] = (1, 25, 50, 75)
) -> FigureResult:
    """Figure 11: effect of delayed DBA responses.

    The DBA requests and accepts the recommendation every T statements
    (T=1 grants full autonomy). Acceptance renews the lease via implicit
    feedback. Expected: performance degrades with T but does not keep
    degrading — the curves flatten out.
    """
    result = FigureResult(
        name="Figure 11",
        description="effect of delayed responses (lag T)",
    )
    for lag in lags:
        label = "WFIT" if lag == 1 else f"LAG {lag}"
        series, _ = _run_and_ratio(
            context, _fresh_wfit(context), adopt_period=lag
        )
        result.add_curve(label, series)
    return result


def figure11_lag_engine(
    context: ExperimentContext, lags: Tuple[int, ...] = (1, 25, 50, 75)
) -> FigureResult:
    """Figure 11 replayed through the *service engine's* live accounting.

    The same lagged-DBA model as :func:`figure11_lag`, but driven through
    :class:`~repro.service.engine.TuningEngine` as a real client would:
    statements are submitted and pumped one at a time, and every T
    statements the DBA adopts the current recommendation
    (``lease=lag > 1`` reproduces ``run_online``'s convention of casting
    lease feedback only for a genuinely lagged DBA). The curves are the
    engine's **realized** totWork ratio — the series
    ``metrics()["realized_total_work"]`` reports — so this function is
    the cross-check that the engine's online accounting reproduces the
    offline Figure 11 experiment exactly (the bit-identity is asserted
    in ``tests/bench/test_harness.py``).
    """
    from ..service.engine import TuningEngine

    result = FigureResult(
        name="Figure 11 (engine)",
        description="effect of delayed responses, engine realized totWork",
    )
    for lag in lags:
        label = "WFIT" if lag == 1 else f"LAG {lag}"
        engine = TuningEngine(
            context.optimizer,
            context.transitions,
            batch_size=1,
            fixed_partition=context.partition_for(_default_state_cnt(context)),
        )
        series: List[float] = []
        for position, statement in enumerate(context.statements):
            engine.submit("dba", statement)
            engine.pump()
            if (position + 1) % lag == 0:
                engine.adopt("dba", lease=lag > 1)
            series.append(engine.realized_total_work)
        engine.close()
        result.add_curve(label, context.ratio_series(series))
    return result


def figure12_auto(
    context: ExperimentContext, state_cnt: Optional[int] = None
) -> FigureResult:
    """Figure 12: automatic maintenance of the stable partition.

    FIXED uses the offline-chosen partition for the whole workload; AUTO
    lets chooseCands/repartition evolve candidates online. Expected: AUTO
    at least matches FIXED and may exceed OPT early, because it can
    specialize candidates per phase while OPT is stuck with one set.
    """
    result = FigureResult(
        name="Figure 12",
        description="automatic maintenance of the stable partition",
    )
    if state_cnt is None:
        state_cnt = _default_state_cnt(context)
    auto = WFIT(
        context.optimizer,
        context.transitions,
        idx_cnt=40,
        state_cnt=state_cnt,
        seed=1,
    )
    series, _ = _run_and_ratio(context, auto)
    result.add_curve("AUTO", series)
    result.notes.append(
        f"AUTO mined {len(auto.universe)} candidate indices and "
        f"changed the stable partition {auto.repartition_count} times"
    )
    series, _ = _run_and_ratio(context, _fresh_wfit(context, state_cnt))
    result.add_curve("FIXED", series)
    return result


def overhead_table(context: ExperimentContext) -> FigureResult:
    """§6.2 overhead: per-statement analysis time and what-if optimizations.

    The paper reports ~300 ms per query for WFIT over DB2, 5–100 what-if
    optimizations per query, and a ~25× overhead reduction when dropping
    stateCnt to 100. Wall-clock numbers here are for the pure-Python
    substrate; the machine-independent metric is optimizer calls/statement.
    """
    result = FigureResult(
        name="Overhead",
        description="per-statement overhead (ms and what-if optimizations)",
    )
    n_statements = len(context.statements)

    def _overhead_curve(run: TuningResult) -> Dict[int, float]:
        # Counters were reset before the run, so the optimizer's derived
        # hit rates are this run's rates.
        cache = context.optimizer.cache_stats()
        return {
            1: run.wall_time_seconds * 1000.0 / n_statements,   # ms/stmt
            2: run.optimizations / n_statements,                # optimizations/stmt
            3: run.whatif_calls / n_statements,                 # cost lookups/stmt
            4: cache["statement_hit_rate"],                     # stmt-memo hit rate
            5: cache["ibg_hit_rate"],                           # IBG-cache hit rate
            6: cache["template_hit_rate"],                      # template-cache hit rate
            7: cache["template_builds"] / n_statements,         # template builds/stmt
        }

    for state_cnt in sorted(context.partitions, reverse=True):
        context.optimizer.clear_cache()
        context.optimizer.reset_counters()
        wfit = _fresh_wfit(context, state_cnt)
        _, run = _run_and_ratio(context, wfit)
        result.add_curve(f"WFIT-{state_cnt}", _overhead_curve(run))
    context.optimizer.clear_cache()
    context.optimizer.reset_counters()
    auto = WFIT(
        context.optimizer, context.transitions, idx_cnt=40,
        state_cnt=_default_state_cnt(context), seed=1,
    )
    _, run = _run_and_ratio(context, auto)
    result.add_curve("WFIT-AUTO", _overhead_curve(run))
    result.notes.append(
        "columns: q=1 → ms per statement; q=2 → optimizer plan "
        "optimizations per statement (template builds + scalar fallbacks); "
        "q=3 → cached cost lookups per statement; "
        "q=4 → what-if statement-cache hit rate; q=5 → IBG graph-cache hit "
        "rate; q=6 → plan-template-cache hit rate; q=7 → template builds "
        "per statement"
    )
    return result
