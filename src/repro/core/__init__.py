# reprolint: zone=deterministic
"""The paper's algorithms: WFA, WFA⁺, WFIT, OPT, BC, and the tuning driver."""

from .bc import BC
from .candidates import IndexStatistics, RecencyStatistic, top_indices
from .driver import TuningPoint, TuningResult, run_online
from .offline import FixedPartitionResult, compute_fixed_partition
from .opt import FeedbackEvent, OfflineOptimizer, OptimalSchedule, brute_force_opt
from .partitioning import choose_partition, partition_loss, pairwise_loss, state_count
from .wfa import WFA, TransitionCosts
from .wfa_kernel import available_backends, default_backend, force_backend, make_kernel
from .wfa_plus import WFAPlus, validate_partition
from .wfit import WFIT

__all__ = [
    "BC",
    "FeedbackEvent",
    "FixedPartitionResult",
    "IndexStatistics",
    "OfflineOptimizer",
    "OptimalSchedule",
    "RecencyStatistic",
    "TransitionCosts",
    "TuningPoint",
    "TuningResult",
    "WFA",
    "WFAPlus",
    "WFIT",
    "available_backends",
    "brute_force_opt",
    "choose_partition",
    "compute_fixed_partition",
    "default_backend",
    "force_backend",
    "make_kernel",
    "partition_loss",
    "pairwise_loss",
    "run_online",
    "state_count",
    "top_indices",
    "validate_partition",
]
