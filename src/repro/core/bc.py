# reprolint: zone=deterministic
"""BC: adaptation of the Bruno–Chaudhuri online tuning algorithm [5] (§6.1).

Like the paper's own competitor, this is an adaptation: the original was
built inside MS SQL Server. The reproduction follows the structure the paper
ascribes to it:

* a stable partition of **full index independence** — every candidate index
  is evaluated on its own, so each index is credited its *standalone*
  benefit ``cost(q, ∅) − cost(q, {a})`` regardless of what else is
  materialized;
* a ski-rental-style threshold per index: an index is *created* once its
  accumulated net benefit exceeds its round-trip transition cost, and
  *dropped* once its accumulated penalty (maintenance minus residual
  benefit) exceeds the same threshold — the structure behind the
  3-competitive guarantee of [5] for the single-index case;
* a heuristic adjustment for index interactions ("after a query is
  analyzed, BC heuristically adjusts the measured index benefits"): when
  several indices of the same table earn credit from one statement, the
  credit is split among them, damping — but not eliminating — the double
  counting that full independence causes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import AbstractSet, Dict, FrozenSet, List, Set, Tuple

from ..db.index import Index
from .wfa import CostFunction

__all__ = ["BC"]


class BC:
    """Per-index online tuner with create/drop accumulators."""

    def __init__(
        self,
        candidates: AbstractSet[Index],
        initial_config: AbstractSet[Index],
        cost_fn: CostFunction,
        transitions,
        threshold_factor: float = 1.0,
    ) -> None:
        """``threshold_factor`` scales the create/drop trigger relative to
        the round-trip transition cost δ⁺(a) + δ⁻(a)."""
        self._candidates: FrozenSet[Index] = frozenset(candidates)
        stray = frozenset(initial_config) - self._candidates
        if stray:
            raise ValueError(
                f"initial config outside candidate set: {sorted(i.name for i in stray)}"
            )
        self._cost_fn = cost_fn
        self._transitions = transitions
        self._threshold: Dict[Index, float] = {
            index: threshold_factor
            * (transitions.create_cost(index) + transitions.drop_cost(index))
            for index in self._candidates
        }
        self._recommended: Set[Index] = set(initial_config)
        # delta[a] > 0 accumulates toward creation; < 0 toward dropping.
        self._delta: Dict[Index, float] = {ix: 0.0 for ix in self._candidates}
        self._statements_analyzed = 0

    @property
    def candidates(self) -> FrozenSet[Index]:
        return self._candidates

    @property
    def statements_analyzed(self) -> int:
        return self._statements_analyzed

    def recommend(self) -> FrozenSet[Index]:
        return frozenset(self._recommended)

    def _standalone_benefits(self, statement: object) -> Dict[Index, float]:
        """Per-index standalone benefit/penalty, interaction-adjusted."""
        relevant_tables = set(statement.tables_referenced())
        empty_cost = self._cost_fn(statement, frozenset())
        raw: Dict[Index, float] = {}
        positive_by_table: Dict[str, List[Index]] = defaultdict(list)
        for index in sorted(self._candidates):
            if index.table not in relevant_tables:
                continue
            benefit = empty_cost - self._cost_fn(statement, frozenset({index}))
            raw[index] = benefit
            if benefit > 0:
                positive_by_table[index.table].append(index)
        # Interaction heuristic: indices of the same table that all claim
        # benefit from this statement are (at least partly) redundant, so the
        # credit is split among them.
        adjusted: Dict[Index, float] = {}
        for index, benefit in raw.items():
            if benefit > 0:
                claimants = len(positive_by_table[index.table])
                adjusted[index] = benefit / claimants
            else:
                adjusted[index] = benefit  # penalties are charged in full
        return adjusted

    def analyze_statement(self, statement: object) -> FrozenSet[Index]:
        """Update accumulators with the statement and adjust the config."""
        benefits = self._standalone_benefits(statement)
        for index, value in benefits.items():
            if index in self._recommended:
                # Materialized: penalties (negative values, e.g. update
                # maintenance) accumulate toward dropping; realized benefit
                # pays accumulated pain back, but is never banked (capped
                # at zero) — past glory does not excuse future overhead.
                self._delta[index] = min(0.0, self._delta[index] + value)
            else:
                # Absent: forgone benefit accumulates toward creation;
                # avoided penalties (updates it would have had to absorb)
                # push the accumulator back down.
                self._delta[index] = max(0.0, self._delta[index] + value)

        for index in sorted(benefits):
            if index in self._recommended:
                if self._delta[index] <= -self._threshold[index]:
                    self._recommended.discard(index)
                    self._delta[index] = 0.0
            else:
                if self._delta[index] >= self._threshold[index]:
                    self._recommended.add(index)
                    self._delta[index] = 0.0
        self._statements_analyzed += 1
        return self.recommend()
