# reprolint: zone=deterministic
"""Bitset configuration kernel: configurations as Python ints.

Every hot loop of WFIT — the work-function update (``O(2^k · k)`` states
per statement and part), the Index Benefit Graph traversal, the what-if
cache, and the randomized partition search — operates on *configurations*:
subsets of the candidate index set. The seed implementation represented
them as ``frozenset`` objects, which makes every cost lookup hash a
container and every transition cost a Python-level set walk. This module
replaces that representation with plain integers.

Encoding
--------
An :class:`IndexUniverse` assigns each candidate :class:`~repro.db.index.Index`
a *bit position*; positions are stable for the lifetime of the universe
(new indices only ever append). A configuration ``X`` is then the int

    mask(X) = Σ_{a ∈ X} 1 << position(a)

which turns the set algebra of the paper into machine-word arithmetic:

===============================  =============================
set expression                   mask expression
===============================  =============================
``X ∪ Y``                        ``x | y``
``X ∩ Y``                        ``x & y``
``X − Y``                        ``x & ~y``
``X ⊆ Y``                        ``x & ~y == 0``
``|X|``                          ``x.bit_count()``
``a ∈ X``                        ``x >> pos(a) & 1``
===============================  =============================

Transition costs
----------------
The paper's δ decomposes into independent per-index create/drop charges
(Appendix A), so for a *part* of ``k`` indices a :class:`MaskDeltaTable`
precomputes the prefix sums ``create_sum[m]`` / ``drop_sum[m]`` for every
``m < 2^k`` in ``O(2^k)`` and answers

    δ(old, new) = create_sum[new & ~old] + drop_sum[old & ~new]

with two array reads — the "popcount over XOR masks" kernel: the indices
that changed are exactly the bits of ``old ^ new``, split by direction.

:func:`delta_cost` is the single set-level implementation of δ shared by
:class:`~repro.core.wfa.TransitionCosts`,
:class:`~repro.db.transitions.StatsTransitionCosts` and WFIT's
repartitioning (it sums in sorted index order, making totals independent
of set iteration order and hence of ``PYTHONHASHSEED``).
"""

from __future__ import annotations

from array import array as _array
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from ..db.index import Index

__all__ = [
    "IndexUniverse",
    "MaskDeltaTable",
    "delta_cost",
    "iter_bits",
    "iter_submasks",
    "popcount",
]


def popcount(mask: int) -> int:
    """``|X|`` for a configuration mask."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bits of ``mask`` as single-bit ints, lowest first."""
    while mask:
        bit = mask & -mask
        yield bit
        mask ^= bit


def iter_submasks(mask: int) -> Iterator[int]:
    """Enumerate every submask of ``mask`` (``2^popcount`` of them).

    Order: descending by value, ending with 0. The classic
    ``sub = (sub - 1) & mask`` walk — each step is O(1), so enumerating
    the power set of a part costs one int operation per configuration.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


class IndexUniverse:
    """Assigns each candidate index a stable bit position.

    The universe is *append-only*: :meth:`ensure` registers unseen indices
    at the next free position and never re-assigns, so masks encoded at any
    point remain valid for the lifetime of the universe (this is what lets
    the what-if cache key on ints). Indices passed to the constructor —
    and every batch of unseen indices inside :meth:`encode` — register in
    sorted order, so bit assignment depends only on the order of
    registration *events*, never on set iteration order: runs are
    reproducible regardless of ``PYTHONHASHSEED``, and for
    constructor-seeded universes the lowest set bit of a mask corresponds
    to the least index (the deterministic-choice convention of the WFA
    tie-break).

    Per-table bitmasks are maintained incrementally so that "the indices of
    configuration X that live on the tables of statement q" — the paper's
    relevance reduction — is a single ``&``.
    """

    __slots__ = ("_indices", "_position", "_table_masks")

    def __init__(self, indices: Iterable[Index] = ()) -> None:
        self._indices: List[Index] = []
        self._position: Dict[Index, int] = {}
        self._table_masks: Dict[str, int] = {}
        for index in sorted(set(indices)):
            self.ensure(index)

    # -- registration --------------------------------------------------------

    def ensure(self, index: Index) -> int:
        """Return ``index``'s bit position, registering it if unseen."""
        pos = self._position.get(index)
        if pos is None:
            pos = len(self._indices)
            self._position[index] = pos
            self._indices.append(index)
            self._table_masks[index.table] = (
                self._table_masks.get(index.table, 0) | (1 << pos)
            )
        return pos

    def bit_of(self, index: Index) -> int:
        """The single-bit mask of ``index`` (which must be registered)."""
        return 1 << self._position[index]

    def position(self, index: Index) -> Optional[int]:
        """``index``'s bit position, or None if unregistered."""
        return self._position.get(index)

    # -- encode / decode -----------------------------------------------------

    def encode(self, subset: Iterable[Index]) -> int:
        """Mask of ``subset``, registering any unseen index.

        Unseen indices are registered in sorted order (per batch), so bit
        assignment never depends on set iteration order — and therefore not
        on ``PYTHONHASHSEED`` — keeping IBG traversals and cache layouts
        reproducible across runs.
        """
        mask = 0
        position = self._position
        missing: Optional[List[Index]] = None
        for index in subset:
            pos = position.get(index)
            if pos is None:
                if missing is None:
                    missing = []
                missing.append(index)
            else:
                mask |= 1 << pos
        if missing:
            ensure = self.ensure
            for index in sorted(missing):
                mask |= 1 << ensure(index)
        return mask

    def project(self, subset: Iterable[Index]) -> int:
        """Mask of the *registered* members of ``subset`` (ignores the rest).

        The mask analogue of ``frozenset(subset) & candidates``.
        """
        mask = 0
        position = self._position
        for index in subset:
            pos = position.get(index)
            if pos is not None:
                mask |= 1 << pos
        return mask

    def decode(self, mask: int) -> FrozenSet[Index]:
        """The configuration a mask encodes."""
        indices = self._indices
        return frozenset(
            indices[bit.bit_length() - 1] for bit in iter_bits(mask)
        )

    def decode_sorted(self, mask: int) -> Tuple[Index, ...]:
        """Like :meth:`decode` but a sorted tuple (deterministic output)."""
        indices = self._indices
        return tuple(sorted(
            indices[bit.bit_length() - 1] for bit in iter_bits(mask)
        ))

    def index_at(self, bit: int) -> Index:
        """The index a single-bit mask encodes."""
        return self._indices[bit.bit_length() - 1]

    def table_mask(self, table: str) -> int:
        """Mask of every registered index on ``table``."""
        return self._table_masks.get(table, 0)

    def tables_mask(self, tables: Iterable[str]) -> int:
        """Mask of every registered index on any of ``tables``."""
        mask = 0
        table_masks = self._table_masks
        for table in tables:
            mask |= table_masks.get(table, 0)
        return mask

    # -- checkpoint hooks ----------------------------------------------------

    def export_order(self) -> Tuple[Index, ...]:
        """The registered indices in bit-position order (checkpoint hook).

        Replaying this sequence through :meth:`extend_order` reproduces the
        exact bit assignment, so masks (and mask-keyed cache layouts)
        serialized at checkpoint time stay meaningful after restore.
        """
        return tuple(self._indices)

    def extend_order(self, indices: Iterable[Index]) -> None:
        """Register ``indices`` sequentially (the restore hook).

        Unlike the constructor — which sorts its seed batch — this
        registers in the given order: replaying an :meth:`export_order`
        sequence into a fresh universe reproduces the exact bit
        assignment (and hence mask-keyed cache layout) recorded at
        checkpoint time. Already-registered indices keep their position.
        """
        for index in indices:
            self.ensure(index)

    # -- mask predicates (free functions of the encoding) -------------------

    @staticmethod
    def is_subset(a: int, b: int) -> bool:
        """``A ⊆ B`` as a mask operation."""
        return a & ~b == 0

    @staticmethod
    def is_superset(a: int, b: int) -> bool:
        """``A ⊇ B`` as a mask operation."""
        return b & ~a == 0

    # -- container protocol --------------------------------------------------

    @property
    def indices(self) -> Tuple[Index, ...]:
        return tuple(self._indices)

    @property
    def full_mask(self) -> int:
        """Mask with every registered index present."""
        return (1 << len(self._indices)) - 1

    def __len__(self) -> int:
        return len(self._indices)

    def __contains__(self, index: Index) -> bool:
        return index in self._position


class MaskDeltaTable:
    """Precomputed transition costs δ over one part's local masks.

    Given per-bit create/drop costs for a part of ``k`` indices, builds the
    ``2^k`` prefix-sum arrays in one pass (each mask extends the mask with
    its lowest bit cleared), after which ``delta`` is two array lookups —
    the operation the WFA recommendation loop and the feedback
    consistent-configuration search execute ``O(2^k)`` times per statement.

    ``create_sum`` / ``drop_sum`` are contiguous ``array('d')`` buffers:
    indexable like the lists they replaced, and — because ``array``
    implements the buffer protocol — zero-copy viewable as float64
    vectors by the numpy work-function kernel
    (:mod:`repro.core.wfa_kernel`), so the scalar ``delta()`` reads and
    the kernel's vector gathers share one allocation.
    """

    __slots__ = ("create_sum", "drop_sum", "size")

    def __init__(
        self, create: Sequence[float], drop: Sequence[float]
    ) -> None:
        if len(create) != len(drop):
            raise ValueError("create/drop cost vectors must align")
        size = 1 << len(create)
        create_sum = _array("d", bytes(8 * size))
        drop_sum = _array("d", bytes(8 * size))
        for mask in range(1, size):
            low = mask & -mask
            rest = mask ^ low
            pos = low.bit_length() - 1
            create_sum[mask] = create_sum[rest] + create[pos]
            drop_sum[mask] = drop_sum[rest] + drop[pos]
        self.create_sum = create_sum
        self.drop_sum = drop_sum
        self.size = size

    def delta(self, old: int, new: int) -> float:
        """δ(old, new): create what's new, drop what's gone."""
        return self.create_sum[new & ~old] + self.drop_sum[old & ~new]

    def round_trip(self, mask: int) -> float:
        """Σ (δ⁺ + δ⁻) over the indices of ``mask`` (feedback bound 5.1)."""
        return self.create_sum[mask] + self.drop_sum[mask]


class TransitionCostProvider(Protocol):
    """Per-index transition charges, the δ decomposition of Appendix A."""

    def create_cost(self, index: Index) -> float: ...

    def drop_cost(self, index: Index) -> float: ...


def delta_cost(
    transitions: TransitionCostProvider,
    old: AbstractSet[Index],
    new: AbstractSet[Index],
) -> float:
    """δ(old, new) from a per-index cost provider, at the set level.

    The one shared implementation of the transition charge: every index
    entering the configuration pays ``create_cost``, every index leaving
    pays ``drop_cost``. Summation is in sorted index order so the float
    total does not depend on set iteration order.
    """
    total = 0.0
    for index in sorted(new):
        if index not in old:
            total += transitions.create_cost(index)
    for index in sorted(old):
        if index not in new:
            total += transitions.drop_cost(index)
    return total
