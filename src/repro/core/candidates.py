# reprolint: zone=deterministic
"""Benefit / interaction statistics and top-index selection (§5.2.2).

``idxStats`` keeps, per index, the ``histSize`` most recent positive
max-benefit observations ``(n, β_n)``; ``intStats`` keeps the analogous
``(n, doi_n)`` pairs per index pair. Both are summarized by the LRU-K-
inspired *current* statistic

    current(N) = max_ℓ (v_1 + … + v_ℓ) / (N − n_ℓ + 1)

over entries ordered newest-first, which favors recent observations.
``topIndices`` then scores candidates by current benefit, charging
not-yet-monitored indices their creation cost so that the monitored set
stays stable (Figure 6, line 5).
"""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, Deque, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..db.index import Index

__all__ = ["RecencyStatistic", "IndexStatistics", "top_indices"]


class RecencyStatistic:
    """A bounded history of positive ``(position, value)`` observations."""

    def __init__(self, hist_size: int) -> None:
        if hist_size < 1:
            raise ValueError("hist_size must be >= 1")
        self._entries: Deque[Tuple[int, float]] = deque(maxlen=hist_size)

    def record(self, position: int, value: float) -> None:
        """Append an observation; non-positive values are not recorded."""
        if value <= 0.0:
            return
        if self._entries and position <= self._entries[-1][0]:
            raise ValueError(
                f"observations must arrive in increasing position order "
                f"(got {position} after {self._entries[-1][0]})"
            )
        self._entries.append((position, value))

    def __len__(self) -> int:
        return len(self._entries)

    def export_state(self) -> List[List[float]]:
        """JSON-ready ``[position, value]`` pairs, oldest first."""
        return [[position, value] for position, value in self._entries]

    @classmethod
    def from_state(
        cls, hist_size: int, entries: Iterable[Tuple[int, float]]
    ) -> "RecencyStatistic":
        stat = cls(hist_size)
        for position, value in entries:
            stat.record(int(position), float(value))
        return stat

    def current(self, now: int) -> float:
        """The LRU-K style current value after ``now`` observed statements.

        ``max_ℓ (v_1 + … + v_ℓ) / (now − n_ℓ + 1)`` with entries newest
        first; 0 when the history is empty.
        """
        best = 0.0
        running = 0.0
        for position, value in reversed(self._entries):
            running += value
            window = now - position + 1
            if window < 1:
                raise ValueError(f"entry position {position} is in the future")
            average = running / window
            if average > best:
                best = average
        return best


def _pair_key(a: Index, b: Index) -> Tuple[Index, Index]:
    return (a, b) if a <= b else (b, a)


class IndexStatistics:
    """``idxStats`` and ``intStats`` of Figure 6, with current-value queries."""

    def __init__(self, hist_size: int = 100) -> None:
        self._hist_size = hist_size
        self._benefits: Dict[Index, RecencyStatistic] = {}
        self._interactions: Dict[Tuple[Index, Index], RecencyStatistic] = {}

    @property
    def hist_size(self) -> int:
        return self._hist_size

    def record_benefit(self, index: Index, position: int, beta: float) -> None:
        if beta <= 0.0:
            return
        stat = self._benefits.get(index)
        if stat is None:
            stat = RecencyStatistic(self._hist_size)
            self._benefits[index] = stat
        stat.record(position, beta)

    def record_interaction(
        self, a: Index, b: Index, position: int, doi: float
    ) -> None:
        if doi <= 0.0:
            return
        key = _pair_key(a, b)
        stat = self._interactions.get(key)
        if stat is None:
            stat = RecencyStatistic(self._hist_size)
            self._interactions[key] = stat
        stat.record(position, doi)

    def current_benefit(self, index: Index, now: int) -> float:
        """``benefit*_N(index)``."""
        stat = self._benefits.get(index)
        return stat.current(now) if stat is not None else 0.0

    def current_doi(self, a: Index, b: Index, now: int) -> float:
        """``doi*_N(a, b)`` (symmetric)."""
        stat = self._interactions.get(_pair_key(a, b))
        return stat.current(now) if stat is not None else 0.0

    def tracked_indices(self) -> FrozenSet[Index]:
        return frozenset(self._benefits)

    # -- checkpoint hooks ----------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """JSON-ready snapshot of ``idxStats`` and ``intStats``.

        Entries are sorted by index so the document is deterministic.
        """
        return {
            "hist_size": self._hist_size,
            "benefits": [
                {"index": index.to_payload(), "entries": stat.export_state()}
                for index, stat in sorted(self._benefits.items())
            ],
            "interactions": [
                {
                    "a": key[0].to_payload(),
                    "b": key[1].to_payload(),
                    "entries": stat.export_state(),
                }
                for key, stat in sorted(self._interactions.items())
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "IndexStatistics":
        hist_size = int(state["hist_size"])
        statistics = cls(hist_size)
        for item in state["benefits"]:
            index = Index.from_payload(item["index"])
            statistics._benefits[index] = RecencyStatistic.from_state(
                hist_size, item["entries"]
            )
        for item in state["interactions"]:
            key = _pair_key(
                Index.from_payload(item["a"]), Index.from_payload(item["b"])
            )
            statistics._interactions[key] = RecencyStatistic.from_state(
                hist_size, item["entries"]
            )
        return statistics

    def doi_lookup(self, now: int):
        """A ``doi(a, b) -> float`` callable bound to position ``now``."""
        def lookup(a: Index, b: Index) -> float:
            return self.current_doi(a, b, now)
        return lookup


def top_indices(
    pool: AbstractSet[Index],
    limit: int,
    monitored: AbstractSet[Index],
    statistics: IndexStatistics,
    now: int,
    transitions,
    create_penalty_factor: Optional[float] = None,
) -> List[Index]:
    """``topIndices(X, u)``: the ≤ ``limit`` highest-potential indices.

    Monitored indices score their current benefit; others are additionally
    charged their creation cost so they need extra evidence to evict a
    monitored index (stability of the candidate set, §5.2.2).

    Calibration note: the paper subtracts the raw creation cost. Because
    ``benefit*`` is a *per-statement average* while δ⁺ is a one-time cost —
    and in this cost model δ⁺ always exceeds any single statement's benefit
    — the raw charge would permanently lock every new index out once
    ``limit`` incumbents exist. The charge is therefore amortized over the
    statistics window: ``score = benefit* − δ⁺ · create_penalty_factor``
    with the factor defaulting to ``1 / hist_size``.
    """
    if limit <= 0:
        return []
    if create_penalty_factor is None:
        create_penalty_factor = 1.0 / statistics.hist_size
    scored: List[Tuple[float, Index]] = []
    for index in sorted(pool):
        score = statistics.current_benefit(index, now)
        if index not in monitored:
            score -= transitions.create_cost(index) * create_penalty_factor
        scored.append((score, index))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [index for _, index in scored[:limit]]
