# reprolint: zone=deterministic
"""Online tuning driver: totWork accounting and DBA interaction models.

``run_online`` feeds a workload to a tuning algorithm and accounts the total
work metric of §3.1:

    totWork(A, Q_N, V) = Σ_n  cost(q_n, S_n) + δ(S_{n−1}, S_n)

where ``S_n`` is the configuration in effect for statement ``n``. Three DBA
models from the experiments are supported:

* **Immediate adoption** (``adopt_period=1``): every recommendation is
  adopted — the convention of the baseline/feedback experiments.
* **Lagged adoption** (``adopt_period=T``, Figure 11): the DBA requests and
  accepts the recommendation every ``T`` statements; acceptance casts the
  implicit lease-renewing feedback (positive votes on the accepted set,
  negative on what it drops).
* **Vote streams** (Figures 9/10): explicit ``FeedbackEvent``s applied after
  the statement at their position (position −1 = before the workload).
"""

from __future__ import annotations

import time

# Reporting-only wall-clock seam: every timing read in this module
# flows through this alias so the R1 exemption is a single audited
# point rather than scattered call sites.
_perf_counter = time.perf_counter  # reprolint: disable=R1(feeds wall_time reporting only, never tuning state; bit-identity tests cover outputs)
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..db.index import Index
from .opt import FeedbackEvent
from .wfa import CostFunction

__all__ = ["TuningPoint", "TuningResult", "run_online"]


@dataclass(frozen=True)
class TuningPoint:
    """Per-statement accounting record.

    ``cumulative_total_work`` is the *realized* series: costs under the
    configurations actually in effect given the run's DBA model. The
    ``recommended_*`` fields (populated when ``run_online`` is called
    with ``track_recommended=True``, 0.0 otherwise) account the same
    statement under the algorithm's *instantaneous* recommendation —
    immediate adoption, the autonomous-WFIT series — so the gap between
    the two cumulatives prices the DBA's adoption lag (Figure 11).
    """

    position: int
    configuration: FrozenSet[Index]
    query_cost: float
    transition_cost: float
    cumulative_total_work: float
    recommended_query_cost: float = 0.0
    recommended_transition_cost: float = 0.0
    cumulative_recommended_work: float = 0.0


@dataclass
class TuningResult:
    """Outcome of one online tuning run."""

    points: List[TuningPoint]
    wall_time_seconds: float
    whatif_calls: int = 0
    optimizations: int = 0
    #: Whether the recommended (immediate-adoption) series was tracked.
    tracked_recommended: bool = False

    @property
    def total_work(self) -> float:
        return self.points[-1].cumulative_total_work if self.points else 0.0

    @property
    def total_work_series(self) -> List[float]:
        return [point.cumulative_total_work for point in self.points]

    @property
    def recommended_total_work(self) -> float:
        """Final immediate-adoption totWork (0.0 unless tracked)."""
        return (
            self.points[-1].cumulative_recommended_work if self.points else 0.0
        )

    @property
    def recommended_total_work_series(self) -> List[float]:
        return [point.cumulative_recommended_work for point in self.points]

    @property
    def adoption_lag_cost(self) -> float:
        """Realized minus recommended totWork: what the DBA's lag cost.

        Meaningful only for runs with ``track_recommended=True``; zero
        lag (``adopt_period=1``) makes the two series — and so this —
        exactly 0.0.
        """
        return self.total_work - self.recommended_total_work

    @property
    def final_configuration(self) -> FrozenSet[Index]:
        return self.points[-1].configuration if self.points else frozenset()

    def configuration_changes(self) -> int:
        """How many times the in-effect configuration changed."""
        changes = 0
        previous: Optional[FrozenSet[Index]] = None
        for point in self.points:
            if previous is not None and point.configuration != previous:
                changes += 1
            previous = point.configuration
        return changes


def _group_events(
    events: Iterable[FeedbackEvent],
) -> Dict[int, List[FeedbackEvent]]:
    grouped: Dict[int, List[FeedbackEvent]] = {}
    for event in events:
        grouped.setdefault(event.position, []).append(event)
    return grouped


def run_online(
    algorithm,
    workload: Sequence[object],
    cost_fn: CostFunction,
    transitions,
    initial_config: AbstractSet[Index] = frozenset(),
    feedback_events: Iterable[FeedbackEvent] = (),
    adopt_period: int = 1,
    lease_feedback: bool = True,
    optimizer=None,
    track_recommended: bool = False,
) -> TuningResult:
    """Run ``algorithm`` over ``workload`` and account total work.

    Parameters
    ----------
    algorithm:
        Must expose ``analyze_statement(stmt)`` and ``recommend()``;
        ``feedback(F+, F−)`` is required only when vote streams or lagged
        adoption with lease feedback are used.
    cost_fn / transitions:
        The what-if cost interface and δ provider used for *accounting*
        (the same objects the algorithm itself uses, so the evaluation is
        under the optimizer's cost model as in §6.1).
    initial_config:
        S0, the configuration in effect before the first adoption.
    feedback_events:
        Explicit vote stream V (position −1 applies before statement 0).
    adopt_period:
        The DBA accepts the current recommendation every this many
        statements (1 = immediate adoption).
    lease_feedback:
        Whether acceptance casts implicit votes (Figure 11 semantics).
    optimizer:
        Optional :class:`~repro.optimizer.whatif.WhatIfOptimizer` whose
        call counters should be captured in the result.
    track_recommended:
        Also account every statement under the algorithm's
        *instantaneous* recommendation (immediate adoption), filling the
        ``recommended_*`` fields of each point — the reference series
        the realized (lagged) one is compared against. Accounting-only:
        it never feeds anything back to the algorithm, so the realized
        series is bit-identical with the flag on or off.
    """
    if adopt_period < 1:
        raise ValueError("adopt_period must be >= 1")
    events = _group_events(feedback_events)
    points: List[TuningPoint] = []
    in_effect = frozenset(initial_config)
    cumulative = 0.0
    recommended_config = frozenset(initial_config)
    recommended_cumulative = 0.0
    calls_before = optimizer.whatif_calls if optimizer is not None else 0
    optimizations_before = optimizer.optimizations if optimizer is not None else 0
    started = _perf_counter()

    for event in events.get(-1, ()):
        algorithm.feedback(event.f_plus, event.f_minus)

    for position, statement in enumerate(workload):
        algorithm.analyze_statement(statement)
        # The recommended series samples the recommendation *here* —
        # after analysis, before any feedback at this position — the
        # same instant the service engine's recommended accounting does,
        # so the two series cross-check exactly. recommend() is
        # read-only: the realized series below is unaffected.
        recommended_query_cost = 0.0
        recommended_transition = 0.0
        if track_recommended:
            recommendation = algorithm.recommend()
            if recommendation != recommended_config:
                recommended_transition = transitions.delta(
                    recommended_config, recommendation
                )
                recommended_config = recommendation
            recommended_query_cost = cost_fn(statement, recommended_config)
            recommended_cumulative += (
                recommended_query_cost + recommended_transition
            )
        for event in events.get(position, ()):
            algorithm.feedback(event.f_plus, event.f_minus)

        transition = 0.0
        if (position + 1) % adopt_period == 0:
            accepted = algorithm.recommend()
            if accepted != in_effect:
                transition = transitions.delta(in_effect, accepted)
            if adopt_period > 1 and lease_feedback:
                dropped = in_effect - accepted
                algorithm.feedback(accepted, dropped)
            in_effect = accepted

        query_cost = cost_fn(statement, in_effect)
        cumulative += query_cost + transition
        points.append(TuningPoint(
            position=position,
            configuration=in_effect,
            query_cost=query_cost,
            transition_cost=transition,
            cumulative_total_work=cumulative,
            recommended_query_cost=recommended_query_cost,
            recommended_transition_cost=recommended_transition,
            cumulative_recommended_work=recommended_cumulative,
        ))

    elapsed = _perf_counter() - started
    result = TuningResult(
        points=points,
        wall_time_seconds=elapsed,
        tracked_recommended=track_recommended,
    )
    if optimizer is not None:
        result.whatif_calls = optimizer.whatif_calls - calls_before
        result.optimizations = optimizer.optimizations - optimizations_before
    return result
