# reprolint: zone=deterministic
"""Offline candidate selection for the fixed-partition experiments (§6.1).

The paper's baseline experiments fix one candidate set and stable partition
for the whole workload so that all algorithms (WFIT, BC, OPT) choose from
the same configuration space. The partition is produced by "an offline
variation of the chooseCands algorithm": benefit and degree-of-interaction
are *averaged over the entire workload* instead of a recent suffix, and the
top indices / partition are chosen from those averages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, List, Sequence, Tuple

from ..db.index import Index
from ..ibg.analysis import degree_of_interaction, max_benefit
from ..ibg.graph import build_ibg
from ..optimizer.extract import extract_indices
from ..optimizer.whatif import WhatIfOptimizer
from .partitioning import choose_partition

__all__ = ["FixedPartitionResult", "compute_fixed_partition"]


@dataclass(frozen=True)
class FixedPartitionResult:
    """The fixed configuration space shared by the §6 competitors."""

    universe: FrozenSet[Index]                  # U: all mined indices
    candidates: FrozenSet[Index]                # C ⊆ U: the monitored subset
    partition: Tuple[FrozenSet[Index], ...]     # stable partition of C
    average_benefit: Dict[Index, float]
    average_doi: Dict[Tuple[Index, Index], float]

    @property
    def max_part_size(self) -> int:
        return max((len(p) for p in self.partition), default=0)

    def singleton_partition(self) -> Tuple[FrozenSet[Index], ...]:
        """The same candidates under full independence (for WFIT-IND/BC)."""
        return tuple(frozenset({ix}) for ix in sorted(self.candidates))


def compute_fixed_partition(
    workload: Sequence[object],
    optimizer: WhatIfOptimizer,
    transitions,
    idx_cnt: int = 40,
    state_cnt: int = 500,
    seed: int = 0,
    max_ibg_nodes: int = 4096,
) -> FixedPartitionResult:
    """Mine U from the workload and choose the fixed C and partition.

    Following §6.1: U is collected from the read-only portion of the
    workload (the advisor-mined candidates), while benefit and interaction
    statistics are averaged over the *entire* workload (updates included, so
    maintenance-heavy indices score lower).
    """
    universe: set = set()
    for statement in workload:
        if not statement.is_update:
            universe.update(extract_indices(statement))
    universe_frozen = frozenset(universe)

    benefit_sums: Dict[Index, float] = {ix: 0.0 for ix in universe_frozen}
    doi_sums: Dict[Tuple[Index, Index], float] = {}
    n_statements = max(len(workload), 1)

    for statement in workload:
        ibg = build_ibg(optimizer, statement, universe_frozen, max_nodes=max_ibg_nodes)
        relevant = sorted(
            (frozenset(extract_indices(statement)) | ibg.all_used_indices())
            & ibg.candidates
        )
        for index in relevant:
            benefit_sums[index] = benefit_sums.get(index, 0.0) + max_benefit(ibg, index)
        for i, a in enumerate(relevant):
            for b in relevant[i + 1:]:
                if a.table != b.table:
                    continue
                doi = degree_of_interaction(ibg, a, b)
                if doi > 0.0:
                    key = (a, b) if a <= b else (b, a)
                    doi_sums[key] = doi_sums.get(key, 0.0) + doi

    average_benefit = {
        index: total / n_statements for index, total in benefit_sums.items()
    }
    average_doi = {key: total / n_statements for key, total in doi_sums.items()}

    ranked = sorted(
        universe_frozen, key=lambda ix: (-average_benefit.get(ix, 0.0), ix)
    )
    candidates = frozenset(ranked[:idx_cnt])

    def doi_lookup(a: Index, b: Index) -> float:
        key = (a, b) if a <= b else (b, a)
        return average_doi.get(key, 0.0)

    partition = choose_partition(
        candidates,
        state_cnt,
        current_partition=[],
        doi=doi_lookup,
        rng=random.Random(seed),
    )
    return FixedPartitionResult(
        universe=universe_frozen,
        candidates=candidates,
        partition=tuple(partition),
        average_benefit=average_benefit,
        average_doi=average_doi,
    )
