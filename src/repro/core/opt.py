# reprolint: zone=deterministic
"""OPT: the offline-optimal recommendation baseline of §6.

OPT knows the entire workload in advance and picks the recommendation
schedule minimizing total work. Within each part of a stable partition the
optimum is a shortest path through the index transition graph — i.e. the
same work-function recurrence WFA maintains — so:

* ``totWork(OPT, Q_n) = Σ_k min_S w^{(k)}_n(S) − (K−1)·Σ_{i≤n} cost(q_i, ∅)``
  (Lemma B.1), computed for *every* prefix ``n`` because the experiment
  curves report the ratio at each query; and
* the optimal schedule itself is recovered by a backward pass over the
  stored per-step work functions. Its create/drop events generate the
  prescient-DBA vote streams V_GOOD / V_BAD of Figures 9 and 10.

A brute-force variant over the full ``2^|C|`` space is provided for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..db.index import Index
from .wfa import CostFunction
from .wfa_plus import validate_partition

__all__ = ["OptimalSchedule", "OfflineOptimizer", "brute_force_opt", "FeedbackEvent"]


@dataclass(frozen=True)
class FeedbackEvent:
    """DBA votes to apply right after analyzing statement ``position``."""

    position: int
    f_plus: FrozenSet[Index]
    f_minus: FrozenSet[Index]

    def __post_init__(self) -> None:
        if self.f_plus & self.f_minus:
            raise ValueError("F+ and F- must be disjoint")

    def inverted(self) -> "FeedbackEvent":
        """The mirror-image event (used to build V_BAD from V_GOOD)."""
        return FeedbackEvent(self.position, self.f_minus, self.f_plus)


@dataclass
class OptimalSchedule:
    """The offline optimum for one workload.

    ``total_work_series`` is the *true-cost* evaluation of the extracted
    optimal schedule: ``Σ cost(q_n, S_n) + δ(S_{n−1}, S_n)`` — monotone and
    directly comparable with online algorithms' totWork.

    ``lower_bound_series`` is the decomposed per-part optimum
    ``Σ_k min_S w^{(k)}_n(S) − (K−1)·Σ cost(q_i, ∅)`` (Lemma B.1). On a
    perfectly stable partition the two coincide; when the stateCnt budget
    forces the partition to ignore strong interactions, the decomposition
    double-counts overlapping benefits and the bound becomes loose (it can
    even decrease). Ratios in the experiments use the schedule evaluation.
    """

    schedule: List[FrozenSet[Index]]        # configuration serving statement n
    total_work_series: List[float]          # true cost of the schedule, per prefix
    lower_bound_series: List[float]         # decomposed optimum per prefix
    initial_config: FrozenSet[Index]
    #: totWork(OPT, Q_n) at requested checkpoints: the *prefix-optimal*
    #: schedule re-derived and re-evaluated for each prefix (the paper's
    #: metric — OPT may schedule very differently for Q_n vs Q_{n+1}).
    prefix_total_work: Dict[int, float] = field(default_factory=dict)

    @property
    def total_work(self) -> float:
        return self.total_work_series[-1] if self.total_work_series else 0.0

    @property
    def lower_bound(self) -> float:
        return self.lower_bound_series[-1] if self.lower_bound_series else 0.0

    def optimum_at(self, n: int) -> float:
        """totWork(OPT, Q_n) — prefix-optimal if computed, else the full-
        schedule evaluation at that point."""
        got = self.prefix_total_work.get(n)
        if got is not None:
            return got
        return self.total_work_series[n - 1]

    def events(self) -> List[FeedbackEvent]:
        """Create/drop events of the schedule as prescient votes (V_GOOD).

        A positive vote is cast for index ``a`` at point ``n`` when OPT
        creates ``a`` after analyzing statement ``n`` (§6.2) — i.e. when the
        configuration serving statement ``n+1`` gains ``a``.
        """
        out: List[FeedbackEvent] = []
        previous = self.initial_config
        for position, config in enumerate(self.schedule):
            created = config - previous
            dropped = previous - config
            if created or dropped:
                # Schedule[position] serves statement `position`; the change
                # happens after the previous statement was analyzed. Position
                # -1 means "before the first statement".
                out.append(FeedbackEvent(
                    position - 1, frozenset(created), frozenset(dropped)
                ))
            previous = config
        return out

    def bad_events(self) -> List[FeedbackEvent]:
        """V_BAD: the mirror image of V_GOOD (§6.2)."""
        return [event.inverted() for event in self.events()]

    def held_anywhere(self) -> FrozenSet[Index]:
        """Indices that appear in the optimal schedule at some point."""
        out: set = set()
        for config in self.schedule:
            out.update(config)
        return frozenset(out)

    def sustained_events(
        self, period: int = 200, good: bool = True
    ) -> List[FeedbackEvent]:
        """Periodically re-affirmed votes toward (or against) OPT's config.

        Event-timed votes (:meth:`events`) are provably near-no-ops against
        an immediately-adopting follower: by the time OPT changes its
        configuration, WFIT either already agrees or has not yet accumulated
        evidence for the bound of (5.1) to bite. This variant models the
        DBA of the paper's narrative instead — one who periodically casts
        votes according to a (pre)conviction: every ``period`` statements,
        positive votes for what the prescient schedule currently holds and
        negative votes for scheduled indices it has dropped (``good=True``),
        or exactly the opposite (``good=False``).
        """
        if period < 1:
            raise ValueError("period must be >= 1")
        universe = self.held_anywhere()
        out: List[FeedbackEvent] = []
        for position in range(period - 1, len(self.schedule), period):
            config = self.schedule[position] & universe
            rest = universe - config
            if good:
                f_plus, f_minus = config, rest
            else:
                f_plus, f_minus = rest, config
            if f_plus or f_minus:
                out.append(FeedbackEvent(position, f_plus, f_minus))
        return out


class _PartState:
    """Work-function DP with full history for one part."""

    def __init__(
        self,
        indices: Sequence[Index],
        initial: AbstractSet[Index],
        transitions,
    ) -> None:
        self.indices: Tuple[Index, ...] = tuple(sorted(indices))
        self._bit_of = {ix: 1 << i for i, ix in enumerate(self.indices)}
        self.size = 1 << len(self.indices)
        self._create = [transitions.create_cost(ix) for ix in self.indices]
        self._drop = [transitions.drop_cost(ix) for ix in self.indices]
        self.initial_mask = self.mask_of(initial)
        first = [self.delta(self.initial_mask, mask) for mask in range(self.size)]
        self.history: List[List[float]] = [first]

    def mask_of(self, subset: AbstractSet[Index]) -> int:
        mask = 0
        for index in subset:
            bit = self._bit_of.get(index)
            if bit is not None:
                mask |= bit
        return mask

    def set_of(self, mask: int) -> FrozenSet[Index]:
        return frozenset(
            ix for i, ix in enumerate(self.indices) if mask & (1 << i)
        )

    def delta(self, old: int, new: int) -> float:
        total = 0.0
        for i in range(len(self.indices)):
            bit = 1 << i
            if new & bit and not old & bit:
                total += self._create[i]
            elif old & bit and not new & bit:
                total += self._drop[i]
        return total

    def step(self, statement_costs: List[float]) -> None:
        """Append ``w_n`` computed from ``w_{n-1}`` and this statement's costs."""
        previous = self.history[-1]
        new_w = [previous[mask] + statement_costs[mask] for mask in range(self.size)]
        for i in range(len(self.indices)):
            bit = 1 << i
            create = self._create[i]
            drop = self._drop[i]
            for mask in range(self.size):
                if mask & bit:
                    continue
                with_bit = mask | bit
                alt_hi = new_w[mask] + create
                if alt_hi < new_w[with_bit]:
                    new_w[with_bit] = alt_hi
                alt_lo = new_w[with_bit] + drop
                if alt_lo < new_w[mask]:
                    new_w[mask] = alt_lo
        self.history.append(new_w)

    def min_work(self, n: int) -> float:
        return min(self.history[n])

    def backtrack(
        self, statement_costs: List[List[float]], upto: Optional[int] = None
    ) -> List[int]:
        """Recover one optimal schedule (masks per statement) for the prefix
        of ``upto`` statements (default: all).

        ``statement_costs[n][mask]`` must be the cost of statement ``n+1``
        under that mask. Ties prefer staying in the target configuration
        (fewest transitions), then the smaller mask.
        """
        n_statements = len(self.history) - 1 if upto is None else upto
        if n_statements == 0:
            return []
        final = self.history[n_statements]
        target = min(range(self.size), key=lambda m: (final[m], m))
        masks: List[int] = [0] * n_statements
        for n in range(n_statements, 0, -1):
            previous = self.history[n - 1]
            costs = statement_costs[n - 1]
            best_mask = None
            best_value = float("inf")
            for mask in range(self.size):
                value = previous[mask] + costs[mask] + self.delta(mask, target)
                if (
                    best_mask is None
                    or value < best_value - 1e-9
                    or (
                        abs(value - best_value) <= 1e-9 * max(1.0, abs(best_value))
                        and (mask == target) > (best_mask == target)
                    )
                ):
                    best_mask = mask
                    best_value = value
            if best_mask is None:
                raise RuntimeError("stage-2 scan found no predecessor mask")
            masks[n - 1] = best_mask
            target = best_mask
        return masks


class OfflineOptimizer:
    """Computes OPT over a fixed stable partition of the candidate set."""

    def __init__(
        self,
        partition: Sequence[AbstractSet[Index]],
        initial_config: AbstractSet[Index],
        cost_fn: CostFunction,
        transitions,
    ) -> None:
        self._parts = validate_partition(partition)
        self._initial = frozenset(initial_config)
        self._cost_fn = cost_fn
        self._transitions = transitions

    def run(
        self,
        statements: Sequence[object],
        checkpoints: Sequence[int] = (),
    ) -> OptimalSchedule:
        """Solve for the optimal schedule and all prefix optima.

        ``checkpoints`` are prefix lengths at which the *prefix-optimal*
        schedule should be re-derived and evaluated under true costs
        (populates :attr:`OptimalSchedule.prefix_total_work`).
        """
        parts = [
            _PartState(sorted(part), self._initial & part, self._transitions)
            for part in self._parts
        ]
        per_part_costs: List[List[List[float]]] = [[] for _ in parts]
        empty_cost_running = 0.0
        series: List[float] = []
        n_parts = len(parts)
        for statement in statements:
            empty_cost_running += self._cost_fn(statement, frozenset())
            for part, cost_log in zip(parts, per_part_costs):
                costs = [
                    self._cost_fn(statement, part.set_of(mask))
                    for mask in range(part.size)
                ]
                cost_log.append(costs)
                part.step(costs)
            n = len(series) + 1
            total = sum(part.min_work(n) for part in parts)
            total -= (n_parts - 1) * empty_cost_running
            series.append(total)

        # Recover the full-workload schedule and evaluate under true costs.
        n_statements = len(series)
        schedule = self._extract_schedule(statements, parts, per_part_costs)
        evaluated: List[float] = []
        running = 0.0
        previous = self._initial
        for statement, config in zip(statements, schedule):
            running += self._transition_cost(previous, config)
            running += self._cost_fn(statement, config)
            evaluated.append(running)
            previous = config

        # Prefix-optimal evaluations at the requested checkpoints.
        prefix_total_work: Dict[int, float] = {}
        for n in sorted(set(checkpoints)):
            if not 1 <= n <= n_statements:
                continue
            if n == n_statements:
                prefix_total_work[n] = evaluated[-1]
                continue
            prefix = statements[:n]
            prefix_schedule = self._extract_schedule(
                prefix, parts, per_part_costs, upto=n
            )
            prefix_total_work[n] = self._evaluate(prefix, prefix_schedule)
        return OptimalSchedule(
            schedule=schedule,
            total_work_series=evaluated,
            lower_bound_series=series,
            initial_config=self._initial,
            prefix_total_work=prefix_total_work,
        )

    def _extract_schedule(
        self,
        statements: Sequence[object],
        parts: List[_PartState],
        per_part_costs: List[List[List[float]]],
        upto: Optional[int] = None,
    ) -> List[FrozenSet[Index]]:
        length = len(statements)
        merged: List[set] = [set() for _ in range(length)]
        for part, cost_log in zip(parts, per_part_costs):
            masks = part.backtrack(cost_log, upto=upto)
            for n, mask in enumerate(masks):
                merged[n].update(part.set_of(mask))
        schedule = [frozenset(s) for s in merged]
        return self._refine_schedule(statements, schedule)

    def _evaluate(
        self, statements: Sequence[object], schedule: List[FrozenSet[Index]]
    ) -> float:
        total = 0.0
        previous = self._initial
        for statement, config in zip(statements, schedule):
            total += self._transition_cost(previous, config)
            total += self._cost_fn(statement, config)
            previous = config
        return total

    def _removal_saving(
        self,
        statements: Sequence[object],
        schedule: List[FrozenSet[Index]],
        index: Index,
    ) -> float:
        """True-cost saving of dropping ``index`` from every scheduled config."""
        saving = 0.0
        previous_has = index in self._initial
        for statement, config in zip(statements, schedule):
            has = index in config
            if has:
                saving += (
                    self._cost_fn(statement, config)
                    - self._cost_fn(statement, config - {index})
                )
            if has and not previous_has:
                saving += self._transitions.create_cost(index)
            elif previous_has and not has:
                saving += self._transitions.drop_cost(index)
            previous_has = has
        if previous_has and index not in self._initial:
            pass  # the schedule never drops it; no trailing transition
        return saving

    def _refine_schedule(
        self,
        statements: Sequence[object],
        schedule: List[FrozenSet[Index]],
    ) -> List[FrozenSet[Index]]:
        """Greedy true-cost de-redundancy pass over the extracted schedule.

        When the stateCnt budget forces interacting indices into different
        parts, each part independently schedules its own (mutually redundant)
        index for the same statements. Under true costs such redundancy only
        adds transition and maintenance cost, so greedily removing any index
        whose global removal saves work tightens the schedule while keeping
        it a concrete, honestly-evaluated comparator.
        """
        if not schedule:
            return schedule
        for _ in range(2 * max(1, len(self._parts)) * 4):
            union = sorted(frozenset().union(*schedule))
            best_index: Optional[Index] = None
            best_saving = 1e-9
            for index in union:
                saving = self._removal_saving(statements, schedule, index)
                if saving > best_saving:
                    best_saving = saving
                    best_index = index
            if best_index is None:
                break
            schedule = [config - {best_index} for config in schedule]
        return schedule

    def _transition_cost(
        self, old: AbstractSet[Index], new: AbstractSet[Index]
    ) -> float:
        total = 0.0
        for index in sorted(new):
            if index not in old:
                total += self._transitions.create_cost(index)
        for index in sorted(old):
            if index not in new:
                total += self._transitions.drop_cost(index)
        return total


def brute_force_opt(
    statements: Sequence[object],
    candidates: AbstractSet[Index],
    initial_config: AbstractSet[Index],
    cost_fn: CostFunction,
    transitions,
) -> OptimalSchedule:
    """Exact OPT over the unpartitioned space ``2^C`` (tests only)."""
    return OfflineOptimizer(
        [frozenset(candidates)] if candidates else [],
        initial_config,
        cost_fn,
        transitions,
    ).run(statements)
