# reprolint: zone=deterministic
"""Stable-partition selection: ``choosePartition`` of Figure 7.

A partition's *loss* is the summed current degree of interaction across
parts — the error bound it introduces in the decomposed cost formula (2.1).
The chooser compares a baseline partition (the current one, restricted to
the new candidate set, plus singletons for new indices) against
``RAND_CNT`` randomized bottom-up merges, and returns the feasible partition
with the least loss.

Feasibility is the paper's ``Σ_m 2^|P_m| ≤ stateCnt`` bound plus a hard
per-part size cap that keeps any single WFA instance tractable.
"""

from __future__ import annotations

import random
from typing import AbstractSet, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..db.index import Index
from .bitset import IndexUniverse

__all__ = ["partition_loss", "pairwise_loss", "choose_partition", "state_count"]

DoiFunction = Callable[[Index, Index], float]

#: No part may exceed this many indices regardless of stateCnt (2^20 states
#: would be intractable for a single WFA instance).
MAX_PART_SIZE = 14


def state_count(parts: Sequence[AbstractSet[Index]]) -> int:
    """``Σ_m 2^|P_m|`` — the configurations WFIT would track."""
    return sum(1 << len(part) for part in parts)


def pairwise_loss(
    part_a: AbstractSet[Index], part_b: AbstractSet[Index], doi: DoiFunction
) -> float:
    """``loss({P_i, P_j})``: interaction mass between two parts."""
    total = 0.0
    for a in sorted(part_a):
        for b in sorted(part_b):
            total += doi(a, b)
    return total


def partition_loss(parts: Sequence[AbstractSet[Index]], doi: DoiFunction) -> float:
    """Total interaction mass ignored by the partition (lower is better)."""
    total = 0.0
    for i in range(len(parts)):
        for j in range(i + 1, len(parts)):
            total += pairwise_loss(parts[i], parts[j], doi)
    return total


def _feasible(parts: Sequence[AbstractSet[Index]], state_cnt: int) -> bool:
    if any(len(part) > MAX_PART_SIZE for part in parts):
        return False
    return state_count(parts) <= state_cnt


def _merge_feasible(
    parts: Sequence[AbstractSet[Index]], i: int, j: int, state_cnt: int
) -> bool:
    merged_size = len(parts[i]) + len(parts[j])
    if merged_size > MAX_PART_SIZE:
        return False
    states = (
        state_count(parts)
        - (1 << len(parts[i]))
        - (1 << len(parts[j]))
        + (1 << merged_size)
    )
    return states <= state_cnt


def _randomized_merge(
    indices: Sequence[Index],
    state_cnt: int,
    doi: DoiFunction,
    rng: random.Random,
) -> List[FrozenSet[Index]]:
    """One randomized bottom-up merge pass (Figure 7, lines 9–18).

    Pair losses are maintained incrementally: merging parts i and j gives
    ``loss(i∪j, k) = loss(i, k) + loss(j, k)``, so only pairs that started
    with positive doi ever need tracking.

    Parts are int-encoded configurations over a local
    :class:`~repro.core.bitset.IndexUniverse`: a merge is one ``|``, a part
    size one popcount, and the feasibility bookkeeping never touches a set.
    """
    universe = IndexUniverse(indices)
    parts: Dict[int, int] = {
        k: 1 << universe.ensure(ix) for k, ix in enumerate(indices)
    }
    next_id = len(indices)
    ordered = list(indices)
    pair_loss: Dict[Tuple[int, int], float] = {}
    for i in range(len(ordered)):
        for j in range(i + 1, len(ordered)):
            value = doi(ordered[i], ordered[j])
            if value > 0.0:
                pair_loss[(i, j)] = value

    def total_states() -> int:
        return sum(1 << mask.bit_count() for mask in parts.values())

    while pair_loss:
        states = total_states()
        mergeable: List[Tuple[int, int, float]] = []
        for (i, j), loss in pair_loss.items():
            size_i = parts[i].bit_count()
            size_j = parts[j].bit_count()
            if size_i + size_j > MAX_PART_SIZE:
                continue
            new_states = states - (1 << size_i) - (1 << size_j) + (
                1 << (size_i + size_j)
            )
            if new_states <= state_cnt:
                mergeable.append((i, j, loss))
        if not mergeable:
            break
        singleton_pairs = [
            (i, j, loss)
            for i, j, loss in mergeable
            if parts[i].bit_count() == 1 and parts[j].bit_count() == 1
        ]
        if singleton_pairs:
            pool = singleton_pairs
            weights = [loss for _, _, loss in pool]
        else:
            pool = mergeable
            # Weight by loss per additional tracked state: favors merging
            # small, strongly interacting parts (Figure 7, line 17).
            weights = [
                loss
                / (
                    (1 << (parts[i].bit_count() + parts[j].bit_count()))
                    - (1 << parts[i].bit_count())
                    - (1 << parts[j].bit_count())
                )
                for i, j, loss in pool
            ]
        i, j, _ = rng.choices(pool, weights=weights)[0]
        merged_id = next_id
        next_id += 1
        parts[merged_id] = parts[i] | parts[j]
        del parts[i], parts[j]
        updated: Dict[Tuple[int, int], float] = {}
        for (x, y), loss in pair_loss.items():
            if x in (i, j) and y in (i, j):
                continue  # absorbed into the merged part
            if x in (i, j):
                key = (min(y, merged_id), max(y, merged_id))
                updated[key] = updated.get(key, 0.0) + loss
            elif y in (i, j):
                key = (min(x, merged_id), max(x, merged_id))
                updated[key] = updated.get(key, 0.0) + loss
            else:
                updated[(x, y)] = updated.get((x, y), 0.0) + loss
        pair_loss = updated
    return [universe.decode(mask) for mask in parts.values()]


def choose_partition(
    candidates: AbstractSet[Index],
    state_cnt: int,
    current_partition: Sequence[AbstractSet[Index]],
    doi: DoiFunction,
    rng: random.Random,
    rand_cnt: int = 100,
) -> List[FrozenSet[Index]]:
    """``choosePartition(D, stateCnt)`` (Figure 7).

    Returns a feasible partition of ``candidates`` minimizing loss across
    the baseline and ``rand_cnt`` randomized merge passes.
    """
    wanted = frozenset(candidates)
    if not wanted:
        return []
    if state_count([{ix} for ix in wanted]) > state_cnt:
        raise ValueError(
            f"stateCnt={state_cnt} cannot accommodate even singleton parts "
            f"for {len(wanted)} candidates"
        )

    # Evaluate doi once per pair; the randomized passes then only do dict
    # lookups (current-doi evaluation scans a history and is not free).
    ordered_all = sorted(wanted)
    matrix: dict = {}
    for i, a in enumerate(ordered_all):
        for b in ordered_all[i + 1:]:
            value = doi(a, b)
            if value > 0.0:
                matrix[(a, b)] = value

    def cached_doi(a: Index, b: Index) -> float:
        key = (a, b) if a <= b else (b, a)
        return matrix.get(key, 0.0)

    doi = cached_doi

    best: Optional[List[FrozenSet[Index]]] = None
    best_loss = float("inf")

    # Baseline: the current partition restricted to the new candidates, with
    # singleton parts for indices not previously monitored (lines 2–7).
    baseline: List[FrozenSet[Index]] = []
    covered: set = set()
    for part in current_partition:
        kept = frozenset(part) & wanted
        if kept:
            baseline.append(kept)
            covered.update(kept)
    for index in sorted(wanted - covered):
        baseline.append(frozenset({index}))
    if _feasible(baseline, state_cnt):
        best = baseline
        best_loss = partition_loss(baseline, doi)

    ordered = sorted(wanted)
    for _ in range(rand_cnt):
        parts = _randomized_merge(ordered, state_cnt, doi, rng)
        loss = partition_loss(parts, doi)
        if loss < best_loss or best is None:
            best = parts
            best_loss = loss
        if best_loss == 0.0:
            break
    if best is None:
        raise RuntimeError("partition search produced no candidate")
    return sorted(best, key=lambda p: sorted(p))
