# reprolint: zone=deterministic
"""The Work Function Algorithm for index tuning (§4.1, Figure 3).

One :class:`WFA` instance tracks a small set of candidate indices (one part
of the stable partition) and maintains the work function value ``w[S]`` for
every configuration ``S`` of that part:

    w_n(S) = min_X { w_{n-1}(X) + cost(q_n, X) + δ(X, S) }

Configurations are bitmasks over the part's (deterministically sorted)
indices. The recurrence is evaluated in ``O(2^k · k)`` per statement by
per-dimension relaxation, exploiting that δ decomposes into independent
per-index create/drop costs. Transition costs come from a precomputed
:class:`~repro.core.bitset.MaskDeltaTable` (two array reads per δ), and
when the cost provider speaks masks (the
:class:`~repro.optimizer.whatif.WhatIfOptimizer` contract) statement costs
are fetched through the bitset kernel without constructing a single
frozenset; a pure-``frozenset`` twin is retained in
:mod:`repro.core.wfa_reference` as the equivalence oracle.

The numerical state itself — the ``w`` vector, the per-statement cost
vector, and the relaxation/scan/feedback loops over them — lives in an
array-backed work-function kernel (:mod:`repro.core.wfa_kernel`):
vectorized numpy when available, an ``array``-module pure-Python twin
otherwise, both bit-identical to the original scalar loops. This class
keeps the index↔mask mapping, the cost-provider plumbing, and the
checkpoint hooks.

The recommendation rule follows Figure 3: the next recommendation minimizes
``score(S) = w[S] + δ(S, currRec)`` subject to the ``S ∈ p[S]`` condition
(equivalently ``w_n(S) = w_{n-1}(S) + cost(q_n, S)``), with the
lexicographic tie-break of Appendix B. Note the δ arguments are *reversed*
relative to the symmetric original of Borodin & El-Yaniv — the form required
by the paper's competitive proof for asymmetric δ (footnote 4).

Feedback handling (Figure 4) lives here too so that both WFA⁺ and WFIT can
delegate to their parts.
"""

from __future__ import annotations

import time
from typing import AbstractSet, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .. import obs
from ..db.index import Index
from .bitset import MaskDeltaTable, delta_cost
from .wfa_kernel import make_kernel

__all__ = ["WFA", "CostFunction", "TransitionCosts"]

# Backend- and size-tagged kernel telemetry: one duration histogram per
# (backend, tracked-state count) series, cached per instance so the hot
# path pays one attribute load and one observe. The joint labels feed the
# ROADMAP's crossover re-tuning item directly — each series' `count` is
# the relax count at that batch shape, its distribution the wall time, so
# the numpy/python crossover is readable straight off a snapshot.

# cost(q, X) -> float where X is a set of indices.
CostFunction = Callable[[object, FrozenSet[Index]], float]


class TransitionCosts:
    """Protocol-ish base for δ providers: per-index create/drop costs.

    Any object with ``create_cost(index)`` and ``drop_cost(index)`` works
    (e.g. :class:`repro.db.StatsTransitionCosts`); this class also offers a
    simple dict-backed implementation for tests and synthetic instances.
    """

    def __init__(
        self,
        create: Optional[Dict[Index, float]] = None,
        drop: Optional[Dict[Index, float]] = None,
        default_create: float = 1.0,
        default_drop: float = 0.0,
    ) -> None:
        self._create = dict(create or {})
        self._drop = dict(drop or {})
        self._default_create = default_create
        self._default_drop = default_drop

    def create_cost(self, index: Index) -> float:
        return self._create.get(index, self._default_create)

    def drop_cost(self, index: Index) -> float:
        return self._drop.get(index, self._default_drop)

    def delta(self, old: AbstractSet[Index], new: AbstractSet[Index]) -> float:
        return delta_cost(self, old, new)


class WFA:
    """Work Function Algorithm over one part of the candidate set."""

    def __init__(
        self,
        indices: Sequence[Index],
        initial_config: AbstractSet[Index],
        cost_fn: CostFunction,
        transitions,
        work_values: Optional[Dict[FrozenSet[Index], float]] = None,
        recommendation: Optional[AbstractSet[Index]] = None,
    ) -> None:
        """Create an instance tracking ``indices``.

        Parameters
        ----------
        indices:
            The part's candidate indices (order is normalized internally).
        initial_config:
            ``S0 ∩ Ck`` — which of the part's indices start materialized.
        cost_fn:
            The what-if interface ``cost(q, X)``.
        transitions:
            δ provider with ``create_cost`` / ``drop_cost``.
        work_values / recommendation:
            Optional warm-start state (used by WFIT's ``repartition``); when
            given, they replace the default ``w0(S) = δ(S0, S)``. The
            snapshot must assign a value to *every* configuration of the
            part, exactly once — an incomplete or ambiguous snapshot raises
            :class:`ValueError` (a silently defaulted ``w[S] = 0`` would
            declare S reachable for free and corrupt every recommendation
            after a repartition).
        """
        self._indices: Tuple[Index, ...] = tuple(sorted(set(indices)))
        if len(self._indices) > 20:
            raise ValueError(
                f"part of {len(self._indices)} indices would need "
                f"{1 << len(self._indices)} states; repartition first"
            )
        self._bit_of: Dict[Index, int] = {
            ix: 1 << i for i, ix in enumerate(self._indices)
        }
        self._cost_fn = cost_fn
        self._transitions = transitions
        self._create = [transitions.create_cost(ix) for ix in self._indices]
        self._drop = [transitions.drop_cost(ix) for ix in self._indices]
        self._size = 1 << len(self._indices)
        # Bitset kernel state: precomputed δ prefix sums (shared with the
        # work-function kernel as contiguous arrays) and (when the cost
        # provider speaks masks) each local mask re-encoded in the
        # provider's global IndexUniverse. The per-mask subset table is
        # only materialized when the slow path first needs it — there every
        # statement decodes all 2^k configurations anyway.
        self._delta_table = MaskDeltaTable(self._create, self._drop)
        self._kernel = make_kernel(self._delta_table)
        self._mask_provider = self._detect_mask_provider(cost_fn)
        self._subsets: Optional[List[FrozenSet[Index]]] = None
        if self._mask_provider is not None:
            universe = self._mask_provider.mask_universe
            bit_masks = [1 << universe.ensure(ix) for ix in self._indices]
            global_masks = [0] * self._size
            for mask in range(1, self._size):
                low = mask & -mask
                global_masks[mask] = (
                    global_masks[mask ^ low] | bit_masks[low.bit_length() - 1]
                )
            # The kernel-preferred container (an int64 vector for numpy
            # when the universe fits a machine word) — computed once: bit
            # positions never move for the life of the universe.
            self._global_masks = self._kernel.mask_array(global_masks)
        else:
            self._global_masks = None

        initial_mask = self._mask_of(initial_config)
        if work_values is not None:
            self._kernel.load_w(self._decode_work_values(work_values))
        else:
            self._kernel.reset_from_delta(initial_mask)
        if recommendation is not None:
            self._rec = self._mask_of(recommendation)
        else:
            self._rec = initial_mask
        self._statements_analyzed = 0
        # Monotone dirty counter over the mutable work-function state: bumped
        # by every relax/feedback, restored verbatim from checkpoints. Delta
        # checkpoints (snapshot v3) compare it against the base snapshot to
        # decide whether this part's w vector must be re-serialized.
        self._w_version = 0
        # Lazily-bound relax-duration histogram (obs layer); None until the
        # first instrumented relax so disabled runs never touch the registry.
        self._relax_hist = None

    # -- mask helpers --------------------------------------------------------

    @staticmethod
    def _detect_mask_provider(cost_fn):
        """The optimizer behind ``cost_fn`` when it speaks masks, else None.

        Duck-typed: an owner exposing ``statement_costs`` and
        ``mask_universe`` — the
        :class:`~repro.optimizer.whatif.WhatIfOptimizer` contract — lets the
        work-function update skip frozenset construction entirely. The fast
        path engages only when ``cost_fn`` *is* the published ``cost``
        entry point of the class that defines ``statement_costs``: a
        subclass that overrides ``cost`` (noise injection, instrumentation)
        or any wrapper callable must be honored verbatim, so those fall
        back to the plain per-configuration path.
        """
        owner = getattr(cost_fn, "__self__", None)
        if owner is None:
            # A non-method callable that itself publishes the mask contract
            # (an explicit adapter) vouches for its own consistency.
            if hasattr(cost_fn, "statement_costs") and hasattr(
                cost_fn, "mask_universe"
            ):
                return cost_fn
            return None
        if not (
            hasattr(owner, "statement_costs") and hasattr(owner, "mask_universe")
        ):
            return None
        func = getattr(cost_fn, "__func__", None)
        for klass in type(owner).__mro__:
            if "statement_costs" in vars(klass):
                return owner if vars(klass).get("cost") is func else None
        return None

    def _mask_of(self, subset: AbstractSet[Index]) -> int:
        mask = 0
        for index in subset:
            bit = self._bit_of.get(index)
            if bit is not None:
                mask |= bit
        return mask

    def _set_of(self, mask: int) -> FrozenSet[Index]:
        subsets = self._subsets
        if subsets is not None:
            return subsets[mask]
        return frozenset(
            ix for i, ix in enumerate(self._indices) if mask & (1 << i)
        )

    def _delta_masks(self, old: int, new: int) -> float:
        return self._delta_table.delta(old, new)

    def _decode_work_values(
        self, work_values: Dict[FrozenSet[Index], float]
    ) -> List[float]:
        """Map a ``{configuration: w}`` snapshot onto the local mask order.

        Every one of the part's ``2^k`` configurations must be assigned
        exactly once. Keys are projected onto the part (foreign indices are
        ignored, as ever), so a snapshot whose keys alias after projection
        is rejected as ambiguous rather than silently overlaid.
        """
        values: List[Optional[float]] = [None] * self._size
        for subset, value in work_values.items():
            mask = self._mask_of(subset)
            if values[mask] is not None:
                raise ValueError(
                    "ambiguous work-function snapshot: two entries project "
                    f"onto configuration {sorted(ix.name for ix in self._set_of(mask))!r}"
                )
            values[mask] = float(value)
        missing = sum(1 for v in values if v is None)
        if missing:
            raise ValueError(
                f"incomplete work-function snapshot: {missing} of "
                f"{self._size} configurations have no value (a defaulted "
                "w[S] = 0 would mark S reachable for free)"
            )
        return values  # type: ignore[return-value]

    @staticmethod
    def _lex_prefers(mask_a: int, mask_b: int) -> bool:
        """Appendix-B tie-break: prefer the set containing the lowest-order
        index where the two differ."""
        diff = mask_a ^ mask_b
        if diff == 0:
            return False
        lowest = diff & (-diff)
        return bool(mask_a & lowest)

    # -- public properties -----------------------------------------------------

    @property
    def indices(self) -> Tuple[Index, ...]:
        return self._indices

    @property
    def state_count(self) -> int:
        return self._size

    @property
    def statements_analyzed(self) -> int:
        return self._statements_analyzed

    @property
    def w_version(self) -> int:
        """Mutation counter of the work-function state (see ``__init__``)."""
        return self._w_version

    @property
    def kernel_backend(self) -> str:
        """Which work-function kernel runs this part (``numpy``/``python``)."""
        return self._kernel.backend

    def recommend(self) -> FrozenSet[Index]:
        """``WFA.recommend()`` of Figure 3."""
        return self._set_of(self._rec)

    def work_function(self) -> Dict[FrozenSet[Index], float]:
        """Snapshot of ``w[S]`` for every configuration (for repartitioning)."""
        values = self._kernel.export_w()
        return {self._set_of(mask): values[mask] for mask in range(self._size)}

    # -- checkpoint hooks ----------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """JSON-ready mutable state (checkpoint hook).

        Work-function values are exported by *local mask*; the mask
        positions are defined by the part's sorted index order, which is
        deterministic, so a peer constructed over the same index set
        decodes them identically. The part's indices themselves are
        serialized by the owner (WFIT), not here. The document layout is
        kernel-independent: a checkpoint taken on the numpy backend
        restores onto the pure-Python one (and vice versa) unchanged.
        """
        return {
            "w": self._kernel.export_w(),
            "recommendation_mask": self._rec,
            "statements_analyzed": self._statements_analyzed,
            "w_version": self._w_version,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Adopt state exported by :meth:`export_state` from a peer with the
        same index set."""
        w = [float(v) for v in state["w"]]
        if len(w) != self._size:
            raise ValueError(
                f"work-function snapshot has {len(w)} values; this part "
                f"tracks {self._size} configurations"
            )
        rec = int(state["recommendation_mask"])
        if not 0 <= rec < self._size:
            raise ValueError(f"recommendation mask {rec} outside the part")
        self._kernel.load_w(w)
        self._rec = rec
        self._statements_analyzed = int(state["statements_analyzed"])
        # Absent in pre-v3 documents: default 0 keeps old checkpoints
        # loading (their first delta checkpoint then re-serializes fully).
        self._w_version = int(state.get("w_version", 0))

    def work_value(self, subset: AbstractSet[Index]) -> float:
        return self._kernel.work_value(self._mask_of(subset))

    def min_work(self) -> float:
        """``min_S w_n(S)`` — the optimal total work within this part."""
        return self._kernel.min_work()

    # -- the algorithm -----------------------------------------------------------

    def _fill_costs(self, statement: object) -> None:
        """Fetch ``cost(q, S)`` for all 2^k configurations into the kernel's
        cost vector (no intermediate list on the mask-provider path)."""
        out = self._kernel.costs
        if self._global_masks is not None:
            self._mask_provider.statement_costs(statement).costs_into(
                self._global_masks, out
            )
            return
        subsets = self._subsets
        if subsets is None:
            indices = self._indices
            subsets = self._subsets = [
                frozenset(
                    ix for i, ix in enumerate(indices) if mask & (1 << i)
                )
                for mask in range(self._size)
            ]
        cost_fn = self._cost_fn
        for mask, subset in enumerate(subsets):
            out[mask] = cost_fn(statement, subset)

    def prepare_statement(self, statement: object) -> None:
        """Phase 1 of :meth:`analyze_statement`: fetch the statement's costs.

        This is the half of the update that touches *shared* state — the
        what-if optimizer's memo, template, and IBG caches (and their
        accounting counters) — so WFIT runs it serially, on the ingest
        thread, for every part in fixed part order. After it returns, the
        part's cost vector is fully populated and :meth:`relax` needs
        nothing outside this instance.
        """
        self._fill_costs(statement)

    def relax(self) -> FrozenSet[Index]:
        """Phase 2 of :meth:`analyze_statement`: run the kernel update.

        Stage 1 (the per-dimension min-plus relaxation) and stage 2 (the
        fused minimum-score scan under the p[S] membership condition, with
        the Appendix-B tie-break) both run inside the array kernel.

        Thread-safety contract: this method reads and writes only state
        owned by this instance — the kernel's ``w``/cost/scratch buffers
        (allocated per instance, never shared; see
        :mod:`repro.core.wfa_kernel`), ``_rec``, and
        ``_statements_analyzed`` — so relaxations of *different* parts may
        run concurrently on a worker pool. The per-part updates are
        independent by the paper's §4 stability condition, so the result
        is bit-identical to running them serially in part order.
        """
        self._statements_analyzed += 1
        self._w_version += 1
        if obs.state.enabled:
            hist = self._relax_hist
            if hist is None:
                hist = self._relax_hist = obs.default_registry().histogram(
                    "repro_wfa_relax_seconds",
                    help="Wall time of one per-part kernel relaxation, by "
                         "backend and tracked-state count.",
                    labels={
                        "backend": self.kernel_backend,
                        "states": str(self._size),
                    },
                )
            started = time.perf_counter()
            self._rec = self._kernel.analyze(self._rec)
            hist.observe(time.perf_counter() - started)
        else:
            self._rec = self._kernel.analyze(self._rec)
        return self.recommend()

    def analyze_statement(self, statement: object) -> FrozenSet[Index]:
        """``WFA.analyzeQuery`` of Figure 3; returns the new recommendation.

        Exactly :meth:`prepare_statement` followed by :meth:`relax` — the
        split exists so WFIT can serialize the shared-cache phase while
        fanning the pure per-part kernel phase out to a worker pool.
        """
        self.prepare_statement(statement)
        return self.relax()

    def scores(self) -> Dict[FrozenSet[Index], float]:
        """Current ``score(S) = w[S] + δ(S, currRec)`` for every S (debug/tests)."""
        values = self._kernel.export_w()
        return {
            self._set_of(mask): values[mask] + self._delta_masks(mask, self._rec)
            for mask in range(self._size)
        }

    # -- feedback (Figure 4, per-part body) -----------------------------------------

    def apply_feedback(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Apply DBA votes to this part; returns the adjusted recommendation.

        Implements the body of ``WFIT.feedback`` (Figure 4): switch the
        recommendation to the consistent configuration, then raise work
        function values so every configuration respects the score bound
        (5.1) relative to the new recommendation.
        """
        plus_mask = self._mask_of(f_plus)
        minus_mask = self._mask_of(f_minus)
        if plus_mask & minus_mask:
            raise ValueError("F+ and F- must be disjoint")
        self._rec = self._kernel.feedback(plus_mask, minus_mask, self._rec)
        self._w_version += 1
        return self.recommend()
