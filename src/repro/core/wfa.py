"""The Work Function Algorithm for index tuning (§4.1, Figure 3).

One :class:`WFA` instance tracks a small set of candidate indices (one part
of the stable partition) and maintains the work function value ``w[S]`` for
every configuration ``S`` of that part:

    w_n(S) = min_X { w_{n-1}(X) + cost(q_n, X) + δ(X, S) }

Configurations are bitmasks over the part's (deterministically sorted)
indices. The recurrence is evaluated in ``O(2^k · k)`` per statement by
per-dimension relaxation, exploiting that δ decomposes into independent
per-index create/drop costs.

The recommendation rule follows Figure 3: the next recommendation minimizes
``score(S) = w[S] + δ(S, currRec)`` subject to the ``S ∈ p[S]`` condition
(equivalently ``w_n(S) = w_{n-1}(S) + cost(q_n, S)``), with the
lexicographic tie-break of Appendix B. Note the δ arguments are *reversed*
relative to the symmetric original of Borodin & El-Yaniv — the form required
by the paper's competitive proof for asymmetric δ (footnote 4).

Feedback handling (Figure 4) lives here too so that both WFA⁺ and WFIT can
delegate to their parts.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..db.index import Index

__all__ = ["WFA", "CostFunction", "TransitionCosts"]

# cost(q, X) -> float where X is a set of indices.
CostFunction = Callable[[object, FrozenSet[Index]], float]


class TransitionCosts:
    """Protocol-ish base for δ providers: per-index create/drop costs.

    Any object with ``create_cost(index)`` and ``drop_cost(index)`` works
    (e.g. :class:`repro.db.StatsTransitionCosts`); this class also offers a
    simple dict-backed implementation for tests and synthetic instances.
    """

    def __init__(
        self,
        create: Optional[Dict[Index, float]] = None,
        drop: Optional[Dict[Index, float]] = None,
        default_create: float = 1.0,
        default_drop: float = 0.0,
    ) -> None:
        self._create = dict(create or {})
        self._drop = dict(drop or {})
        self._default_create = default_create
        self._default_drop = default_drop

    def create_cost(self, index: Index) -> float:
        return self._create.get(index, self._default_create)

    def drop_cost(self, index: Index) -> float:
        return self._drop.get(index, self._default_drop)

    def delta(self, old: AbstractSet[Index], new: AbstractSet[Index]) -> float:
        total = 0.0
        for index in new:
            if index not in old:
                total += self.create_cost(index)
        for index in old:
            if index not in new:
                total += self.drop_cost(index)
        return total


#: Absolute tolerance for float comparisons of work-function values.
_EPS = 1e-7


class WFA:
    """Work Function Algorithm over one part of the candidate set."""

    def __init__(
        self,
        indices: Sequence[Index],
        initial_config: AbstractSet[Index],
        cost_fn: CostFunction,
        transitions,
        work_values: Optional[Dict[FrozenSet[Index], float]] = None,
        recommendation: Optional[AbstractSet[Index]] = None,
    ) -> None:
        """Create an instance tracking ``indices``.

        Parameters
        ----------
        indices:
            The part's candidate indices (order is normalized internally).
        initial_config:
            ``S0 ∩ Ck`` — which of the part's indices start materialized.
        cost_fn:
            The what-if interface ``cost(q, X)``.
        transitions:
            δ provider with ``create_cost`` / ``drop_cost``.
        work_values / recommendation:
            Optional warm-start state (used by WFIT's ``repartition``); when
            given, they replace the default ``w0(S) = δ(S0, S)``.
        """
        self._indices: Tuple[Index, ...] = tuple(sorted(set(indices)))
        if len(self._indices) > 20:
            raise ValueError(
                f"part of {len(self._indices)} indices would need "
                f"{1 << len(self._indices)} states; repartition first"
            )
        self._bit_of: Dict[Index, int] = {
            ix: 1 << i for i, ix in enumerate(self._indices)
        }
        self._cost_fn = cost_fn
        self._transitions = transitions
        self._create = [transitions.create_cost(ix) for ix in self._indices]
        self._drop = [transitions.drop_cost(ix) for ix in self._indices]
        self._size = 1 << len(self._indices)

        initial_mask = self._mask_of(initial_config)
        if work_values is not None:
            self._w = [0.0] * self._size
            for subset, value in work_values.items():
                self._w[self._mask_of(subset)] = value
        else:
            self._w = [
                self._delta_masks(initial_mask, mask) for mask in range(self._size)
            ]
        if recommendation is not None:
            self._rec = self._mask_of(recommendation)
        else:
            self._rec = initial_mask
        self._statements_analyzed = 0

    # -- mask helpers --------------------------------------------------------

    def _mask_of(self, subset: AbstractSet[Index]) -> int:
        mask = 0
        for index in subset:
            bit = self._bit_of.get(index)
            if bit is not None:
                mask |= bit
        return mask

    def _set_of(self, mask: int) -> FrozenSet[Index]:
        return frozenset(
            ix for i, ix in enumerate(self._indices) if mask & (1 << i)
        )

    def _delta_masks(self, old: int, new: int) -> float:
        total = 0.0
        added = new & ~old
        dropped = old & ~new
        for i in range(len(self._indices)):
            bit = 1 << i
            if added & bit:
                total += self._create[i]
            elif dropped & bit:
                total += self._drop[i]
        return total

    @staticmethod
    def _lex_prefers(mask_a: int, mask_b: int) -> bool:
        """Appendix-B tie-break: prefer the set containing the lowest-order
        index where the two differ."""
        diff = mask_a ^ mask_b
        if diff == 0:
            return False
        lowest = diff & (-diff)
        return bool(mask_a & lowest)

    # -- public properties -----------------------------------------------------

    @property
    def indices(self) -> Tuple[Index, ...]:
        return self._indices

    @property
    def state_count(self) -> int:
        return self._size

    @property
    def statements_analyzed(self) -> int:
        return self._statements_analyzed

    def recommend(self) -> FrozenSet[Index]:
        """``WFA.recommend()`` of Figure 3."""
        return self._set_of(self._rec)

    def work_function(self) -> Dict[FrozenSet[Index], float]:
        """Snapshot of ``w[S]`` for every configuration (for repartitioning)."""
        return {self._set_of(mask): self._w[mask] for mask in range(self._size)}

    def work_value(self, subset: AbstractSet[Index]) -> float:
        return self._w[self._mask_of(subset)]

    def min_work(self) -> float:
        """``min_S w_n(S)`` — the optimal total work within this part."""
        return min(self._w)

    # -- the algorithm -----------------------------------------------------------

    def _statement_costs(self, statement: object) -> List[float]:
        return [
            self._cost_fn(statement, self._set_of(mask))
            for mask in range(self._size)
        ]

    def analyze_statement(self, statement: object) -> FrozenSet[Index]:
        """``WFA.analyzeQuery`` of Figure 3; returns the new recommendation."""
        size = self._size
        costs = self._statement_costs(statement)
        w = self._w

        # Stage 1: w'[S] = min_X (w[X] + cost(q, X) + δ(X, S)), via
        # per-dimension min-plus relaxation over the separable δ.
        new_w = [w[mask] + costs[mask] for mask in range(size)]
        for i in range(len(self._indices)):
            bit = 1 << i
            create = self._create[i]
            drop = self._drop[i]
            for mask in range(size):
                if mask & bit:
                    continue
                with_bit = mask | bit
                lo, hi = new_w[mask], new_w[with_bit]
                alt_hi = lo + create
                if alt_hi < hi:
                    new_w[with_bit] = alt_hi
                alt_lo = hi + drop
                if alt_lo < lo:
                    new_w[mask] = alt_lo

        # The p[S] membership test S ∈ p[S] is equivalent to the work
        # function having no final transition: w'[S] = w[S] + cost(q, S).
        tolerance = [
            _EPS * max(1.0, abs(new_w[mask])) for mask in range(size)
        ]
        self_path = [
            abs(new_w[mask] - (w[mask] + costs[mask])) <= tolerance[mask]
            for mask in range(size)
        ]
        self._w = new_w
        self._statements_analyzed += 1

        # Stage 2: pick the next recommendation by minimum score with the
        # self-path condition; Appendix-B lexicographic tie-break.
        best_mask: Optional[int] = None
        best_score = float("inf")
        for mask in range(size):
            if not self_path[mask]:
                continue
            score = new_w[mask] + self._delta_masks(mask, self._rec)
            if best_mask is None:
                best_mask, best_score = mask, score
                continue
            margin = _EPS * max(1.0, abs(score), abs(best_score))
            if score < best_score - margin:
                best_mask, best_score = mask, score
            elif abs(score - best_score) <= margin and self._lex_prefers(mask, best_mask):
                best_mask, best_score = mask, score
        if best_mask is None:
            # Numerically impossible per Lemma 9.2 of [3], but stay robust:
            # fall back to the plain minimum-score state.
            best_mask = min(
                range(size),
                key=lambda m: (new_w[m] + self._delta_masks(m, self._rec), m),
            )
        self._rec = best_mask
        return self.recommend()

    def scores(self) -> Dict[FrozenSet[Index], float]:
        """Current ``score(S) = w[S] + δ(S, currRec)`` for every S (debug/tests)."""
        return {
            self._set_of(mask): self._w[mask] + self._delta_masks(mask, self._rec)
            for mask in range(self._size)
        }

    # -- feedback (Figure 4, per-part body) -----------------------------------------

    def apply_feedback(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Apply DBA votes to this part; returns the adjusted recommendation.

        Implements the body of ``WFIT.feedback`` (Figure 4): switch the
        recommendation to the consistent configuration, then raise work
        function values so every configuration respects the score bound
        (5.1) relative to the new recommendation.
        """
        plus_mask = self._mask_of(f_plus)
        minus_mask = self._mask_of(f_minus)
        if plus_mask & minus_mask:
            raise ValueError("F+ and F- must be disjoint")
        new_rec = (self._rec & ~minus_mask) | plus_mask
        self._rec = new_rec
        w = self._w
        rec_value = w[new_rec]
        for mask in range(self._size):
            consistent = (mask & ~minus_mask) | plus_mask
            min_diff = (
                self._delta_masks(mask, consistent)
                + self._delta_masks(consistent, mask)
            )
            diff = w[mask] + self._delta_masks(mask, new_rec) - rec_value
            if diff < min_diff:
                w[mask] += min_diff - diff
        return self.recommend()
