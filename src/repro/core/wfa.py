"""The Work Function Algorithm for index tuning (§4.1, Figure 3).

One :class:`WFA` instance tracks a small set of candidate indices (one part
of the stable partition) and maintains the work function value ``w[S]`` for
every configuration ``S`` of that part:

    w_n(S) = min_X { w_{n-1}(X) + cost(q_n, X) + δ(X, S) }

Configurations are bitmasks over the part's (deterministically sorted)
indices. The recurrence is evaluated in ``O(2^k · k)`` per statement by
per-dimension relaxation, exploiting that δ decomposes into independent
per-index create/drop costs. Transition costs come from a precomputed
:class:`~repro.core.bitset.MaskDeltaTable` (two array reads per δ), and
when the cost provider speaks masks (the
:class:`~repro.optimizer.whatif.WhatIfOptimizer` contract) statement costs
are fetched through the bitset kernel without constructing a single
frozenset; a pure-``frozenset`` twin is retained in
:mod:`repro.core.wfa_reference` as the equivalence oracle.

The recommendation rule follows Figure 3: the next recommendation minimizes
``score(S) = w[S] + δ(S, currRec)`` subject to the ``S ∈ p[S]`` condition
(equivalently ``w_n(S) = w_{n-1}(S) + cost(q_n, S)``), with the
lexicographic tie-break of Appendix B. Note the δ arguments are *reversed*
relative to the symmetric original of Borodin & El-Yaniv — the form required
by the paper's competitive proof for asymmetric δ (footnote 4).

Feedback handling (Figure 4) lives here too so that both WFA⁺ and WFIT can
delegate to their parts.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..db.index import Index
from .bitset import MaskDeltaTable, delta_cost

__all__ = ["WFA", "CostFunction", "TransitionCosts"]

# cost(q, X) -> float where X is a set of indices.
CostFunction = Callable[[object, FrozenSet[Index]], float]


class TransitionCosts:
    """Protocol-ish base for δ providers: per-index create/drop costs.

    Any object with ``create_cost(index)`` and ``drop_cost(index)`` works
    (e.g. :class:`repro.db.StatsTransitionCosts`); this class also offers a
    simple dict-backed implementation for tests and synthetic instances.
    """

    def __init__(
        self,
        create: Optional[Dict[Index, float]] = None,
        drop: Optional[Dict[Index, float]] = None,
        default_create: float = 1.0,
        default_drop: float = 0.0,
    ) -> None:
        self._create = dict(create or {})
        self._drop = dict(drop or {})
        self._default_create = default_create
        self._default_drop = default_drop

    def create_cost(self, index: Index) -> float:
        return self._create.get(index, self._default_create)

    def drop_cost(self, index: Index) -> float:
        return self._drop.get(index, self._default_drop)

    def delta(self, old: AbstractSet[Index], new: AbstractSet[Index]) -> float:
        return delta_cost(self, old, new)


#: Absolute tolerance for float comparisons of work-function values.
_EPS = 1e-7


class WFA:
    """Work Function Algorithm over one part of the candidate set."""

    def __init__(
        self,
        indices: Sequence[Index],
        initial_config: AbstractSet[Index],
        cost_fn: CostFunction,
        transitions,
        work_values: Optional[Dict[FrozenSet[Index], float]] = None,
        recommendation: Optional[AbstractSet[Index]] = None,
    ) -> None:
        """Create an instance tracking ``indices``.

        Parameters
        ----------
        indices:
            The part's candidate indices (order is normalized internally).
        initial_config:
            ``S0 ∩ Ck`` — which of the part's indices start materialized.
        cost_fn:
            The what-if interface ``cost(q, X)``.
        transitions:
            δ provider with ``create_cost`` / ``drop_cost``.
        work_values / recommendation:
            Optional warm-start state (used by WFIT's ``repartition``); when
            given, they replace the default ``w0(S) = δ(S0, S)``.
        """
        self._indices: Tuple[Index, ...] = tuple(sorted(set(indices)))
        if len(self._indices) > 20:
            raise ValueError(
                f"part of {len(self._indices)} indices would need "
                f"{1 << len(self._indices)} states; repartition first"
            )
        self._bit_of: Dict[Index, int] = {
            ix: 1 << i for i, ix in enumerate(self._indices)
        }
        self._cost_fn = cost_fn
        self._transitions = transitions
        self._create = [transitions.create_cost(ix) for ix in self._indices]
        self._drop = [transitions.drop_cost(ix) for ix in self._indices]
        self._size = 1 << len(self._indices)
        # Bitset kernel state: precomputed δ prefix sums and (when the cost
        # provider speaks masks) each local mask re-encoded in the
        # provider's global IndexUniverse. The per-mask subset table is
        # only materialized when the slow path first needs it — there every
        # statement decodes all 2^k configurations anyway.
        self._delta_table = MaskDeltaTable(self._create, self._drop)
        self._mask_provider = self._detect_mask_provider(cost_fn)
        self._subsets: Optional[List[FrozenSet[Index]]] = None
        if self._mask_provider is not None:
            universe = self._mask_provider.mask_universe
            bit_masks = [1 << universe.ensure(ix) for ix in self._indices]
            global_masks = [0] * self._size
            for mask in range(1, self._size):
                low = mask & -mask
                global_masks[mask] = (
                    global_masks[mask ^ low] | bit_masks[low.bit_length() - 1]
                )
            self._global_masks: Optional[List[int]] = global_masks
        else:
            self._global_masks = None

        initial_mask = self._mask_of(initial_config)
        if work_values is not None:
            self._w = [0.0] * self._size
            for subset, value in work_values.items():
                self._w[self._mask_of(subset)] = value
        else:
            delta = self._delta_table.delta
            self._w = [delta(initial_mask, mask) for mask in range(self._size)]
        if recommendation is not None:
            self._rec = self._mask_of(recommendation)
        else:
            self._rec = initial_mask
        self._statements_analyzed = 0

    # -- mask helpers --------------------------------------------------------

    @staticmethod
    def _detect_mask_provider(cost_fn):
        """The optimizer behind ``cost_fn`` when it speaks masks, else None.

        Duck-typed: an owner exposing ``statement_costs`` and
        ``mask_universe`` — the
        :class:`~repro.optimizer.whatif.WhatIfOptimizer` contract — lets the
        work-function update skip frozenset construction entirely. The fast
        path engages only when ``cost_fn`` *is* the published ``cost``
        entry point of the class that defines ``statement_costs``: a
        subclass that overrides ``cost`` (noise injection, instrumentation)
        or any wrapper callable must be honored verbatim, so those fall
        back to the plain per-configuration path.
        """
        owner = getattr(cost_fn, "__self__", None)
        if owner is None:
            # A non-method callable that itself publishes the mask contract
            # (an explicit adapter) vouches for its own consistency.
            if hasattr(cost_fn, "statement_costs") and hasattr(
                cost_fn, "mask_universe"
            ):
                return cost_fn
            return None
        if not (
            hasattr(owner, "statement_costs") and hasattr(owner, "mask_universe")
        ):
            return None
        func = getattr(cost_fn, "__func__", None)
        for klass in type(owner).__mro__:
            if "statement_costs" in vars(klass):
                return owner if vars(klass).get("cost") is func else None
        return None

    def _mask_of(self, subset: AbstractSet[Index]) -> int:
        mask = 0
        for index in subset:
            bit = self._bit_of.get(index)
            if bit is not None:
                mask |= bit
        return mask

    def _set_of(self, mask: int) -> FrozenSet[Index]:
        subsets = self._subsets
        if subsets is not None:
            return subsets[mask]
        return frozenset(
            ix for i, ix in enumerate(self._indices) if mask & (1 << i)
        )

    def _delta_masks(self, old: int, new: int) -> float:
        return self._delta_table.delta(old, new)

    @staticmethod
    def _lex_prefers(mask_a: int, mask_b: int) -> bool:
        """Appendix-B tie-break: prefer the set containing the lowest-order
        index where the two differ."""
        diff = mask_a ^ mask_b
        if diff == 0:
            return False
        lowest = diff & (-diff)
        return bool(mask_a & lowest)

    # -- public properties -----------------------------------------------------

    @property
    def indices(self) -> Tuple[Index, ...]:
        return self._indices

    @property
    def state_count(self) -> int:
        return self._size

    @property
    def statements_analyzed(self) -> int:
        return self._statements_analyzed

    def recommend(self) -> FrozenSet[Index]:
        """``WFA.recommend()`` of Figure 3."""
        return self._set_of(self._rec)

    def work_function(self) -> Dict[FrozenSet[Index], float]:
        """Snapshot of ``w[S]`` for every configuration (for repartitioning)."""
        return {self._set_of(mask): self._w[mask] for mask in range(self._size)}

    # -- checkpoint hooks ----------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """JSON-ready mutable state (checkpoint hook).

        Work-function values are exported by *local mask*; the mask
        positions are defined by the part's sorted index order, which is
        deterministic, so a peer constructed over the same index set
        decodes them identically. The part's indices themselves are
        serialized by the owner (WFIT), not here.
        """
        return {
            "w": list(self._w),
            "recommendation_mask": self._rec,
            "statements_analyzed": self._statements_analyzed,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Adopt state exported by :meth:`export_state` from a peer with the
        same index set."""
        w = [float(v) for v in state["w"]]
        if len(w) != self._size:
            raise ValueError(
                f"work-function snapshot has {len(w)} values; this part "
                f"tracks {self._size} configurations"
            )
        rec = int(state["recommendation_mask"])
        if not 0 <= rec < self._size:
            raise ValueError(f"recommendation mask {rec} outside the part")
        self._w = w
        self._rec = rec
        self._statements_analyzed = int(state["statements_analyzed"])

    def work_value(self, subset: AbstractSet[Index]) -> float:
        return self._w[self._mask_of(subset)]

    def min_work(self) -> float:
        """``min_S w_n(S)`` — the optimal total work within this part."""
        return min(self._w)

    # -- the algorithm -----------------------------------------------------------

    def _statement_costs(self, statement: object) -> List[float]:
        if self._global_masks is not None:
            return self._mask_provider.statement_costs(statement).costs(
                self._global_masks
            )
        subsets = self._subsets
        if subsets is None:
            indices = self._indices
            subsets = self._subsets = [
                frozenset(
                    ix for i, ix in enumerate(indices) if mask & (1 << i)
                )
                for mask in range(self._size)
            ]
        cost_fn = self._cost_fn
        return [cost_fn(statement, subset) for subset in subsets]

    def analyze_statement(self, statement: object) -> FrozenSet[Index]:
        """``WFA.analyzeQuery`` of Figure 3; returns the new recommendation."""
        size = self._size
        costs = self._statement_costs(statement)
        w = self._w

        # Stage 1: w'[S] = min_X (w[X] + cost(q, X) + δ(X, S)), via
        # per-dimension min-plus relaxation over the separable δ.
        new_w = [w[mask] + costs[mask] for mask in range(size)]
        for i in range(len(self._indices)):
            bit = 1 << i
            create = self._create[i]
            drop = self._drop[i]
            for mask in range(size):
                if mask & bit:
                    continue
                with_bit = mask | bit
                lo, hi = new_w[mask], new_w[with_bit]
                alt_hi = lo + create
                if alt_hi < hi:
                    new_w[with_bit] = alt_hi
                alt_lo = hi + drop
                if alt_lo < lo:
                    new_w[mask] = alt_lo

        self._w = new_w
        self._statements_analyzed += 1

        # Stage 2: pick the next recommendation by minimum score subject to
        # the p[S] membership condition S ∈ p[S] — equivalent to the work
        # function having no final transition: w'[S] = w[S] + cost(q, S).
        # The test is fused into this single scan (no O(2^k) tolerance /
        # self-path temporaries); the δ to the current recommendation is
        # two precomputed-prefix-sum reads. Appendix-B lexicographic
        # tie-break on score ties.
        create_sum = self._delta_table.create_sum
        drop_sum = self._delta_table.drop_sum
        rec = self._rec
        best_mask: Optional[int] = None
        best_score = float("inf")
        for mask in range(size):
            value = new_w[mask]
            if abs(value - (w[mask] + costs[mask])) > _EPS * max(1.0, abs(value)):
                continue
            score = value + create_sum[rec & ~mask] + drop_sum[mask & ~rec]
            if best_mask is None:
                best_mask, best_score = mask, score
                continue
            margin = _EPS * max(1.0, abs(score), abs(best_score))
            if score < best_score - margin:
                best_mask, best_score = mask, score
            elif abs(score - best_score) <= margin and self._lex_prefers(mask, best_mask):
                best_mask, best_score = mask, score
        if best_mask is None:
            # Numerically impossible per Lemma 9.2 of [3], but stay robust:
            # fall back to the plain minimum-score state.
            best_mask = min(
                range(size),
                key=lambda m: (new_w[m] + self._delta_masks(m, rec), m),
            )
        self._rec = best_mask
        return self.recommend()

    def scores(self) -> Dict[FrozenSet[Index], float]:
        """Current ``score(S) = w[S] + δ(S, currRec)`` for every S (debug/tests)."""
        return {
            self._set_of(mask): self._w[mask] + self._delta_masks(mask, self._rec)
            for mask in range(self._size)
        }

    # -- feedback (Figure 4, per-part body) -----------------------------------------

    def apply_feedback(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Apply DBA votes to this part; returns the adjusted recommendation.

        Implements the body of ``WFIT.feedback`` (Figure 4): switch the
        recommendation to the consistent configuration, then raise work
        function values so every configuration respects the score bound
        (5.1) relative to the new recommendation.
        """
        plus_mask = self._mask_of(f_plus)
        minus_mask = self._mask_of(f_minus)
        if plus_mask & minus_mask:
            raise ValueError("F+ and F- must be disjoint")
        new_rec = (self._rec & ~minus_mask) | plus_mask
        self._rec = new_rec
        w = self._w
        rec_value = w[new_rec]
        table = self._delta_table
        create_sum = table.create_sum
        drop_sum = table.drop_sum
        for mask in range(self._size):
            consistent = (mask & ~minus_mask) | plus_mask
            # δ(mask, consistent) + δ(consistent, mask) — a round trip over
            # exactly the bits the votes flip.
            min_diff = table.round_trip(mask ^ consistent)
            diff = (
                w[mask]
                + create_sum[new_rec & ~mask]
                + drop_sum[mask & ~new_rec]
                - rec_value
            )
            if diff < min_diff:
                w[mask] += min_diff - diff
        return self.recommend()
