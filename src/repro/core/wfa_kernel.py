# reprolint: zone=deterministic
"""Array-backed work-function kernels: the WFA hot loop as vector math.

After the plan templates of PR 4 removed the optimizer bottleneck,
``bench_kernel.py --profile`` showed the remaining per-statement cost at
part sizes 8–12 living in the pure-Python work-function update itself:
``O(2^k · k)`` relaxation steps, a ``2^k`` recommendation scan, and a
``2^k`` feedback raise, all as interpreted per-mask loops. This module
re-states those three operations over *contiguous arrays*:

* the work-function vector ``w`` (one float per configuration mask),
* the per-statement cost vector (filled in place by
  :meth:`repro.optimizer.whatif.StatementCosts.costs_into`),
* the δ prefix sums of :class:`~repro.core.bitset.MaskDeltaTable`
  (``array('d')`` buffers, zero-copy viewable by numpy).

Two interchangeable backends implement the same kernel interface:

:class:`NumpyWFKernel`
    Whole-vector operations with **no per-mask Python loop**. Stage 1
    relaxes dimension ``i`` by reshaping ``w`` to ``(size/2^{i+1}, 2,
    2^i)`` so the middle axis separates ``S`` from ``S ∪ {a_i}``; stage 2
    computes eligibility and scores vectorized, then replays the exact
    sequential tie-break scan over the (tiny) set of near-minimal
    candidates; the Figure-4 feedback raise is a masked vector update.

:class:`PurePythonWFKernel`
    An ``array``-module twin with the original per-mask loops, kept
    import-clean of numpy so the package runs everywhere.

**Bit-identical by construction.** Every float operation of both backends
replays the scalar implementation's additions and comparisons in the same
order on IEEE-754 doubles, so the two backends — and checkpoints,
golden totWork curves, and the frozenset reference oracle — agree to the
last bit. ``tests/core/test_wfa_kernel_property.py`` enforces this.

Backend selection: :func:`make_kernel` picks numpy when it is importable
and ``REPRO_NO_NUMPY`` is unset/``0``; tests and benchmarks can pin a
backend with :func:`force_backend`.

**Buffer ownership / threading contract.** Every kernel instance *owns*
its buffers: the ``w`` vector, the cost vector, and all integer/float
scratch are allocated per instance in ``__init__`` and never shared —
there is no module-level scratch, and the only module-level mutable state
(:data:`_forced_backend`) is a configuration switch read at construction
time, not during :meth:`analyze`. The δ prefix-sum arrays come from the
:class:`~repro.core.bitset.MaskDeltaTable` the kernel was built over
(per-WFA-instance as well) and are only ever *read* after construction.
Consequently kernels of different parts may run :meth:`analyze` /
:meth:`feedback` concurrently — this is what WFIT's partition-parallel
fan-out relies on. The numpy backend additionally releases the GIL inside
its whole-vector operations, so per-part relaxations of a large partition
genuinely overlap on threads; the pure-Python twin stays correct under
the same contract but holds the GIL throughout, so it does not scale with
a thread pool. A *single* kernel instance is not reentrant: never run two
operations on the same instance concurrently
(``tests/core/test_wfit_parallel.py`` pins the no-aliasing property).
"""

from __future__ import annotations

import contextlib
import os
from array import array
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Union

from .bitset import MaskDeltaTable

try:  # The package must import (and pass tier-1) without numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

__all__ = [
    "NumpyWFKernel",
    "PurePythonWFKernel",
    "available_backends",
    "combined_backend",
    "default_backend",
    "force_backend",
    "make_kernel",
]

#: Absolute tolerance for float comparisons of work-function values (the
#: same constant the scalar implementation and the frozenset reference
#: oracle use).
_EPS = 1e-7

#: When set (to anything but "" or "0"), the numpy backend is never
#: selected by default — the switch the dual-mode CI job flips so the
#: pure-Python twin cannot rot.
_NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Test/benchmark override installed by :func:`force_backend`.
_forced_backend: Optional[str] = None


def _numpy_disabled() -> bool:
    return os.environ.get(_NO_NUMPY_ENV, "") not in ("", "0")


def available_backends() -> List[str]:
    """The backends constructible in this interpreter (env-independent)."""
    out = ["python"]
    if _np is not None:
        out.insert(0, "numpy")
    return out


#: Parts below this state count run the pure-Python twin even when numpy
#: is available: per-op dispatch overhead beats vector width on tiny
#: vectors (measured crossover on the figure-8 workload is at 2^6 states —
#: the python twin is ~1.8× faster at 2^4, numpy ~1.7× faster at 2^7).
_NUMPY_MIN_STATES = 64


def default_backend(state_count: Optional[int] = None) -> str:
    """The backend :func:`make_kernel` picks for a part of ``state_count``
    configurations (None: the large-part default)."""
    if _forced_backend is not None:
        return _forced_backend
    if _np is not None and not _numpy_disabled():
        if state_count is None or state_count >= _NUMPY_MIN_STATES:
            return "numpy"
    return "python"


@contextlib.contextmanager
def force_backend(name: str) -> Iterator[None]:
    """Pin the default backend within a ``with`` block (tests/benchmarks).

    ``name`` must be one of :func:`available_backends`; forcing ``numpy``
    without numpy installed raises immediately rather than at first use.
    """
    global _forced_backend
    if name not in available_backends():
        raise ValueError(
            f"backend {name!r} not available (have {available_backends()})"
        )
    previous = _forced_backend
    _forced_backend = name
    try:
        yield
    finally:
        _forced_backend = previous


def combined_backend(instances: Iterable[Any]) -> str:
    """The backend(s) a collection of WFA instances runs on.

    Backend selection is per part (size-aware), so a mixed partition
    reports the sorted combination, e.g. ``"numpy+python"``; an empty
    collection reports the large-part default.
    """
    backends = {instance.kernel_backend for instance in instances}
    if not backends:
        return default_backend()
    return "+".join(sorted(backends))


def make_kernel(
    table: MaskDeltaTable, backend: Optional[str] = None
) -> Union["PurePythonWFKernel", "NumpyWFKernel"]:
    """A work-function kernel over one part's δ prefix sums.

    ``backend`` overrides the default selection (``"numpy"`` /
    ``"python"``); None picks :func:`default_backend` for the part's
    state count.
    """
    chosen = backend or default_backend(table.size)
    if chosen == "numpy":
        if _np is None:
            raise ValueError("numpy backend requested but numpy is not importable")
        return NumpyWFKernel(table)
    if chosen == "python":
        return PurePythonWFKernel(table)
    raise ValueError(f"unknown work-function kernel backend {chosen!r}")


def _lex_prefers(mask_a: int, mask_b: int) -> bool:
    """Appendix-B tie-break: prefer the set containing the lowest-order
    index where the two differ."""
    diff = mask_a ^ mask_b
    if diff == 0:
        return False
    lowest = diff & (-diff)
    return bool(mask_a & lowest)


def _scan_candidates(
    candidates: Sequence[int], scores: Sequence[float]
) -> int:
    """The sequential Figure-3 selection over pre-filtered candidates.

    Replays the scalar scan exactly — first candidate seeds the running
    best, a strictly (beyond the relative margin) smaller score replaces
    it, and within-margin ties fall to the Appendix-B rule — so both
    backends resolve near-ties identically. ``candidates`` must be in
    ascending mask order, the order the scalar scan visits.
    """
    best_mask = candidates[0]
    best_score = scores[0]
    for pos in range(1, len(candidates)):
        mask = candidates[pos]
        score = scores[pos]
        margin = _EPS * max(1.0, abs(score), abs(best_score))
        if score < best_score - margin:
            best_mask, best_score = mask, score
        elif abs(score - best_score) <= margin and _lex_prefers(mask, best_mask):
            best_mask, best_score = mask, score
    return best_mask


class PurePythonWFKernel:
    """``array``-module work-function kernel (the retained fallback path).

    Same storage layout and float semantics as :class:`NumpyWFKernel`;
    the per-dimension relaxation and the scans are per-mask Python loops
    over ``array('d')`` buffers.
    """

    backend = "python"

    __slots__ = ("_table", "_size", "_k", "_create", "_drop", "_w", "costs")

    def __init__(self, table: MaskDeltaTable) -> None:
        self._table = table
        size = table.size
        self._size = size
        self._k = size.bit_length() - 1
        create_sum = table.create_sum
        drop_sum = table.drop_sum
        self._create = [create_sum[1 << i] for i in range(self._k)]
        self._drop = [drop_sum[1 << i] for i in range(self._k)]
        self._w = array("d", bytes(8 * size))
        #: The per-statement cost vector; callers fill it in place
        #: (``StatementCosts.costs_into``) before :meth:`analyze`.
        self.costs = array("d", bytes(8 * size))

    # -- state ---------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    def reset_from_delta(self, initial_mask: int) -> None:
        """``w0(S) = δ(S0, S)`` for every configuration."""
        delta = self._table.delta
        w = self._w
        for mask in range(self._size):
            w[mask] = delta(initial_mask, mask)

    def load_w(self, values: Sequence[float]) -> None:
        self._w = array("d", values)

    def export_w(self) -> List[float]:
        return self._w.tolist()

    def work_value(self, mask: int) -> float:
        return self._w[mask]

    def min_work(self) -> float:
        return min(self._w)

    def mask_array(self, masks: Sequence[int]) -> List[int]:
        """Backend-preferred container for a fixed global-mask vector."""
        return list(masks)

    # -- the three kernel operations ----------------------------------------

    def analyze(self, rec: int) -> int:
        """Stage-1 relaxation + fused stage-2 scan over :attr:`costs`.

        Returns the new recommendation mask; ``w`` is updated in place.
        The loops run over plain-float lists (``array('d')`` item access
        boxes a float per read, which costs ~20% at part size 12) and the
        result is stored back into the array buffer.
        """
        size = self._size
        stored = self._w
        costs = self.costs
        base = [stored[mask] + costs[mask] for mask in range(size)]
        w = base[:]

        # Stage 1: per-dimension min-plus relaxation over the separable δ.
        for i in range(self._k):
            bit = 1 << i
            create = self._create[i]
            drop = self._drop[i]
            for mask in range(size):
                if mask & bit:
                    continue
                with_bit = mask | bit
                lo, hi = w[mask], w[with_bit]
                alt_hi = lo + create
                if alt_hi < hi:
                    w[with_bit] = alt_hi
                alt_lo = hi + drop
                if alt_lo < lo:
                    w[mask] = alt_lo
        stored[:] = array("d", w)

        # Stage 2: minimum score subject to the p[S] membership condition
        # (w'[S] = w[S] + cost(q, S), i.e. no final transition), fused into
        # one scan; δ to the current recommendation is two prefix-sum reads.
        create_sum = self._table.create_sum
        drop_sum = self._table.drop_sum
        best_mask: Optional[int] = None
        best_score = float("inf")
        for mask in range(size):
            value = w[mask]
            if abs(value - base[mask]) > _EPS * max(1.0, abs(value)):
                continue
            score = value + create_sum[rec & ~mask] + drop_sum[mask & ~rec]
            if best_mask is None:
                best_mask, best_score = mask, score
                continue
            margin = _EPS * max(1.0, abs(score), abs(best_score))
            if score < best_score - margin:
                best_mask, best_score = mask, score
            elif abs(score - best_score) <= margin and _lex_prefers(mask, best_mask):
                best_mask, best_score = mask, score
        if best_mask is None:
            # Numerically impossible per Lemma 9.2 of [3], but stay robust:
            # fall back to the plain minimum-score state, resolving exact
            # ties with the same Appendix-B rule as the main scan.
            best_mask = 0
            best_score = w[0] + create_sum[rec] + drop_sum[0]
            for mask in range(1, size):
                score = w[mask] + create_sum[rec & ~mask] + drop_sum[mask & ~rec]
                if score < best_score or (
                    score == best_score and _lex_prefers(mask, best_mask)
                ):
                    best_mask, best_score = mask, score
        return best_mask

    def feedback(self, plus_mask: int, minus_mask: int, rec: int) -> int:
        """The Figure-4 raise relative to the vote-consistent recommendation.

        Returns the new recommendation mask; ``w`` is raised in place so
        every configuration respects the score bound (5.1).
        """
        new_rec = (rec & ~minus_mask) | plus_mask
        w = self._w
        rec_value = w[new_rec]
        create_sum = self._table.create_sum
        drop_sum = self._table.drop_sum
        for mask in range(self._size):
            consistent = (mask & ~minus_mask) | plus_mask
            # δ(mask, consistent) + δ(consistent, mask) — a round trip over
            # exactly the bits the votes flip.
            flip = mask ^ consistent
            min_diff = create_sum[flip] + drop_sum[flip]
            diff = (
                w[mask]
                + create_sum[new_rec & ~mask]
                + drop_sum[mask & ~new_rec]
                - rec_value
            )
            if diff < min_diff:
                w[mask] += min_diff - diff
        return new_rec


class NumpyWFKernel:
    """Vectorized work-function kernel (numpy ``float64``/``int64``).

    Indexing restriction: local masks are at most ``2^20`` (the WFA part
    cap), far inside int64, so every bit operation of the scalar kernel
    maps directly onto int64 vector ops.
    """

    backend = "numpy"

    __slots__ = (
        "_table", "_size", "_k", "_create", "_drop",
        "_cs", "_ds", "_masks", "_not_masks",
        "_w", "costs", "_base", "_i1", "_i2", "_f1", "_f2", "_f3",
    )

    def __init__(self, table: MaskDeltaTable) -> None:
        self._table = table
        size = table.size
        self._size = size
        self._k = size.bit_length() - 1
        # Zero-copy views over the shared array('d') prefix sums: the
        # scalar delta() reads and these gathers see the same memory.
        self._cs = _np.frombuffer(table.create_sum, dtype=_np.float64)
        self._ds = _np.frombuffer(table.drop_sum, dtype=_np.float64)
        self._create = [float(self._cs[1 << i]) for i in range(self._k)]
        self._drop = [float(self._ds[1 << i]) for i in range(self._k)]
        self._masks = _np.arange(size, dtype=_np.int64)
        self._not_masks = _np.bitwise_not(self._masks)
        self._w = _np.zeros(size, dtype=_np.float64)
        #: The per-statement cost vector (filled in place by callers).
        self.costs = _np.empty(size, dtype=_np.float64)
        self._base = _np.empty(size, dtype=_np.float64)
        # Integer / float scratch, reused across statements.
        self._i1 = _np.empty(size, dtype=_np.int64)
        self._i2 = _np.empty(size, dtype=_np.int64)
        self._f1 = _np.empty(size, dtype=_np.float64)
        self._f2 = _np.empty(size, dtype=_np.float64)
        self._f3 = _np.empty(size, dtype=_np.float64)

    # -- state ---------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    def reset_from_delta(self, initial_mask: int) -> None:
        # δ(S0, S) = create_sum[S \ S0] + drop_sum[S0 \ S], summed in the
        # scalar order (create first).
        _np.bitwise_and(self._masks, ~initial_mask, out=self._i1)
        _np.bitwise_and(self._not_masks, initial_mask, out=self._i2)
        _np.take(self._cs, self._i1, out=self._w)
        _np.take(self._ds, self._i2, out=self._f1)
        self._w += self._f1

    def load_w(self, values: Sequence[float]) -> None:
        self._w[:] = _np.asarray(values, dtype=_np.float64)

    def export_w(self) -> List[float]:
        return self._w.tolist()

    def work_value(self, mask: int) -> float:
        return float(self._w[mask])

    def min_work(self) -> float:
        return float(self._w.min())

    def mask_array(self, masks: Sequence[int]) -> Any:
        """int64 vector of the part's global masks when they fit, else the
        plain list (universes beyond 63 bits fall back to int-loop costing)."""
        if masks and (max(masks) >> 62):
            return list(masks)
        return _np.asarray(masks, dtype=_np.int64)

    # -- the three kernel operations ----------------------------------------

    def _scores_into(
        self, values: Any, rec: int, out: Any, scratch: Any
    ) -> None:
        """``score(S) = value(S) + δ(S, rec)`` with the scalar's summation
        order: (value + create_sum[rec \\ S]) + drop_sum[S \\ rec].

        ``out`` and ``scratch`` must be distinct full-size float buffers,
        both distinct from ``values``.
        """
        _np.bitwise_and(self._not_masks, rec, out=self._i1)
        _np.bitwise_and(self._masks, ~rec, out=self._i2)
        _np.take(self._cs, self._i1, out=out)
        out += values
        _np.take(self._ds, self._i2, out=scratch)
        out += scratch

    def analyze(self, rec: int) -> int:
        size = self._size
        w = self._w
        base = self._base
        _np.add(w, self.costs, out=base)
        _np.copyto(w, base)

        # Stage 1: one reshape per dimension puts S (axis value 0) and
        # S ∪ {a_i} (axis value 1) side by side; the two relaxations read
        # the pre-dimension pair values exactly like the scalar loop.
        scratch = self._f1
        for i in range(self._k):
            half = 1 << i
            pairs = w.reshape(-1, 2, half)
            lo = pairs[:, 0, :]
            hi = pairs[:, 1, :]
            alt_hi = scratch[: size >> 1].reshape(lo.shape)
            _np.add(lo, self._create[i], out=alt_hi)
            alt_lo = self._f2[: size >> 1].reshape(lo.shape)
            _np.add(hi, self._drop[i], out=alt_lo)
            _np.minimum(hi, alt_hi, out=hi)
            _np.minimum(lo, alt_lo, out=lo)

        # Stage 2, vectorized: eligibility (the p[S] membership test) and
        # scores for all masks, then the exact sequential tie-break scan
        # over the few candidates within a conservatively inflated margin
        # of the eligible minimum (every mask the scalar scan could ever
        # select lies in that band; see _scan_candidates).
        tol = self._f1
        _np.abs(w, out=tol)
        _np.maximum(tol, 1.0, out=tol)
        tol *= _EPS
        gap = self._f2
        _np.subtract(w, base, out=gap)
        _np.abs(gap, out=gap)
        eligible = gap <= tol

        # tol (_f1) and gap (_f2) are consumed once `eligible` exists, so
        # both are free to serve as score output and scratch.
        scores = self._f3
        self._scores_into(w, rec, scores, self._f1)

        if eligible.any():
            s_min = float(scores[eligible].min())
            threshold = s_min + _EPS * (size + 4) * max(1.0, abs(s_min))
            band = eligible & (scores <= threshold)
            candidates = _np.nonzero(band)[0]
            return _scan_candidates(
                candidates.tolist(), scores[candidates].tolist()
            )
        # Numerically impossible fallback (kept for robustness): exact
        # minimum score with the Appendix-B rule on exact ties.
        s_min = scores.min()
        ties = _np.nonzero(scores == s_min)[0].tolist()
        best_mask = ties[0]
        for mask in ties[1:]:
            if _lex_prefers(mask, best_mask):
                best_mask = mask
        return best_mask

    def feedback(self, plus_mask: int, minus_mask: int, rec: int) -> int:
        new_rec = (rec & ~minus_mask) | plus_mask
        w = self._w
        rec_value = float(w[new_rec])
        # consistent = (S \ F−) ∪ F+; flip = S ⊕ consistent; the round-trip
        # bound is create_sum[flip] + drop_sum[flip].
        flip = self._i1
        _np.bitwise_and(self._masks, minus_mask, out=flip)
        _np.bitwise_or(
            flip, _np.bitwise_and(self._not_masks, plus_mask), out=flip
        )
        min_diff = self._f1
        _np.take(self._cs, flip, out=min_diff)
        _np.take(self._ds, flip, out=self._f2)
        min_diff += self._f2

        # diff = ((w + create_sum[rec' \ S]) + drop_sum[S \ rec']) − w[rec'],
        # replaying the scalar summation order. _f2 is free again once
        # min_diff has absorbed it.
        diff = self._f3
        self._scores_into(w, new_rec, diff, self._f2)
        diff -= rec_value

        raise_by = self._f2
        _np.subtract(min_diff, diff, out=raise_by)
        raise_by += w
        _np.copyto(w, raise_by, where=diff < min_diff)
        return new_rec
