# reprolint: zone=deterministic
"""WFA⁺: divide-and-conquer WFA over a stable partition (§4.2).

WFA⁺ runs one :class:`~repro.core.wfa.WFA` instance per part of a stable
partition ``{C1, …, CK}``. On a stable partition this is *lossless*
(Theorem 4.2: identical recommendations to monolithic WFA over ``C``) while
tracking only ``Σ 2^|Ck|`` configurations instead of ``2^|C|``, and the
competitive ratio drops from ``2^{|C|+1} − 1`` to ``2^{c_max+1} − 1``
(Theorem 4.3).

Feedback is supported here as well (delegated to each part per Figure 4),
so a fixed-partition WFIT — the configuration used by most of the paper's
experiments — is exactly this class.

Each per-part instance runs on the bitset configuration kernel
(:mod:`repro.core.bitset`): when the shared ``cost_fn`` is a mask-capable
what-if optimizer, one statement analyzed across all K parts performs
``Σ 2^|Ck|`` int-keyed cache probes and zero frozenset constructions.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..db.index import Index
from .wfa import WFA, CostFunction

__all__ = ["WFAPlus", "validate_partition"]


def validate_partition(parts: Sequence[AbstractSet[Index]]) -> Tuple[FrozenSet[Index], ...]:
    """Check disjointness/non-emptiness and normalize to frozensets."""
    normalized: List[FrozenSet[Index]] = []
    seen: set = set()
    for part in parts:
        part_set = frozenset(part)
        if not part_set:
            raise ValueError("empty part in partition")
        overlap = seen.intersection(part_set)
        if overlap:
            raise ValueError(f"parts overlap on {sorted(ix.name for ix in overlap)}")
        seen.update(part_set)
        normalized.append(part_set)
    return tuple(normalized)


class WFAPlus:
    """An array of WFA instances, one per part of a stable partition."""

    def __init__(
        self,
        partition: Sequence[AbstractSet[Index]],
        initial_config: AbstractSet[Index],
        cost_fn: CostFunction,
        transitions,
    ) -> None:
        parts = validate_partition(partition)
        initial = frozenset(initial_config)
        candidates = frozenset().union(*parts) if parts else frozenset()
        stray = initial - candidates
        if stray:
            raise ValueError(
                f"initial config contains non-candidate indices: "
                f"{sorted(ix.name for ix in stray)}"
            )
        self._parts = parts
        self._instances: List[WFA] = [
            WFA(sorted(part), initial & part, cost_fn, transitions)
            for part in parts
        ]
        self._statements_analyzed = 0

    # -- introspection ---------------------------------------------------------

    @property
    def partition(self) -> Tuple[FrozenSet[Index], ...]:
        return self._parts

    @property
    def instances(self) -> Tuple[WFA, ...]:
        return tuple(self._instances)

    @property
    def candidates(self) -> FrozenSet[Index]:
        return frozenset().union(*self._parts) if self._parts else frozenset()

    @property
    def state_count(self) -> int:
        """Total tracked configurations ``Σ 2^|Ck|``."""
        return sum(instance.state_count for instance in self._instances)

    @property
    def max_part_size(self) -> int:
        """``c_max`` of Theorem 4.3."""
        return max((len(part) for part in self._parts), default=0)

    @property
    def kernel_backend(self) -> str:
        """The work-function kernel backend(s) the parts run on (mixed
        partitions report e.g. ``"numpy+python"``)."""
        from .wfa_kernel import combined_backend

        return combined_backend(self._instances)

    @property
    def statements_analyzed(self) -> int:
        return self._statements_analyzed

    # -- the WFA+ interface -------------------------------------------------------

    def analyze_statement(self, statement: object) -> FrozenSet[Index]:
        """Feed the next workload statement to every part."""
        for instance in self._instances:
            instance.analyze_statement(statement)
        self._statements_analyzed += 1
        return self.recommend()

    def recommend(self) -> FrozenSet[Index]:
        """``⋃_k WFA^{(k)}.recommend()``."""
        out: set = set()
        for instance in self._instances:
            out.update(instance.recommend())
        return frozenset(out)

    def feedback(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Apply DBA votes (Figure 4) and return the adjusted recommendation.

        Votes on indices outside the candidate set are ignored (they cannot
        be represented in any part's configuration space).
        """
        plus = frozenset(f_plus)
        minus = frozenset(f_minus)
        if plus & minus:
            raise ValueError("F+ and F- must be disjoint")
        for instance in self._instances:
            instance.apply_feedback(plus, minus)
        return self.recommend()

    def min_work(self) -> float:
        """Σ_k min_S w^{(k)}(S) — used for OPT-style lower-bound accounting."""
        return sum(instance.min_work() for instance in self._instances)

    def work_functions(self) -> List[Dict[FrozenSet[Index], float]]:
        """Per-part work function snapshots (used by WFIT.repartition)."""
        return [instance.work_function() for instance in self._instances]
