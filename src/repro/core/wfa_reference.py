# reprolint: zone=deterministic
"""Reference frozenset implementation of WFA (the pre-kernel seed code).

This module preserves the original pure-``frozenset`` Work Function
Algorithm exactly as it shipped before the bitset kernel
(:mod:`repro.core.bitset`) landed. It exists for two reasons:

* **Equivalence oracle** — the property tests replay random workloads
  through :class:`ReferenceWFA` and the kernel-backed
  :class:`~repro.core.wfa.WFA` and require identical recommendations and
  work-function values at every step (the "speed was not bought with
  correctness" guarantee).
* **Benchmark baseline** — ``benchmarks/bench_kernel.py`` measures the
  kernel's statements/sec speedup against this implementation, which
  reproduces the seed's per-statement costs: every configuration is
  materialized as a ``frozenset`` for each cost lookup and every δ is a
  Python-level walk over the part's indices.

Semantics are identical to the seed ``repro.core.wfa.WFA`` (Figure 3 with
the Appendix-B tie-break, feedback per Figure 4); only the configuration
representation differs. Do not "optimize" this module — its slowness is
the point.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..db.index import Index
from .wfa import CostFunction

__all__ = ["ReferenceWFA"]

#: Absolute tolerance for float comparisons of work-function values (same
#: constant as the kernel implementation).
_EPS = 1e-7


class ReferenceWFA:
    """Seed (frozenset) Work Function Algorithm over one part."""

    def __init__(
        self,
        indices: Sequence[Index],
        initial_config: AbstractSet[Index],
        cost_fn: CostFunction,
        transitions,
        work_values: Optional[Dict[FrozenSet[Index], float]] = None,
        recommendation: Optional[AbstractSet[Index]] = None,
    ) -> None:
        self._indices: Tuple[Index, ...] = tuple(sorted(set(indices)))
        if len(self._indices) > 20:
            raise ValueError(
                f"part of {len(self._indices)} indices would need "
                f"{1 << len(self._indices)} states; repartition first"
            )
        self._bit_of: Dict[Index, int] = {
            ix: 1 << i for i, ix in enumerate(self._indices)
        }
        self._cost_fn = cost_fn
        self._transitions = transitions
        self._create = [transitions.create_cost(ix) for ix in self._indices]
        self._drop = [transitions.drop_cost(ix) for ix in self._indices]
        self._size = 1 << len(self._indices)

        initial_mask = self._mask_of(initial_config)
        if work_values is not None:
            # Same warm-start validation as the kernel WFA (fixed in
            # lockstep): a silently defaulted w[S] = 0 marks S reachable
            # for free, and aliasing keys must not silently overlay.
            values: List[Optional[float]] = [None] * self._size
            for subset, value in work_values.items():
                mask = self._mask_of(subset)
                if values[mask] is not None:
                    raise ValueError(
                        "ambiguous work-function snapshot: two entries "
                        "project onto one configuration"
                    )
                values[mask] = float(value)
            missing = sum(1 for v in values if v is None)
            if missing:
                raise ValueError(
                    f"incomplete work-function snapshot: {missing} of "
                    f"{self._size} configurations have no value"
                )
            self._w = values  # type: ignore[assignment]
        else:
            self._w = [
                self._delta_masks(initial_mask, mask) for mask in range(self._size)
            ]
        if recommendation is not None:
            self._rec = self._mask_of(recommendation)
        else:
            self._rec = initial_mask
        self._statements_analyzed = 0

    # -- mask helpers --------------------------------------------------------

    def _mask_of(self, subset: AbstractSet[Index]) -> int:
        mask = 0
        for index in subset:
            bit = self._bit_of.get(index)
            if bit is not None:
                mask |= bit
        return mask

    def _set_of(self, mask: int) -> FrozenSet[Index]:
        return frozenset(
            ix for i, ix in enumerate(self._indices) if mask & (1 << i)
        )

    def _delta_masks(self, old: int, new: int) -> float:
        total = 0.0
        added = new & ~old
        dropped = old & ~new
        for i in range(len(self._indices)):
            bit = 1 << i
            if added & bit:
                total += self._create[i]
            elif dropped & bit:
                total += self._drop[i]
        return total

    @staticmethod
    def _lex_prefers(mask_a: int, mask_b: int) -> bool:
        """Appendix-B tie-break: prefer the set containing the lowest-order
        index where the two differ."""
        diff = mask_a ^ mask_b
        if diff == 0:
            return False
        lowest = diff & (-diff)
        return bool(mask_a & lowest)

    # -- public properties -----------------------------------------------------

    @property
    def indices(self) -> Tuple[Index, ...]:
        return self._indices

    @property
    def state_count(self) -> int:
        return self._size

    @property
    def statements_analyzed(self) -> int:
        return self._statements_analyzed

    def recommend(self) -> FrozenSet[Index]:
        return self._set_of(self._rec)

    def work_function(self) -> Dict[FrozenSet[Index], float]:
        return {self._set_of(mask): self._w[mask] for mask in range(self._size)}

    def work_value(self, subset: AbstractSet[Index]) -> float:
        return self._w[self._mask_of(subset)]

    def min_work(self) -> float:
        return min(self._w)

    # -- the algorithm -----------------------------------------------------------

    def _statement_costs(self, statement: object) -> List[float]:
        return [
            self._cost_fn(statement, self._set_of(mask))
            for mask in range(self._size)
        ]

    def analyze_statement(self, statement: object) -> FrozenSet[Index]:
        """``WFA.analyzeQuery`` of Figure 3; returns the new recommendation."""
        size = self._size
        costs = self._statement_costs(statement)
        w = self._w

        new_w = [w[mask] + costs[mask] for mask in range(size)]
        for i in range(len(self._indices)):
            bit = 1 << i
            create = self._create[i]
            drop = self._drop[i]
            for mask in range(size):
                if mask & bit:
                    continue
                with_bit = mask | bit
                lo, hi = new_w[mask], new_w[with_bit]
                alt_hi = lo + create
                if alt_hi < hi:
                    new_w[with_bit] = alt_hi
                alt_lo = hi + drop
                if alt_lo < lo:
                    new_w[mask] = alt_lo

        tolerance = [
            _EPS * max(1.0, abs(new_w[mask])) for mask in range(size)
        ]
        self_path = [
            abs(new_w[mask] - (w[mask] + costs[mask])) <= tolerance[mask]
            for mask in range(size)
        ]
        self._w = new_w
        self._statements_analyzed += 1

        best_mask: Optional[int] = None
        best_score = float("inf")
        for mask in range(size):
            if not self_path[mask]:
                continue
            score = new_w[mask] + self._delta_masks(mask, self._rec)
            if best_mask is None:
                best_mask, best_score = mask, score
                continue
            margin = _EPS * max(1.0, abs(score), abs(best_score))
            if score < best_score - margin:
                best_mask, best_score = mask, score
            elif abs(score - best_score) <= margin and self._lex_prefers(mask, best_mask):
                best_mask, best_score = mask, score
        if best_mask is None:
            # Unreachable numerically (the arg-min of stage 1 always keeps
            # its self path), but stay robust: plain minimum score, exact
            # ties resolved by the same Appendix-B rule as the main scan.
            # (The seed broke ties ascending-by-mask here, contradicting
            # its own _lex_prefers; fixed in lockstep with the kernel.)
            best_mask = 0
            best_score = new_w[0] + self._delta_masks(0, self._rec)
            for mask in range(1, size):
                score = new_w[mask] + self._delta_masks(mask, self._rec)
                if score < best_score or (
                    score == best_score and self._lex_prefers(mask, best_mask)
                ):
                    best_mask, best_score = mask, score
        self._rec = best_mask
        return self.recommend()

    def scores(self) -> Dict[FrozenSet[Index], float]:
        return {
            self._set_of(mask): self._w[mask] + self._delta_masks(mask, self._rec)
            for mask in range(self._size)
        }

    # -- feedback (Figure 4, per-part body) -----------------------------------------

    def apply_feedback(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Apply DBA votes to this part; returns the adjusted recommendation."""
        plus_mask = self._mask_of(f_plus)
        minus_mask = self._mask_of(f_minus)
        if plus_mask & minus_mask:
            raise ValueError("F+ and F- must be disjoint")
        new_rec = (self._rec & ~minus_mask) | plus_mask
        self._rec = new_rec
        w = self._w
        rec_value = w[new_rec]
        for mask in range(self._size):
            consistent = (mask & ~minus_mask) | plus_mask
            min_diff = (
                self._delta_masks(mask, consistent)
                + self._delta_masks(consistent, mask)
            )
            diff = w[mask] + self._delta_masks(mask, new_rec) - rec_value
            if diff < min_diff:
                w[mask] += min_diff - diff
        return self.recommend()
