# reprolint: zone=deterministic
"""WFIT: the end-to-end semi-automatic index tuning algorithm (§5).

WFIT wraps an array of per-part :class:`~repro.core.wfa.WFA` instances
(the WFA⁺ recommendation logic) with the two mechanisms WFA⁺ lacks:

* **Feedback** (Figure 4): positive/negative DBA votes switch each part's
  recommendation to the consistent configuration and raise work-function
  values so bound (5.1) holds — the state looks as if the *workload* had
  led WFIT to the voted configuration, which is what makes recovery from
  bad advice possible.
* **Automatic candidate maintenance** (Figures 5–7): per statement,
  ``chooseCands`` mines candidate indices, updates benefit/interaction
  statistics from the statement's IBG, picks the top candidates, and
  re-partitions them; ``repartition`` then rebuilds the WFA instances,
  initializing each new part's work function from the old ones so that no
  accumulated evidence is lost.

Passing ``fixed_partition`` disables candidate maintenance, yielding the
configuration most of the paper's experiments use (WFIT ≡ WFA⁺ + feedback).

Partition-parallel updates
--------------------------
The §4 stability condition makes per-part WFA state disjoint by
construction, so the per-statement work-function updates of different
parts are independent. With ``workers > 1`` (constructor knob, or the
``REPRO_WORKERS`` environment variable), :meth:`WFIT.analyze_statement`
splits each update into two phases: the shared-cache cost fetch
(:meth:`~repro.core.wfa.WFA.prepare_statement`) runs serially in fixed
part order — it touches the one shared what-if optimizer — and the pure
per-part kernel relaxation (:meth:`~repro.core.wfa.WFA.relax`) fans out
to a thread pool. Recommendations are then merged in fixed part order.
``workers=1`` (the default) is the bit-identical serial oracle; any
worker count produces exactly the same recommendations, work-function
vectors, and totWork, because the fanned-out phase touches only
per-part-owned kernel buffers (see :mod:`repro.core.wfa_kernel`'s
threading contract). Threads genuinely overlap only on the numpy kernel
backend, which releases the GIL inside its vector ops.
"""

from __future__ import annotations

import os
import random
import threading
import time

# Reporting-only wall-clock seam: every timing read in this module
# flows through this alias so the R1 exemption is a single audited
# point rather than scattered call sites.
_perf_counter = time.perf_counter  # reprolint: disable=R1(feeds wall_time reporting only, never tuning state; bit-identity tests cover outputs)
from concurrent.futures import ThreadPoolExecutor
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .. import obs
from ..db.index import Index
from ..ibg.analysis import degree_of_interaction, max_benefit
from ..ibg.graph import IndexBenefitGraph
from ..optimizer.extract import extract_indices
from ..optimizer.whatif import WhatIfOptimizer
from .bitset import delta_cost
from .candidates import IndexStatistics, top_indices
from .partitioning import choose_partition, state_count
from .wfa import WFA
from .wfa_plus import validate_partition

# Module-cached WFIT counters (statements analyzed, repartitions) on the
# default registry; lazy so importing this module registers nothing.
_WFIT_COUNTERS: List[object] = []


def _wfit_counters():
    if not _WFIT_COUNTERS:
        registry = obs.default_registry()
        _WFIT_COUNTERS.append(registry.counter(
            "repro_wfit_statements_total",
            help="Statements analyzed by WFIT.analyze_statement.",
        ))
        _WFIT_COUNTERS.append(registry.counter(
            "repro_wfit_repartitions_total",
            help="Stable-partition rebuilds (candidate churn).",
        ))
    return _WFIT_COUNTERS

__all__ = ["WFIT", "resolve_workers"]

#: Environment knob for the default per-part worker-pool size. ``workers``
#: passed to :class:`WFIT` (or :class:`~repro.service.engine.TuningEngine`)
#: wins over the environment; unset/empty means serial (1).
_WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit value, else ``REPRO_WORKERS``,
    else 1 (the bit-identical serial mode)."""
    if workers is None:
        raw = os.environ.get(_WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{_WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


class WFIT:
    """The semi-automatic index advisor.

    Parameters
    ----------
    optimizer:
        The what-if interface (supplies ``cost`` and, in auto mode, the IBG).
    transitions:
        δ provider (``create_cost`` / ``drop_cost``).
    initial_config:
        ``S0``: indices materialized when tuning starts.
    idx_cnt / state_cnt / hist_size:
        The knobs of Figure 6 — bounds on monitored indices, tracked
        configurations ``Σ 2^|Ck|``, and per-statistic history length.
    rand_cnt:
        Randomized iterations inside ``choosePartition`` (Figure 7).
    fixed_partition:
        When given, candidate maintenance is disabled and recommendations
        are drawn from this stable partition for the whole workload (the
        §6.1 experimental configuration).
    assume_independence:
        The WFIT-IND variant: every candidate is kept in a singleton part
        and interaction statistics are ignored (``doi ≡ 0``).
    seed:
        Seed for the randomized partitioning.
    workers:
        Size of the per-part worker pool for the statement-update fan-out
        (None: ``REPRO_WORKERS``, else 1). Any value yields bit-identical
        results; 1 runs the serial oracle path with zero pool overhead.
        A runtime execution knob, not algorithm state — checkpoints do
        not serialize it.
    """

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        transitions,
        initial_config: AbstractSet[Index] = frozenset(),
        idx_cnt: int = 40,
        state_cnt: int = 500,
        hist_size: int = 100,
        rand_cnt: int = 100,
        fixed_partition: Optional[Sequence[AbstractSet[Index]]] = None,
        assume_independence: bool = False,
        seed: int = 0,
        max_ibg_nodes: int = 4096,
        create_penalty_factor: Optional[float] = None,
        partition_refresh_period: int = 10,
        workers: Optional[int] = None,
    ) -> None:
        self._optimizer = optimizer
        self._transitions = transitions
        self._initial_config = frozenset(initial_config)
        self.idx_cnt = idx_cnt
        self.state_cnt = state_cnt
        self.hist_size = hist_size
        self.rand_cnt = rand_cnt
        self.assume_independence = assume_independence
        self.create_penalty_factor = create_penalty_factor
        if partition_refresh_period < 1:
            raise ValueError("partition_refresh_period must be >= 1")
        self.partition_refresh_period = partition_refresh_period
        self._rng = random.Random(seed)
        self._max_ibg_nodes = max_ibg_nodes
        self._cost_fn = optimizer.cost
        # Partition-parallel fan-out state: the pool is created lazily on
        # the first parallel section (workers == 1 never builds one).
        self._workers = resolve_workers(workers)
        # _pool_lock covers the pool handle and the cumulative fan-out
        # accounting: close() may race the single writer's _relax_all
        # (engine.close() vs a draining pump), and parallel_stats() is a
        # public read path — without the lock it can observe a torn
        # wall/busy pair mid-update.
        self._pool_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None  # guarded-by: _pool_lock
        self._parallel_sections = 0  # guarded-by: _pool_lock
        self._parallel_wall_seconds = 0.0  # guarded-by: _pool_lock
        self._parallel_busy_seconds = 0.0  # guarded-by: _pool_lock

        self._n = 0  # statements analyzed so far
        # DBA-interaction recency: how many feedback calls have been
        # applied, and the statement count at the latest one. The
        # service layer's adoption-lag reporting (and the Figure 11
        # cross-check) read these; they never influence tuning.
        self._feedback_count = 0
        self._last_feedback_position: Optional[int] = None
        self.statistics = IndexStatistics(hist_size)
        self._universe: set = set(self._initial_config)  # U of Figure 6
        self.repartition_count = 0

        if fixed_partition is not None:
            parts = validate_partition(fixed_partition)
            candidates = frozenset().union(*parts) if parts else frozenset()
            stray = self._initial_config - candidates
            if stray:
                raise ValueError(
                    "initial config outside fixed partition: "
                    f"{sorted(ix.name for ix in stray)}"
                )
            self._auto = False
        else:
            # Figure 4 initialization: C = S0 with singleton parts.
            parts = tuple(
                frozenset({index}) for index in sorted(self._initial_config)
            )
            self._auto = True
        self._parts: List[FrozenSet[Index]] = list(parts)
        self._instances: List[WFA] = [
            WFA(sorted(part), self._initial_config & part, self._cost_fn, transitions)
            for part in self._parts
        ]

    # -- introspection -------------------------------------------------------

    @property
    def candidates(self) -> FrozenSet[Index]:
        """C: the union of all monitored parts."""
        if not self._parts:
            return frozenset()
        return frozenset().union(*self._parts)

    @property
    def partition(self) -> Tuple[FrozenSet[Index], ...]:
        return tuple(self._parts)

    @property
    def universe(self) -> FrozenSet[Index]:
        """U: every index ever seen (monitored or not)."""
        return frozenset(self._universe)

    @property
    def statements_analyzed(self) -> int:
        return self._n

    @property
    def feedback_count(self) -> int:
        """How many feedback (vote) calls have been applied."""
        return self._feedback_count

    @property
    def last_feedback_position(self) -> Optional[int]:
        """Statements analyzed when feedback last arrived (None: never)."""
        return self._last_feedback_position

    @property
    def feedback_lag(self) -> Optional[int]:
        """Statements analyzed since the last feedback (None: never any)."""
        if self._last_feedback_position is None:
            return None
        return self._n - self._last_feedback_position

    @property
    def tracked_states(self) -> int:
        return sum(instance.state_count for instance in self._instances)

    @property
    def kernel_backend(self) -> str:
        """The work-function kernel backend(s) the parts run on (mixed
        partitions report e.g. ``"numpy+python"``)."""
        from .wfa_kernel import combined_backend

        return combined_backend(self._instances)

    @property
    def workers(self) -> int:
        """Worker-pool size for the per-part statement-update fan-out."""
        return self._workers

    def parallel_stats(self) -> Dict[str, float]:
        """Cumulative fan-out accounting since construction.

        ``parallel_efficiency`` is busy-time over ``wall × workers`` across
        all parallel sections — 1.0 means every worker was saturated for
        the whole section, 1/workers means the fan-out bought nothing over
        serial (e.g. the pure-Python kernel backend, which holds the GIL).
        All zero until the first parallel section (``workers == 1`` never
        has one).
        """
        with self._pool_lock:
            wall = self._parallel_wall_seconds
            busy = self._parallel_busy_seconds
            sections = self._parallel_sections
        efficiency = busy / (wall * self._workers) if wall > 0.0 else 0.0
        return {
            "workers": self._workers,
            "parallel_sections": sections,
            "parallel_wall_seconds": wall,
            "parallel_busy_seconds": busy,
            "parallel_efficiency": efficiency,
        }

    def close(self) -> None:
        """Shut down the fan-out worker pool (idempotent).

        Only releases execution resources; the tuner remains fully usable
        afterwards — the next parallel section simply rebuilds the pool.
        """
        with self._pool_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            # Shut down outside the lock: queued slice tasks can take
            # arbitrarily long and must not block parallel_stats() readers.
            pool.shutdown(wait=True)

    def recommend(self) -> FrozenSet[Index]:
        """``WFIT.recommend()``: the current recommendation ⋃_k currRec_k."""
        out: set = set()
        for instance in self._instances:
            out.update(instance.recommend())
        return frozenset(out)

    # -- statistics maintenance (updateStats of Figure 6) ------------------------

    def _update_statistics(self, statement: object, ibg: IndexBenefitGraph) -> FrozenSet[Index]:
        """Record β and doi for indices relevant to this statement."""
        relevant = frozenset(extract_indices(statement)) | ibg.all_used_indices()
        relevant &= ibg.candidates
        for index in sorted(relevant):
            beta = max_benefit(ibg, index)
            self.statistics.record_benefit(index, self._n, beta)
        if not self.assume_independence:
            ordered = sorted(relevant)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    if a.table != b.table:
                        continue  # cross-table doi is 0 in this cost model
                    doi = degree_of_interaction(ibg, a, b)
                    self.statistics.record_interaction(a, b, self._n, doi)
        return relevant

    # -- chooseCands (Figure 6) ---------------------------------------------------

    def _choose_candidates(self, statement: object) -> List[FrozenSet[Index]]:
        self._universe.update(extract_indices(statement))
        # Via the optimizer's per-statement IBG cache, so the WFA instances'
        # bulk costing reuses the same graph instead of re-optimizing.
        ibg = self._optimizer.statement_ibg(
            statement, frozenset(self._universe),
            max_nodes=self._max_ibg_nodes,
        )
        self._update_statistics(statement, ibg)

        materialized = set(self.recommend())
        pool = frozenset(self._universe) - materialized
        chosen = top_indices(
            pool,
            self.idx_cnt - len(materialized),
            self.candidates,
            self.statistics,
            self._n,
            self._transitions,
            create_penalty_factor=self.create_penalty_factor,
        )
        monitored = frozenset(materialized | set(chosen))

        if self.assume_independence:
            return [frozenset({index}) for index in sorted(monitored)]
        # The full randomized partition search runs when the monitored set
        # changed or every partition_refresh_period statements; in between,
        # the current grouping (restricted/extended to the monitored set) is
        # kept. This bounds choosePartition's overhead without changing the
        # configuration space WFIT draws from.
        refresh = (
            monitored != self.candidates
            or self._n % self.partition_refresh_period == 0
        )
        if not refresh:
            return list(self._parts)
        doi = self.statistics.doi_lookup(self._n)
        return choose_partition(
            monitored,
            self.state_cnt,
            self._parts,
            doi,
            self._rng,
            rand_cnt=self.rand_cnt,
        )

    # -- repartition (Figure 5) ------------------------------------------------------

    def _repartition(self, new_parts: Sequence[FrozenSet[Index]]) -> None:
        """Adopt a new stable partition, preserving work-function evidence."""
        materialized = self.recommend()
        new_candidates = (
            frozenset().union(*new_parts) if new_parts else frozenset()
        )
        uncovered = materialized - new_candidates
        if uncovered:
            raise ValueError(
                "new partition must cover materialized indices; missing "
                f"{sorted(ix.name for ix in uncovered)}"
            )
        old_candidates = self.candidates
        old_values: List[Dict[FrozenSet[Index], float]] = [
            instance.work_function() for instance in self._instances
        ]
        old_parts = list(self._parts)
        current_rec = materialized

        new_instances: List[WFA] = []
        for part in new_parts:
            ordered = sorted(part)
            values: Dict[FrozenSet[Index], float] = {}
            size = 1 << len(ordered)
            for mask in range(size):
                subset = frozenset(
                    ix for i, ix in enumerate(ordered) if mask & (1 << i)
                )
                total = 0.0
                for old_part, old_value in zip(old_parts, old_values):
                    if old_part & part:
                        total += old_value[subset & old_part]
                # Line 7 of Figure 5: account for creating indices that were
                # never monitored before (relative to the original S0).
                total += delta_cost(
                    self._transitions,
                    (self._initial_config & part) - old_candidates,
                    subset - old_candidates,
                )
                values[subset] = total
            new_instances.append(WFA(
                ordered,
                self._initial_config & part,
                self._cost_fn,
                self._transitions,
                work_values=values,
                recommendation=part & current_rec,
            ))
        self._parts = list(new_parts)
        self._instances = new_instances
        self.repartition_count += 1
        if obs.state.enabled:
            _wfit_counters()[1].inc()

    # -- the public interface (Figure 4) ------------------------------------------------

    def analyze_statement(self, statement: object) -> FrozenSet[Index]:
        """``WFIT.analyzeQuery(q)``: maintain candidates, then run WFA⁺.

        The per-part work-function updates run in two phases: the
        shared-cache cost fetch serially in fixed part order, then the
        per-part kernel relaxations — serially with ``workers == 1`` (the
        deterministic oracle), else fanned out to the worker pool.
        Recommendations merge in fixed part order either way, and the two
        paths are bit-identical (per-part state is disjoint under the §4
        stability condition).
        """
        self._n += 1
        with obs.span("wfit.analyze"):
            if self._auto:
                with obs.span("wfit.choose_candidates"):
                    new_parts = self._choose_candidates(statement)
                if sorted(map(sorted, new_parts)) != sorted(map(sorted, self._parts)):
                    self._repartition(new_parts)
            with obs.span("wfit.prepare"):
                for instance in self._instances:
                    instance.prepare_statement(statement)
            with obs.span("wfit.relax"):
                self._relax_all()
        if obs.state.enabled:
            _wfit_counters()[0].inc()
        return self.recommend()

    def _relax_all(self) -> None:
        """Run every part's kernel relaxation, fanned out when configured.

        Parts are dealt round-robin across ``workers`` slices (part ``i``
        to slice ``i mod workers``), one pool task per slice; each task
        relaxes its parts in ascending part order. The deal is purely an
        execution schedule — parts are state-disjoint, so any schedule
        yields the serial path's exact result. Worker exceptions propagate
        to the caller after all slices finish.
        """
        instances = self._instances
        if self._workers <= 1 or len(instances) <= 1:
            for instance in instances:
                instance.relax()
            return
        with self._pool_lock:
            pool = self._pool
            if pool is None:
                pool = self._pool = ThreadPoolExecutor(
                    max_workers=self._workers, thread_name_prefix="wfit-part"
                )
        slices = [
            instances[slot :: self._workers] for slot in range(self._workers)
        ]
        slices = [chunk for chunk in slices if chunk]
        busy = [0.0] * len(slices)

        def _run(slot: int, chunk: List[WFA]) -> None:
            started = _perf_counter()
            try:
                # Root span on the worker thread: shows up as its own tid
                # lane in the Chrome trace, aligned with the ingest
                # thread's wfit.relax span.
                with obs.span("wfit.relax_slice"):
                    for instance in chunk:
                        instance.relax()
            finally:
                busy[slot] = _perf_counter() - started

        wall_start = _perf_counter()
        futures = [
            pool.submit(_run, slot, chunk) for slot, chunk in enumerate(slices)
        ]
        error: Optional[BaseException] = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        elapsed_wall = _perf_counter() - wall_start
        with self._pool_lock:
            self._parallel_sections += 1
            self._parallel_wall_seconds += elapsed_wall
            self._parallel_busy_seconds += sum(busy)
        if error is not None:
            raise error

    def feedback(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """``WFIT.feedback(F+, F−)``: apply DBA votes (Figure 4).

        Votes on indices outside the monitored set C cannot be represented
        in any part's configuration space; positive such votes are added to
        the universe U so the index can enter C at the next repartition.
        """
        plus = frozenset(f_plus)
        minus = frozenset(f_minus)
        if plus & minus:
            raise ValueError("F+ and F- must be disjoint")
        self._universe.update(plus)
        for instance in self._instances:
            instance.apply_feedback(plus, minus)
        self._feedback_count += 1
        self._last_feedback_position = self._n
        return self.recommend()

    def notify_materialized(self, created: AbstractSet[Index], dropped: AbstractSet[Index]) -> FrozenSet[Index]:
        """Implicit feedback: the DBA changed the physical configuration
        out-of-band (§3.1). Creates count as positive votes, drops negative."""
        return self.feedback(created, dropped)

    # -- checkpoint hooks ----------------------------------------------------

    #: Format version of :meth:`export_state` documents.
    STATE_VERSION = 1

    def export_state(self) -> Dict[str, object]:
        """The tuner's full mutable state as a JSON-ready document.

        Captures everything a peer needs to continue step-identically:
        the partition and per-part work-function values, candidate
        benefit/interaction statistics, the universe U, the randomized
        partitioner's RNG state, and the construction knobs. Restore with
        :meth:`restore_state` against an equivalent optimizer/δ provider.
        ``workers`` is deliberately *not* serialized: it is an execution
        knob with no effect on results, so a snapshot taken at any worker
        count restores onto any other (the restoring host picks its own
        pool size).
        """
        rng_version, rng_internal, rng_gauss = self._rng.getstate()
        return {
            "version": self.STATE_VERSION,
            "auto": self._auto,
            "statements_analyzed": self._n,
            "repartition_count": self.repartition_count,
            "feedback_count": self._feedback_count,
            "last_feedback_position": self._last_feedback_position,
            "options": {
                "idx_cnt": self.idx_cnt,
                "state_cnt": self.state_cnt,
                "hist_size": self.hist_size,
                "rand_cnt": self.rand_cnt,
                "assume_independence": self.assume_independence,
                "create_penalty_factor": self.create_penalty_factor,
                "partition_refresh_period": self.partition_refresh_period,
                "max_ibg_nodes": self._max_ibg_nodes,
            },
            "initial_config": [
                ix.to_payload() for ix in sorted(self._initial_config)
            ],
            "universe": [ix.to_payload() for ix in sorted(self._universe)],
            "rng_state": [rng_version, list(rng_internal), rng_gauss],
            "statistics": self.statistics.export_state(),
            "parts": [
                {
                    "indices": [ix.to_payload() for ix in sorted(part)],
                    "state": instance.export_state(),
                }
                for part, instance in zip(self._parts, self._instances)
            ],
        }

    @classmethod
    def restore_state(
        cls, optimizer: WhatIfOptimizer, transitions, state: Dict[str, object]
    ) -> "WFIT":
        """Rebuild a tuner from an :meth:`export_state` document.

        The optimizer and δ provider must be equivalent to the originals
        (same cost model and statistics): costs are deterministic functions
        of ``(statement, configuration)``, so an equivalent substrate plus
        this state yields step-identical recommendations.
        """
        version = state.get("version")
        if version != cls.STATE_VERSION:
            raise ValueError(
                f"unsupported WFIT state version {version!r} "
                f"(expected {cls.STATE_VERSION})"
            )
        options = state["options"]
        initial = frozenset(
            Index.from_payload(p) for p in state["initial_config"]
        )
        parts = [
            frozenset(Index.from_payload(p) for p in item["indices"])
            for item in state["parts"]
        ]
        auto = bool(state["auto"])
        tuner = cls(
            optimizer,
            transitions,
            initial_config=initial,
            idx_cnt=int(options["idx_cnt"]),
            state_cnt=int(options["state_cnt"]),
            hist_size=int(options["hist_size"]),
            rand_cnt=int(options["rand_cnt"]),
            fixed_partition=None if auto else parts,
            assume_independence=bool(options["assume_independence"]),
            max_ibg_nodes=int(options["max_ibg_nodes"]),
            create_penalty_factor=options["create_penalty_factor"],
            partition_refresh_period=int(options["partition_refresh_period"]),
        )
        tuner._auto = auto
        tuner._n = int(state["statements_analyzed"])
        tuner.repartition_count = int(state["repartition_count"])
        # Optional in pre-scheduler documents (STATE_VERSION unchanged:
        # purely additive, reporting-only fields).
        tuner._feedback_count = int(state.get("feedback_count", 0))
        last_feedback = state.get("last_feedback_position")
        tuner._last_feedback_position = (
            None if last_feedback is None else int(last_feedback)
        )
        tuner._universe = {
            Index.from_payload(p) for p in state["universe"]
        }
        tuner.statistics = IndexStatistics.from_state(state["statistics"])
        rng_version, rng_internal, rng_gauss = state["rng_state"]
        tuner._rng.setstate(
            (int(rng_version), tuple(int(v) for v in rng_internal), rng_gauss)
        )
        tuner._parts = list(parts)
        tuner._instances = []
        for part, item in zip(parts, state["parts"]):
            instance = WFA(
                sorted(part), initial & part, tuner._cost_fn, transitions
            )
            instance.load_state(item["state"])
            tuner._instances.append(instance)
        return tuner
