"""Database substrate: schemas, statistics, indices, and transition costs.

This package replaces the role IBM DB2 plays in the paper's prototype: it
provides the catalog the what-if optimizer prices plans against, the index
model that WFIT reasons about, and the asymmetric create/drop cost function δ.
"""

from .datagen import DATASET_NAMES, build_catalog, build_dataset, build_toy_catalog
from .index import Index, IndexSizer
from .schema import Catalog, Column, ColumnType, Database, SchemaError, Table
from .stats import PAGE_SIZE, ColumnStats, StatsRepository, TableStats
from .transitions import StatsTransitionCosts

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "ColumnStats",
    "DATASET_NAMES",
    "Database",
    "Index",
    "IndexSizer",
    "PAGE_SIZE",
    "SchemaError",
    "StatsRepository",
    "StatsTransitionCosts",
    "Table",
    "TableStats",
    "build_catalog",
    "build_dataset",
    "build_toy_catalog",
]
