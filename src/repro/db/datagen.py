"""Synthetic catalogs for the paper's four benchmark datasets.

The online-tuning benchmark of Schnaitter & Polyzotis [15] hosts TPC-C,
TPC-H, TPC-E and the real-life NREF protein dataset in one system (2.9 GB of
base data in the paper). Since the evaluation is driven entirely by the
optimizer's cost model, we reproduce the datasets as *statistics-only*
catalogs: table schemas, row counts, and per-column distributions at a
configurable scale.

Dates are encoded as "days since 1970-01-01" floats so range predicates on
them go through the ordinary numeric selectivity path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .schema import Catalog, Column, ColumnType, Database, Table
from .stats import ColumnStats, StatsRepository, TableStats

__all__ = [
    "build_catalog",
    "build_dataset",
    "build_toy_catalog",
    "DATASET_NAMES",
]

DATASET_NAMES = ("tpcc", "tpch", "tpce", "nref")

# A column spec is (name, type, n_distinct, lo, hi). n_distinct may be given
# as a float in (0, 1], meaning "fraction of the table's row count".
_ColumnSpec = Tuple[str, ColumnType, float, float, float]
# A table spec is (name, base_row_count, [column specs]).
_TableSpec = Tuple[str, int, Sequence[_ColumnSpec]]

_DAY = 1.0
_YEAR = 365.0


def _days(year: int) -> float:
    """Days since 1970 for Jan 1 of ``year`` (uniform-calendar shortcut)."""
    return (year - 1970) * _YEAR


_I = ColumnType.INT
_B = ColumnType.BIGINT
_F = ColumnType.FLOAT
_D = ColumnType.DATE
_C = ColumnType.CHAR
_T = ColumnType.TEXT

# ---------------------------------------------------------------------------
# Dataset specifications.
#
# Row counts are the scale-1.0 values; build_dataset multiplies them by the
# scale factor (min 10 rows). Distinct counts given as fractions scale along.
# ---------------------------------------------------------------------------

_TPCC_TABLES: Sequence[_TableSpec] = (
    ("warehouse", 100, (
        ("w_id", _I, 1.0, 1, 100),
        ("w_tax", _F, 0.2, 0.0, 0.2),
        ("w_ytd", _F, 1.0, 0.0, 3.0e5),
    )),
    ("district", 1000, (
        ("d_id", _I, 10, 1, 10),
        ("d_w_id", _I, 100, 1, 100),
        ("d_tax", _F, 0.2, 0.0, 0.2),
        ("d_next_o_id", _I, 1.0, 1, 1.0e4),
    )),
    ("customer", 300_000, (
        ("c_id", _I, 3000, 1, 3000),
        ("c_d_id", _I, 10, 1, 10),
        ("c_w_id", _I, 100, 1, 100),
        ("c_last", _C, 1000, 0, 1000),
        ("c_balance", _F, 0.5, -1.0e4, 1.0e5),
        ("c_discount", _F, 0.1, 0.0, 0.5),
        ("c_credit_lim", _F, 0.05, 0.0, 5.0e4),
        ("c_since", _D, 0.2, _days(1992), _days(2006)),
    )),
    ("history", 300_000, (
        ("h_c_id", _I, 3000, 1, 3000),
        ("h_date", _D, 0.3, _days(1992), _days(2006)),
        ("h_amount", _F, 0.2, 1.0, 5000.0),
    )),
    ("orders", 300_000, (
        ("o_id", _I, 1.0, 1, 3.0e5),
        ("o_c_id", _I, 3000, 1, 3000),
        ("o_d_id", _I, 10, 1, 10),
        ("o_w_id", _I, 100, 1, 100),
        ("o_entry_d", _D, 0.3, _days(1992), _days(2006)),
        ("o_carrier_id", _I, 10, 1, 10),
        ("o_ol_cnt", _I, 11, 5, 15),
    )),
    ("new_order", 90_000, (
        ("no_o_id", _I, 1.0, 1, 3.0e5),
        ("no_d_id", _I, 10, 1, 10),
        ("no_w_id", _I, 100, 1, 100),
    )),
    ("order_line", 3_000_000, (
        ("ol_o_id", _I, 0.1, 1, 3.0e5),
        ("ol_d_id", _I, 10, 1, 10),
        ("ol_w_id", _I, 100, 1, 100),
        ("ol_number", _I, 15, 1, 15),
        ("ol_i_id", _I, 100_000, 1, 1.0e5),
        ("ol_quantity", _I, 10, 1, 10),
        ("ol_amount", _F, 0.3, 0.0, 1.0e4),
        ("ol_delivery_d", _D, 0.2, _days(1992), _days(2006)),
    )),
    ("item", 100_000, (
        ("i_id", _I, 1.0, 1, 1.0e5),
        ("i_im_id", _I, 10_000, 1, 1.0e4),
        ("i_price", _F, 0.1, 1.0, 100.0),
    )),
    ("stock", 1_000_000, (
        ("s_i_id", _I, 100_000, 1, 1.0e5),
        ("s_w_id", _I, 100, 1, 100),
        ("s_quantity", _I, 91, 10, 100),
        ("s_ytd", _F, 0.3, 0.0, 1.0e4),
        ("s_order_cnt", _I, 0.01, 0, 1.0e4),
    )),
)

_TPCH_TABLES: Sequence[_TableSpec] = (
    ("region", 10, (
        ("r_regionkey", _I, 1.0, 0, 4),
    )),
    ("nation", 25, (
        ("n_nationkey", _I, 1.0, 0, 24),
        ("n_regionkey", _I, 5, 0, 4),
    )),
    ("supplier", 10_000, (
        ("s_suppkey", _I, 1.0, 1, 1.0e4),
        ("s_nationkey", _I, 25, 0, 24),
        ("s_acctbal", _F, 0.5, -1000.0, 1.0e4),
    )),
    ("customer", 150_000, (
        ("c_custkey", _I, 1.0, 1, 1.5e5),
        ("c_nationkey", _I, 25, 0, 24),
        ("c_acctbal", _F, 0.5, -1000.0, 1.0e4),
        ("c_mktsegment", _C, 5, 0, 5),
    )),
    ("part", 200_000, (
        ("p_partkey", _I, 1.0, 1, 2.0e5),
        ("p_size", _I, 50, 1, 50),
        ("p_retailprice", _F, 0.2, 900.0, 2100.0),
        ("p_brand", _C, 25, 0, 25),
    )),
    ("partsupp", 800_000, (
        ("ps_partkey", _I, 0.25, 1, 2.0e5),
        ("ps_suppkey", _I, 0.0125, 1, 1.0e4),
        ("ps_availqty", _I, 9999, 1, 9999),
        ("ps_supplycost", _F, 0.1, 1.0, 1000.0),
    )),
    ("orders", 1_500_000, (
        ("o_orderkey", _I, 1.0, 1, 6.0e6),
        ("o_custkey", _I, 0.066, 1, 1.5e5),
        ("o_orderdate", _D, 2406, _days(1992), _days(1998) + 214 * _DAY),
        ("o_totalprice", _F, 0.6, 850.0, 5.6e5),
        ("o_orderstatus", _C, 3, 0, 3),
    )),
    ("lineitem", 6_000_000, (
        ("l_orderkey", _I, 0.25, 1, 6.0e6),
        ("l_partkey", _I, 0.033, 1, 2.0e5),
        ("l_suppkey", _I, 0.00166, 1, 1.0e4),
        ("l_linenumber", _I, 7, 1, 7),
        ("l_quantity", _F, 50, 1.0, 50.0),
        ("l_extendedprice", _F, 0.5, 900.0, 105_000.0),
        ("l_discount", _F, 11, 0.0, 0.1),
        ("l_tax", _F, 9, 0.0, 0.08),
        ("l_shipdate", _D, 2526, _days(1992), _days(1998) + 334 * _DAY),
        ("l_commitdate", _D, 2466, _days(1992), _days(1998) + 304 * _DAY),
        ("l_receiptdate", _D, 2555, _days(1992), _days(1999)),
    )),
)

_TPCE_TABLES: Sequence[_TableSpec] = (
    ("company", 5000, (
        ("co_id", _B, 1.0, 1, 5000),
        ("co_open_date", _D, 0.9, _days(1800), _days(2000)),
        ("co_rate", _F, 0.2, 0.0, 10.0),
    )),
    ("security", 6850, (
        ("s_symb", _C, 1.0, 1, 6850),
        ("s_co_id", _B, 0.73, 1, 5000),
        ("s_pe", _F, 0.8, 0.0, 120.0),
        ("s_exch_date", _D, 0.9, _days(1990), _days(2007)),
        ("s_num_out", _B, 0.9, 1.0e6, 9.5e9),
        ("s_yield", _F, 0.3, 0.0, 12.0),
    )),
    ("daily_market", 4_469_625, (
        ("dm_s_symb", _C, 0.00153, 1, 6850),
        ("dm_date", _D, 0.000146, _days(2000), _days(2005)),
        ("dm_close", _F, 0.2, 0.1, 1000.0),
        ("dm_high", _F, 0.2, 0.1, 1100.0),
        ("dm_low", _F, 0.2, 0.05, 1000.0),
        ("dm_vol", _B, 0.5, 1000, 1.0e7),
    )),
    ("trade", 1_728_000, (
        ("t_id", _B, 1.0, 1, 1.728e6),
        ("t_s_symb", _C, 0.004, 1, 6850),
        ("t_dts", _D, 0.5, _days(2004), _days(2006)),
        ("t_qty", _I, 800, 100, 800),
        ("t_trade_price", _F, 0.3, 0.1, 1000.0),
        ("t_ca_id", _B, 0.05, 1, 8.64e4),
    )),
    ("holding", 864_000, (
        ("h_t_id", _B, 1.0, 1, 1.728e6),
        ("h_ca_id", _B, 0.1, 1, 8.64e4),
        ("h_s_symb", _C, 0.0079, 1, 6850),
        ("h_qty", _I, 800, 100, 800),
        ("h_price", _F, 0.3, 0.1, 1000.0),
    )),
)

_NREF_TABLES: Sequence[_TableSpec] = (
    ("protein", 1_000_000, (
        ("protein_id", _B, 1.0, 1, 1.0e6),
        ("length", _I, 0.005, 10, 36_000),
        ("mol_weight", _F, 0.5, 1000.0, 4.0e6),
        ("created_date", _D, 0.003, _days(1988), _days(2006)),
        ("taxon_id", _I, 0.08, 1, 4.0e5),
    )),
    ("neighboring_seq", 2_000_000, (
        ("protein_id", _B, 0.4, 1, 1.0e6),
        ("neighbor_id", _B, 0.4, 1, 1.0e6),
        ("distance", _F, 0.2, 0.0, 1.0),
    )),
    ("source", 500_000, (
        ("source_id", _I, 1.0, 1, 5.0e5),
        ("protein_id", _B, 0.9, 1, 1.0e6),
        ("organism_id", _I, 0.1, 1, 4.0e5),
    )),
    ("taxonomy", 400_000, (
        ("taxon_id", _I, 1.0, 1, 4.0e5),
        ("parent_id", _I, 0.2, 1, 4.0e5),
        ("rank", _C, 30, 0, 30),
    )),
)

_DATASETS: Dict[str, Sequence[_TableSpec]] = {
    "tpcc": _TPCC_TABLES,
    "tpch": _TPCH_TABLES,
    "tpce": _TPCE_TABLES,
    "nref": _NREF_TABLES,
}


def _resolve_distinct(spec_value: float, row_count: int) -> int:
    """Interpret a distinct-count spec: fraction of rows if in (0, 1]."""
    if 0.0 < spec_value <= 1.0:
        return max(1, int(round(spec_value * row_count)))
    return max(1, min(int(spec_value), row_count))


def build_dataset(name: str, scale: float = 1.0) -> Tuple[Database, List[TableStats]]:
    """Build one dataset's schema and statistics at the given scale."""
    try:
        specs = _DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    database = Database(name)
    all_stats: List[TableStats] = []
    for table_name, base_rows, column_specs in specs:
        row_count = max(10, int(base_rows * scale))
        columns = [Column(cname, ctype) for cname, ctype, _, _, _ in column_specs]
        table = Table(f"{name}.{table_name}", columns)
        database.add_table(table)
        column_stats = {
            cname: ColumnStats(
                n_distinct=_resolve_distinct(ndv, row_count),
                min_value=float(lo),
                max_value=float(hi),
            )
            for cname, _, ndv, lo, hi in column_specs
        }
        all_stats.append(TableStats(table, row_count, column_stats))
    return database, all_stats


def build_catalog(
    scale: float = 1.0,
    datasets: Iterable[str] = DATASET_NAMES,
) -> Tuple[Catalog, StatsRepository]:
    """Build the multi-database benchmark catalog with its statistics.

    Parameters
    ----------
    scale:
        Row-count multiplier applied to every table (1.0 reproduces the
        paper's ~2.9 GB system; smaller scales change absolute costs but not
        the qualitative behaviour of the tuning algorithms).
    datasets:
        Which of the four benchmark datasets to include.
    """
    catalog = Catalog()
    repo_stats: List[TableStats] = []
    for name in datasets:
        database, table_stats = build_dataset(name, scale)
        catalog.add_database(database)
        repo_stats.extend(table_stats)
    repository = StatsRepository(catalog)
    for stats in repo_stats:
        repository.add_table_stats(stats)
    return catalog, repository


def build_toy_catalog(rows: int = 100_000) -> Tuple[Catalog, StatsRepository]:
    """A two-table single-database catalog for examples and tests."""
    sales = Table("shop.sales", [
        Column("sale_id", ColumnType.INT),
        Column("customer_id", ColumnType.INT),
        Column("product_id", ColumnType.INT),
        Column("amount", ColumnType.FLOAT),
        Column("sale_date", ColumnType.DATE),
    ])
    customers = Table("shop.customers", [
        Column("customer_id", ColumnType.INT),
        Column("region", ColumnType.CHAR),
        Column("signup_date", ColumnType.DATE),
        Column("lifetime_value", ColumnType.FLOAT),
    ])
    database = Database("shop", [sales, customers])
    catalog = Catalog([database])
    repository = StatsRepository(catalog)
    repository.add_table_stats(TableStats(sales, rows, {
        "sale_id": ColumnStats(n_distinct=rows, min_value=1, max_value=rows),
        "customer_id": ColumnStats(n_distinct=max(1, rows // 20), min_value=1, max_value=rows // 20 or 1),
        "product_id": ColumnStats(n_distinct=1000, min_value=1, max_value=1000),
        "amount": ColumnStats(n_distinct=max(1, rows // 10), min_value=0.0, max_value=10_000.0),
        "sale_date": ColumnStats(n_distinct=3650, min_value=_days(2015), max_value=_days(2025)),
    }))
    repository.add_table_stats(TableStats(customers, max(10, rows // 20), {
        "customer_id": ColumnStats(n_distinct=max(1, rows // 20), min_value=1, max_value=rows // 20 or 1),
        "region": ColumnStats(n_distinct=50, min_value=0, max_value=50),
        "signup_date": ColumnStats(n_distinct=3650, min_value=_days(2010), max_value=_days(2025)),
        "lifetime_value": ColumnStats(n_distinct=max(1, rows // 40), min_value=0.0, max_value=1.0e6),
    }))
    return catalog, repository
