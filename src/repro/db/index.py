"""Secondary index model: definitions and physical size estimates.

An :class:`Index` is the atomic unit that WFA/WFIT reason about; it is a
hashable value object so it can live in frozensets (configurations) and in
dictionary keys. Physical sizing (:class:`IndexSizer`) feeds both the access
path cost model and the create/drop transition costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from .stats import PAGE_SIZE, StatsRepository

__all__ = ["Index", "IndexSizer", "RID_WIDTH"]

#: Bytes per row identifier stored in index leaf entries.
RID_WIDTH = 8


@dataclass(frozen=True, order=True)
class Index:
    """A secondary B-tree index over ``columns`` of ``table``.

    The natural ordering (``order=True``) gives a deterministic global order
    used for tie-breaking in WFA (Appendix B of the paper) and for stable
    display output.
    """

    table: str
    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.table.count(".") != 1:
            raise ValueError(f"index table must be qualified: {self.table!r}")
        if not self.columns:
            raise ValueError("index must have at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate columns in index: {self.columns!r}")

    @property
    def name(self) -> str:
        """Human-readable identifier, e.g. ``ix_lineitem_l_shipdate``."""
        table_part = self.table.split(".", 1)[1]
        return "ix_" + table_part + "_" + "_".join(self.columns)

    @property
    def leading_column(self) -> str:
        return self.columns[0]

    def covers(self, needed: Tuple[str, ...]) -> bool:
        """Whether every column in ``needed`` is stored in the index key."""
        key = set(self.columns)
        return all(col in key for col in needed)

    # -- checkpoint payloads ------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready representation, for checkpoint documents."""
        return {"table": self.table, "columns": list(self.columns)}

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Index":
        return cls(
            table=str(payload["table"]),
            columns=tuple(str(c) for c in payload["columns"]),
        )

    def __str__(self) -> str:
        return f"{self.table}({', '.join(self.columns)})"


class IndexSizer:
    """Physical size/shape estimates for indices, from catalog statistics."""

    #: Typical B-tree fill factor for freshly built indexes.
    FILL_FACTOR = 0.9

    def __init__(self, stats: StatsRepository) -> None:
        self._stats = stats

    def entry_width(self, index: Index) -> int:
        """Bytes per leaf entry: key columns plus a row identifier."""
        table = self._stats.catalog.table(index.table)
        key_width = sum(table.column(c).byte_width for c in index.columns)
        return key_width + RID_WIDTH

    def entries_per_page(self, index: Index) -> int:
        usable = int(PAGE_SIZE * self.FILL_FACTOR)
        return max(1, usable // self.entry_width(index))

    def leaf_pages(self, index: Index) -> int:
        rows = self._stats.row_count(index.table)
        return max(1, -(-rows // self.entries_per_page(index)))

    def height(self, index: Index) -> int:
        """Levels above the leaves (root counts as one level)."""
        fanout = max(2, self.entries_per_page(index))
        leaves = self.leaf_pages(index)
        if leaves <= 1:
            return 1
        return max(1, math.ceil(math.log(leaves, fanout)))

    def size_pages(self, index: Index) -> int:
        """Total pages including the (geometrically small) inner levels."""
        leaves = self.leaf_pages(index)
        fanout = max(2, self.entries_per_page(index))
        inner = 0
        level = leaves
        while level > 1:
            level = -(-level // fanout)
            inner += level
        return leaves + inner
