"""Relational schema objects: columns, tables, databases, and the catalog.

The reproduction is *statistics-driven*: no base data is ever materialized.
A :class:`Catalog` holds one or more :class:`Database` objects (the paper's
benchmark hosts TPC-C, TPC-H, TPC-E and NREF side by side), and each table
carries enough metadata for the cost model in :mod:`repro.optimizer` to price
plans the way a what-if optimizer would.

Tables are identified by *qualified names* of the form ``"dataset.table"``
(e.g. ``"tpch.lineitem"``), matching the SQL dialect used by the paper's
workload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "ColumnType",
    "Column",
    "Table",
    "Database",
    "Catalog",
    "SchemaError",
]


class SchemaError(Exception):
    """Raised for malformed schemas or unresolved schema references."""


class ColumnType(enum.Enum):
    """Logical column types with a default storage width in bytes.

    The width feeds row-size and index-entry-size estimates; the exact values
    only need to be plausible, not byte-accurate.
    """

    INT = ("int", 4)
    BIGINT = ("bigint", 8)
    FLOAT = ("float", 8)
    DECIMAL = ("decimal", 8)
    DATE = ("date", 4)
    TIMESTAMP = ("timestamp", 8)
    CHAR = ("char", 16)
    TEXT = ("text", 32)

    def __init__(self, label: str, width: int) -> None:
        self.label = label
        self.default_width = width

    @property
    def is_numeric(self) -> bool:
        return self in (
            ColumnType.INT,
            ColumnType.BIGINT,
            ColumnType.FLOAT,
            ColumnType.DECIMAL,
        )


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``width`` overrides the type's default storage width (e.g. wide TEXT
    comment fields).
    """

    name: str
    ctype: ColumnType = ColumnType.FLOAT
    width: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")

    @property
    def byte_width(self) -> int:
        """Storage width in bytes used for row/index size estimates."""
        return self.width if self.width is not None else self.ctype.default_width


class Table:
    """A table: an ordered collection of :class:`Column` with a qualified name.

    Parameters
    ----------
    qualified_name:
        ``"dataset.table"`` string; the dataset part names the database.
    columns:
        Ordered column definitions. Order matters for display only.
    """

    def __init__(self, qualified_name: str, columns: Iterable[Column]) -> None:
        if qualified_name.count(".") != 1:
            raise SchemaError(
                f"table name must be qualified as 'dataset.table': {qualified_name!r}"
            )
        self.qualified_name = qualified_name
        self.dataset, self.name = qualified_name.split(".")
        self._columns: Dict[str, Column] = {}
        self._ordered: List[Column] = []
        for col in columns:
            if col.name in self._columns:
                raise SchemaError(
                    f"duplicate column {col.name!r} in table {qualified_name!r}"
                )
            self._columns[col.name] = col
            self._ordered.append(col)
        if not self._ordered:
            raise SchemaError(f"table {qualified_name!r} has no columns")

    @property
    def columns(self) -> Tuple[Column, ...]:
        return tuple(self._ordered)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self._ordered)

    def column(self, name: str) -> Column:
        """Return the column called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in table {self.qualified_name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    @property
    def row_width(self) -> int:
        """Estimated row width in bytes (sum of column widths + header)."""
        header = 24  # tuple header, mirrors typical slotted-page overhead
        return header + sum(c.byte_width for c in self._ordered)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.qualified_name!r}, {len(self._ordered)} columns)"


class Database:
    """A named database: a collection of tables belonging to one dataset."""

    def __init__(self, name: str, tables: Iterable[Table] = ()) -> None:
        if not name.isidentifier():
            raise SchemaError(f"invalid database name: {name!r}")
        self.name = name
        self._tables: Dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: Table) -> None:
        if table.dataset != self.name:
            raise SchemaError(
                f"table {table.qualified_name!r} does not belong to database {self.name!r}"
            )
        if table.name in self._tables:
            raise SchemaError(f"duplicate table {table.qualified_name!r}")
        self._tables[table.name] = table

    @property
    def tables(self) -> Tuple[Table, ...]:
        return tuple(self._tables.values())

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r} in database {self.name!r}"
            ) from None

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())


class Catalog:
    """The top-level namespace: all databases hosted by the simulated system.

    The paper's benchmark runs four databases side by side; queries reference
    tables with qualified names, which the catalog resolves.
    """

    def __init__(self, databases: Iterable[Database] = ()) -> None:
        self._databases: Dict[str, Database] = {}
        for db in databases:
            self.add_database(db)

    def add_database(self, db: Database) -> None:
        if db.name in self._databases:
            raise SchemaError(f"duplicate database {db.name!r}")
        self._databases[db.name] = db

    @property
    def databases(self) -> Tuple[Database, ...]:
        return tuple(self._databases.values())

    def database(self, name: str) -> Database:
        try:
            return self._databases[name]
        except KeyError:
            raise SchemaError(f"no database {name!r} in catalog") from None

    def table(self, qualified_name: str) -> Table:
        """Resolve a ``"dataset.table"`` reference."""
        if qualified_name.count(".") != 1:
            raise SchemaError(
                f"expected qualified 'dataset.table' name: {qualified_name!r}"
            )
        dataset, table = qualified_name.split(".")
        return self.database(dataset).table(table)

    def has_table(self, qualified_name: str) -> bool:
        try:
            self.table(qualified_name)
        except SchemaError:
            return False
        return True

    @property
    def tables(self) -> Tuple[Table, ...]:
        out: List[Table] = []
        for db in self._databases.values():
            out.extend(db.tables)
        return tuple(out)
