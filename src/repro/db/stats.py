"""Catalog statistics: row counts, page counts, per-column distributions.

The cost model prices plans purely from these statistics, exactly as the
paper's evaluation does ("the total work metric is evaluated using the
optimizer's cost model", §6.1). Columns are modelled with a uniform
distribution over ``[min_value, max_value]`` plus a distinct count, which is
all the selectivity estimation in :mod:`repro.optimizer.cost_model` needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from .schema import Catalog, SchemaError, Table

__all__ = ["PAGE_SIZE", "ColumnStats", "TableStats", "StatsRepository"]

#: Bytes per disk page. All I/O estimates are in units of page reads.
PAGE_SIZE = 8192


@dataclass(frozen=True)
class ColumnStats:
    """Distribution summary for one column.

    Attributes
    ----------
    n_distinct:
        Number of distinct values (``>= 1``).
    min_value / max_value:
        Domain bounds for numeric/date columns, used for range selectivity
        under the uniform assumption.
    null_frac:
        Fraction of NULLs; those rows never match predicates.
    """

    n_distinct: int
    min_value: float = 0.0
    max_value: float = 1.0
    null_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.n_distinct < 1:
            raise ValueError("n_distinct must be >= 1")
        if self.max_value < self.min_value:
            raise ValueError("max_value must be >= min_value")
        if not 0.0 <= self.null_frac < 1.0:
            raise ValueError("null_frac must be in [0, 1)")

    @property
    def domain_width(self) -> float:
        return self.max_value - self.min_value

    def eq_selectivity(self) -> float:
        """Selectivity of ``col = literal`` (uniform assumption)."""
        return (1.0 - self.null_frac) / self.n_distinct

    def range_selectivity(self, lo: Optional[float], hi: Optional[float]) -> float:
        """Selectivity of ``lo <= col <= hi`` with open bounds allowed.

        ``None`` bounds mean unbounded on that side. The result is clamped to
        ``[1/n_distinct, 1]`` so that a vanishingly narrow range still matches
        roughly one distinct value — the same floor real optimizers apply.
        """
        effective_lo = self.min_value if lo is None else max(lo, self.min_value)
        effective_hi = self.max_value if hi is None else min(hi, self.max_value)
        if effective_hi < effective_lo:
            return 0.0
        if self.domain_width <= 0.0:
            fraction = 1.0
        else:
            fraction = (effective_hi - effective_lo) / self.domain_width
        floor = 1.0 / self.n_distinct
        sel = max(min(fraction, 1.0), floor)
        return sel * (1.0 - self.null_frac)


class TableStats:
    """Row count, derived page count, and per-column stats for one table."""

    def __init__(
        self,
        table: Table,
        row_count: int,
        column_stats: Mapping[str, ColumnStats],
    ) -> None:
        if row_count < 1:
            raise ValueError(f"row_count must be >= 1 for {table.qualified_name}")
        self.table = table
        self.row_count = row_count
        self._column_stats: Dict[str, ColumnStats] = {}
        for name, stats in column_stats.items():
            if not table.has_column(name):
                raise SchemaError(
                    f"stats for unknown column {name!r} of {table.qualified_name!r}"
                )
            self._column_stats[name] = stats

    @property
    def rows_per_page(self) -> int:
        return max(1, PAGE_SIZE // self.table.row_width)

    @property
    def page_count(self) -> int:
        return max(1, -(-self.row_count // self.rows_per_page))  # ceil division

    def column_stats(self, name: str) -> ColumnStats:
        """Stats for ``name``; unknown columns get a conservative default."""
        got = self._column_stats.get(name)
        if got is not None:
            return got
        # Default: moderately selective column over a unit domain. This keeps
        # the model total (every column can appear in a predicate) without
        # requiring exhaustive stats collection.
        return ColumnStats(n_distinct=max(2, self.row_count // 100))

    def has_column_stats(self, name: str) -> bool:
        return name in self._column_stats


class StatsRepository:
    """All statistics for a :class:`~repro.db.schema.Catalog`.

    This is the single source of truth consulted by the cost model, the index
    sizing logic, and the transition-cost model.
    """

    def __init__(self, catalog: Catalog, table_stats: Iterable[TableStats] = ()) -> None:
        self.catalog = catalog
        self._stats: Dict[str, TableStats] = {}
        for stats in table_stats:
            self.add_table_stats(stats)

    def add_table_stats(self, stats: TableStats) -> None:
        name = stats.table.qualified_name
        if name in self._stats:
            raise SchemaError(f"duplicate stats for table {name!r}")
        if not self.catalog.has_table(name):
            raise SchemaError(f"stats for table {name!r} not present in catalog")
        self._stats[name] = stats

    def table_stats(self, qualified_name: str) -> TableStats:
        try:
            return self._stats[qualified_name]
        except KeyError:
            raise SchemaError(
                f"no statistics for table {qualified_name!r}"
            ) from None

    def has_table_stats(self, qualified_name: str) -> bool:
        return qualified_name in self._stats

    def row_count(self, qualified_name: str) -> int:
        return self.table_stats(qualified_name).row_count

    def page_count(self, qualified_name: str) -> int:
        return self.table_stats(qualified_name).page_count

    def column_stats(self, qualified_name: str, column: str) -> ColumnStats:
        return self.table_stats(qualified_name).column_stats(column)
