"""Transition costs δ for changing the materialized index set.

The paper's δ satisfies the triangle inequality but is *not* symmetric:
creating an index (scan + sort + write) is far more expensive than dropping
one (a catalog update). Both properties hold by construction here, since
``δ(X, Y)`` decomposes into independent per-index create/drop costs
(Appendix A of the paper uses exactly this decomposition).
"""

from __future__ import annotations

from typing import AbstractSet, Iterable

from .index import Index, IndexSizer
from .stats import StatsRepository

__all__ = ["StatsTransitionCosts"]


class StatsTransitionCosts:
    """δ⁺ / δ⁻ derived from catalog statistics.

    Create cost models an external-sort build: read the base table, then sort
    and write the leaf pages (with a CPU surcharge per row). Drop cost is a
    small constant — the asymmetry that breaks metricity in the paper.
    """

    #: Cost units per page read while scanning the base table.
    SCAN_COST_PER_PAGE = 1.0
    #: Sort+write multiplier applied to leaf pages.
    BUILD_COST_PER_LEAF_PAGE = 2.5
    #: CPU cost per row fed through the sort, in page-read units.
    CPU_COST_PER_ROW = 0.001
    #: Fixed cost of dropping any index (catalog + lock work).
    DROP_COST = 1.0

    def __init__(self, stats: StatsRepository) -> None:
        self._stats = stats
        self._sizer = IndexSizer(stats)
        self._create_cache: dict = {}

    def create_cost(self, index: Index) -> float:
        """δ⁺(a): cost to materialize ``index``."""
        cached = self._create_cache.get(index)
        if cached is not None:
            return cached
        table_pages = self._stats.page_count(index.table)
        rows = self._stats.row_count(index.table)
        leaf_pages = self._sizer.leaf_pages(index)
        cost = (
            table_pages * self.SCAN_COST_PER_PAGE
            + leaf_pages * self.BUILD_COST_PER_LEAF_PAGE
            + rows * self.CPU_COST_PER_ROW
        )
        self._create_cache[index] = cost
        return cost

    def drop_cost(self, index: Index) -> float:
        """δ⁻(a): cost to drop ``index``."""
        return self.DROP_COST

    def delta(self, old: AbstractSet[Index], new: AbstractSet[Index]) -> float:
        """δ(old, new): cost to change the materialized set from old to new."""
        # Method-level import: the kernel lives in the algorithm layer and
        # importing it at module scope would cycle db -> core -> db.
        from ..core.bitset import delta_cost

        return delta_cost(self, old, new)

    def round_trip(self, indices: Iterable[Index]) -> float:
        """Σ (δ⁺ + δ⁻) over ``indices`` — used by the feedback bound (5.1)."""
        return sum(self.create_cost(a) + self.drop_cost(a) for a in indices)
