# reprolint: zone=deterministic
"""Index Benefit Graph construction and interaction analysis (after [16])."""

from .analysis import (
    degree_of_interaction,
    interaction_pairs,
    interaction_scope,
    max_benefit,
)
from .graph import IBGNode, IndexBenefitGraph, build_ibg

__all__ = [
    "IBGNode",
    "IndexBenefitGraph",
    "build_ibg",
    "degree_of_interaction",
    "interaction_pairs",
    "interaction_scope",
    "max_benefit",
]
