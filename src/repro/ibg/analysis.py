"""Benefit and degree-of-interaction analysis over an IBG (after [16]).

Two quantities drive WFIT's candidate maintenance (§5.2.2):

* ``max_benefit(a)`` — the statement-level benefit statistic β_n recorded in
  ``idxStats``:  ``max_X benefit_q({a}, X)``.
* ``degree_of_interaction(a, b)`` — the doi_q(a, b) statistic recorded in
  ``intStats``:  ``max_X |benefit_q({a}, X) − benefit_q({a}, X ∪ {b})|``.

Both are maxima over configurations ``X ⊆ U``. Evaluating them needs no
further optimizer calls: every ``cost`` lookup is answered by the IBG. The
enumeration is restricted to the *interaction scope* of the index — by
default the IBG indices on the same table, because the cost model localizes
interactions within a table (hash-join configuration; see DESIGN.md). A
wider scope can be requested when index-nested-loop joins are enabled.
"""

from __future__ import annotations

import itertools
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Tuple

from ..db.index import Index
from .graph import IndexBenefitGraph

__all__ = [
    "interaction_scope",
    "max_benefit",
    "degree_of_interaction",
    "interaction_pairs",
]

#: Enumerating configurations over more than this many scope indices falls
#: back to used-set-guided sampling rather than full enumeration.
_FULL_ENUMERATION_LIMIT = 12


def interaction_scope(
    ibg: IndexBenefitGraph, index: Index, same_table_only: bool = True
) -> FrozenSet[Index]:
    """Indices whose presence can change ``index``'s benefit.

    Restricted to indices that appear in some IBG used set: a candidate that
    is never part of any optimal plan cannot change any cost, hence cannot
    interact with anything. With the default hash-join cost model the scope
    is further restricted to the same table (cross-table doi is provably 0).
    """
    pool = ibg.all_used_indices() | {index}
    if same_table_only:
        return frozenset(
            other for other in pool
            if other.table == index.table and other != index
        )
    return frozenset(other for other in pool if other != index)


def _context_subsets(
    ibg: IndexBenefitGraph, scope: FrozenSet[Index]
) -> Iterable[FrozenSet[Index]]:
    """Candidate contexts X for the maxima.

    Full power set when the scope is small; otherwise the family of used
    sets realized by IBG nodes (projected into the scope), which is where
    the piecewise-constant benefit function changes value.
    """
    if len(scope) <= _FULL_ENUMERATION_LIMIT:
        items = sorted(scope)
        for r in range(len(items) + 1):
            for combo in itertools.combinations(items, r):
                yield frozenset(combo)
        return
    seen = {frozenset()}
    yield frozenset()
    for node in ibg:
        projected = node.used & scope
        for r in range(len(projected) + 1):
            for combo in itertools.combinations(sorted(projected), r):
                ctx = frozenset(combo)
                if ctx not in seen:
                    seen.add(ctx)
                    yield ctx
    if scope not in seen:
        yield scope


def max_benefit(
    ibg: IndexBenefitGraph, index: Index, same_table_only: bool = True
) -> float:
    """β = max over X ⊆ U of ``benefit_q({index}, X)`` (0 if never positive)."""
    if index not in ibg.candidates or index not in ibg.all_used_indices():
        return 0.0
    scope = interaction_scope(ibg, index, same_table_only)
    best = 0.0
    for context in _context_subsets(ibg, scope):
        benefit = ibg.cost(context) - ibg.cost(context | {index})
        if benefit > best:
            best = benefit
    return best


def degree_of_interaction(
    ibg: IndexBenefitGraph,
    a: Index,
    b: Index,
    same_table_only: bool = True,
) -> float:
    """doi_q(a, b) per §2 of the paper; symmetric in ``a`` and ``b``."""
    if a == b:
        raise ValueError("degree of interaction is defined for distinct indices")
    if a not in ibg.candidates or b not in ibg.candidates:
        return 0.0
    if same_table_only and a.table != b.table:
        return 0.0
    used_anywhere = ibg.all_used_indices()
    if a not in used_anywhere or b not in used_anywhere:
        return 0.0  # an index that never enters a plan cannot interact
    scope = interaction_scope(ibg, a, same_table_only) - {b}
    worst = 0.0
    for context in _context_subsets(ibg, scope):
        benefit_without = ibg.cost(context) - ibg.cost(context | {a})
        with_b = context | {b}
        benefit_with = ibg.cost(with_b) - ibg.cost(with_b | {a})
        diff = abs(benefit_without - benefit_with)
        if diff > worst:
            worst = diff
    return worst


def interaction_pairs(
    ibg: IndexBenefitGraph,
    indices: AbstractSet[Index],
    same_table_only: bool = True,
) -> Dict[Tuple[Index, Index], float]:
    """All positive doi values among ``indices`` (keys sorted per pair).

    Pairs are pruned to those that co-occur in some IBG used set or share a
    table, since any other pair provably has doi 0 in this cost model.
    """
    candidates = sorted(set(indices) & set(ibg.candidates))
    out: Dict[Tuple[Index, Index], float] = {}
    for i, a in enumerate(candidates):
        for b in candidates[i + 1:]:
            if same_table_only and a.table != b.table:
                continue
            doi = degree_of_interaction(ibg, a, b, same_table_only)
            if doi > 0.0:
                out[(a, b)] = doi
    return out
