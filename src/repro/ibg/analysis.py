# reprolint: zone=deterministic
"""Benefit and degree-of-interaction analysis over an IBG (after [16]).

Two quantities drive WFIT's candidate maintenance (§5.2.2):

* ``max_benefit(a)`` — the statement-level benefit statistic β_n recorded in
  ``idxStats``:  ``max_X benefit_q({a}, X)``.
* ``degree_of_interaction(a, b)`` — the doi_q(a, b) statistic recorded in
  ``intStats``:  ``max_X |benefit_q({a}, X) − benefit_q({a}, X ∪ {b})|``.

Both are maxima over configurations ``X ⊆ U``. Evaluating them needs no
further optimizer calls: every ``cost`` lookup is answered by the IBG. The
enumeration is restricted to the *interaction scope* of the index — by
default the IBG indices on the same table, because the cost model localizes
interactions within a table (hash-join configuration; see DESIGN.md). A
wider scope can be requested when index-nested-loop joins are enabled.

The sweeps run on the bitset kernel: contexts are enumerated as submasks
of the scope mask (``sub = (sub − 1) & scope``, one int op per subset) and
costs are read through :meth:`IndexBenefitGraph.cost_mask`, so a full
``2^|scope|`` benefit scan allocates no containers at all.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterator, Tuple

from ..core.bitset import iter_submasks
from ..db.index import Index
from .graph import IndexBenefitGraph

__all__ = [
    "interaction_scope",
    "max_benefit",
    "degree_of_interaction",
    "interaction_pairs",
]

#: Enumerating configurations over more than this many scope indices falls
#: back to used-set-guided sampling rather than full enumeration.
_FULL_ENUMERATION_LIMIT = 12


def _scope_mask(
    ibg: IndexBenefitGraph, index: Index, same_table_only: bool
) -> int:
    """The interaction scope as a mask over the IBG's universe.

    This is the single definition of the scope rule;
    :func:`interaction_scope` is its decoded view. An ``index`` not (yet)
    registered in the universe simply contributes no bit to exclude.
    """
    universe = ibg.universe
    position = universe.position(index)
    bit = 0 if position is None else 1 << position
    pool = ibg.all_used_mask()
    if same_table_only:
        pool &= universe.table_mask(index.table)
    return pool & ~bit


def interaction_scope(
    ibg: IndexBenefitGraph, index: Index, same_table_only: bool = True
) -> FrozenSet[Index]:
    """Indices whose presence can change ``index``'s benefit.

    Restricted to indices that appear in some IBG used set: a candidate that
    is never part of any optimal plan cannot change any cost, hence cannot
    interact with anything. With the default hash-join cost model the scope
    is further restricted to the same table (cross-table doi is provably 0).
    """
    return ibg.universe.decode(_scope_mask(ibg, index, same_table_only))


def _context_masks(ibg: IndexBenefitGraph, scope: int) -> Iterator[int]:
    """Candidate contexts X for the maxima, as masks.

    Full power set when the scope is small; otherwise the family of used
    sets realized by IBG nodes (projected into the scope), which is where
    the piecewise-constant benefit function changes value.
    """
    if scope.bit_count() <= _FULL_ENUMERATION_LIMIT:
        yield from iter_submasks(scope)
        return
    seen = {0}
    yield 0
    for node in ibg:
        projected = node.used_mask & scope
        for context in iter_submasks(projected):
            if context not in seen:
                seen.add(context)
                yield context
    if scope not in seen:
        yield scope


def max_benefit(
    ibg: IndexBenefitGraph, index: Index, same_table_only: bool = True
) -> float:
    """β = max over X ⊆ U of ``benefit_q({index}, X)`` (0 if never positive)."""
    if index not in ibg.universe:
        return 0.0
    bit = ibg.universe.bit_of(index)
    if not (ibg.candidates_mask & bit) or not (ibg.all_used_mask() & bit):
        return 0.0
    best = 0.0
    cost = ibg.cost_mask
    for context in _context_masks(ibg, _scope_mask(ibg, index, same_table_only)):
        benefit = cost(context) - cost(context | bit)
        if benefit > best:
            best = benefit
    return best


def degree_of_interaction(
    ibg: IndexBenefitGraph,
    a: Index,
    b: Index,
    same_table_only: bool = True,
) -> float:
    """doi_q(a, b) per §2 of the paper; symmetric in ``a`` and ``b``."""
    if a == b:
        raise ValueError("degree of interaction is defined for distinct indices")
    universe = ibg.universe
    if a not in universe or b not in universe:
        return 0.0
    a_bit = universe.bit_of(a)
    b_bit = universe.bit_of(b)
    candidates = ibg.candidates_mask
    if not (candidates & a_bit) or not (candidates & b_bit):
        return 0.0
    if same_table_only and a.table != b.table:
        return 0.0
    used_anywhere = ibg.all_used_mask()
    if not (used_anywhere & a_bit) or not (used_anywhere & b_bit):
        return 0.0  # an index that never enters a plan cannot interact
    scope = _scope_mask(ibg, a, same_table_only) & ~b_bit
    worst = 0.0
    cost = ibg.cost_mask
    for context in _context_masks(ibg, scope):
        benefit_without = cost(context) - cost(context | a_bit)
        with_b = context | b_bit
        benefit_with = cost(with_b) - cost(with_b | a_bit)
        diff = abs(benefit_without - benefit_with)
        if diff > worst:
            worst = diff
    return worst


def interaction_pairs(
    ibg: IndexBenefitGraph,
    indices: AbstractSet[Index],
    same_table_only: bool = True,
) -> Dict[Tuple[Index, Index], float]:
    """All positive doi values among ``indices`` (keys sorted per pair).

    Pairs are pruned to those that co-occur in some IBG used set or share a
    table, since any other pair provably has doi 0 in this cost model.
    """
    candidates = sorted(set(indices) & set(ibg.candidates))
    out: Dict[Tuple[Index, Index], float] = {}
    for i, a in enumerate(candidates):
        for b in candidates[i + 1:]:
            if same_table_only and a.table != b.table:
                continue
            doi = degree_of_interaction(ibg, a, b, same_table_only)
            if doi > 0.0:
                out[(a, b)] = doi
    return out
