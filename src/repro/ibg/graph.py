"""Index Benefit Graph (IBG) construction, after Schnaitter et al. [16].

The IBG for a statement ``q`` and candidate set ``U`` compactly encodes
``cost(q, X)`` for *every* ``X ⊆ U`` while optimizing only a small number of
configurations. Each node is a subset ``Y`` annotated with the cost of the
plan under ``Y`` and ``used(q, Y)`` — the indices the optimal plan depends
on. Node ``Y`` has one child ``Y − {a}`` per used ``a``.

The core property (Lemma 1 of [16], guaranteed by plan monotonicity): if
``a ∈ Y − used(Y)`` then ``cost(Y) = cost(Y − {a})``. Therefore the cost of
an arbitrary ``X`` is found by walking down from the root, repeatedly
removing a used index not in ``X``.

**Write statements.** For updates/inserts/deletes, *every* index on the
written table is cost-relevant through maintenance, which would make used
sets — and hence the graph — exponential. But maintenance charges are
additive and configuration-independent, so the graph is built over the
*plan-relevant* used sets only (access paths, joins) with maintenance-free
"core" costs, and ``cost(X)`` adds ``Σ_{a∈X} maintenance(a)`` analytically.
This representation is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..db.index import Index
from ..query.ast import Statement
from ..optimizer.whatif import WhatIfOptimizer

__all__ = ["IBGNode", "IndexBenefitGraph", "build_ibg"]


@dataclass(frozen=True)
class IBGNode:
    """One optimized configuration in the IBG.

    ``cost`` is the *core* (maintenance-free) plan cost under ``subset``;
    ``used`` are the plan-relevant indices.
    """

    subset: FrozenSet[Index]
    cost: float
    used: FrozenSet[Index]


class IndexBenefitGraph:
    """The IBG of one statement over a candidate set ``U``.

    Provides ``cost(X)`` / ``used(X)`` lookups for any ``X ⊆ U`` without
    further optimizer calls.
    """

    def __init__(
        self,
        statement: Statement,
        candidates: FrozenSet[Index],
        nodes: Dict[FrozenSet[Index], IBGNode],
        root: FrozenSet[Index],
        maintenance: Dict[Index, float],
    ) -> None:
        self.statement = statement
        self.candidates = candidates
        self._nodes = nodes
        self._root = root
        self._maintenance = dict(maintenance)
        self._covering_cache: Dict[FrozenSet[Index], IBGNode] = {}
        self._all_used: Optional[FrozenSet[Index]] = None
        self.empty_cost = self.cost(frozenset())

    @property
    def nodes(self) -> Tuple[IBGNode, ...]:
        return tuple(self._nodes.values())

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def root(self) -> IBGNode:
        return self._nodes[self._root]

    @property
    def maintained_indices(self) -> FrozenSet[Index]:
        """Indices that charge maintenance under this (write) statement."""
        return frozenset(self._maintenance)

    def _find_covering(self, subset: FrozenSet[Index]) -> IBGNode:
        """Walk from the root to the node whose core cost equals the
        target subset's core cost."""
        cached = self._covering_cache.get(subset)
        if cached is not None:
            return cached
        node = self._nodes[self._root]
        while True:
            extra = node.used - subset
            if not extra:
                self._covering_cache[subset] = node
                return node
            # Remove any used index not in the target subset; deterministic
            # choice keeps traversals reproducible.
            drop = min(extra)
            child_key = node.subset - {drop}
            child = self._nodes.get(child_key)
            if child is None:
                raise KeyError(
                    f"IBG is missing child {child_key} — was it built with a node cap?"
                )
            node = child

    def cost(self, subset: AbstractSet[Index]) -> float:
        """``cost(q, X)`` for any ``X ⊆ U``, answered from the graph."""
        wanted = frozenset(subset) & self.candidates
        total = self._find_covering(wanted).cost
        if self._maintenance:
            for index in wanted:
                charge = self._maintenance.get(index)
                if charge is not None:
                    total += charge
        return total

    def used(self, subset: AbstractSet[Index]) -> FrozenSet[Index]:
        """``used(q, X)``: the cost-relevant indices under ``X``."""
        wanted = frozenset(subset) & self.candidates
        node = self._find_covering(wanted)
        plan_used = node.used & wanted
        if not self._maintenance:
            return plan_used
        return plan_used | (wanted & frozenset(self._maintenance))

    def benefit(self, extra: AbstractSet[Index], base: AbstractSet[Index]) -> float:
        """``benefit_q(extra, base)`` evaluated entirely from the graph."""
        base_set = frozenset(base)
        return self.cost(base_set) - self.cost(base_set | frozenset(extra))

    def all_used_indices(self) -> FrozenSet[Index]:
        """Union of cost-relevant indices over all configurations.

        Any candidate outside this set never appears in a plan and pays no
        maintenance under *any* configuration, so it cannot change any cost
        or any benefit: analyses may soundly restrict themselves to this set.
        """
        if self._all_used is None:
            out = set(self._maintenance)
            for node in self._nodes.values():
                out.update(node.used)
            self._all_used = frozenset(out)
        return self._all_used

    def __iter__(self) -> Iterator[IBGNode]:
        return iter(self._nodes.values())


def build_ibg(
    optimizer: WhatIfOptimizer,
    statement: Statement,
    candidates: AbstractSet[Index],
    max_nodes: int = 4096,
) -> IndexBenefitGraph:
    """Construct the IBG of ``statement`` over ``candidates``.

    Only indices relevant to the statement (on its referenced tables) are
    kept in the root; the rest can never appear in a plan. ``max_nodes``
    bounds pathological blow-up; the bound is generous because each node
    expands only into ``|plan-used|`` children and plan-used sets are small.
    """
    relevant = optimizer.relevant_subset(statement, candidates)
    maintenance: Dict[Index, float] = {}
    if statement.is_update:
        for index in relevant:
            charge = optimizer.maintenance_cost(statement, index)
            if charge > 0.0:
                maintenance[index] = charge

    root = frozenset(relevant)
    nodes: Dict[FrozenSet[Index], IBGNode] = {}
    queue: List[FrozenSet[Index]] = [root]
    while queue:
        subset = queue.pop()
        if subset in nodes:
            continue
        if len(nodes) >= max_nodes:
            raise RuntimeError(
                f"IBG exceeded {max_nodes} nodes for statement {statement!r}"
            )
        cost, plan_used = optimizer.plan_usage(statement, subset)
        plan_used &= subset
        # Store the maintenance-free core cost so lookups stay exact for
        # arbitrary subsets (maintenance is re-added per lookup).
        core = cost - sum(maintenance.get(ix, 0.0) for ix in subset)
        nodes[subset] = IBGNode(subset=subset, cost=core, used=plan_used)
        for index in plan_used:
            child = subset - {index}
            if child not in nodes:
                queue.append(child)
    return IndexBenefitGraph(statement, root, nodes, root, maintenance)
