# reprolint: zone=deterministic
"""Index Benefit Graph (IBG) construction, after Schnaitter et al. [16].

The IBG for a statement ``q`` and candidate set ``U`` compactly encodes
``cost(q, X)`` for *every* ``X ⊆ U`` while optimizing only a small number of
configurations. Each node is a subset ``Y`` annotated with the cost of the
plan under ``Y`` and ``used(q, Y)`` — the indices the optimal plan depends
on. Node ``Y`` has one child ``Y − {a}`` per used ``a``.

The core property (Lemma 1 of [16], guaranteed by plan monotonicity): if
``a ∈ Y − used(Y)`` then ``cost(Y) = cost(Y − {a})``. Therefore the cost of
an arbitrary ``X`` is found by walking down from the root, repeatedly
removing a used index not in ``X``.

**Bitset encoding.** Subsets are stored as masks over the owning what-if
optimizer's :class:`~repro.core.bitset.IndexUniverse`: nodes are keyed by
int, the root-walk step is two mask operations, and ``cost_mask`` answers a
lookup without constructing a single container — which is what makes the
per-statement benefit/interaction sweeps of WFIT affordable. The frozenset
API (``cost``, ``used``, ``benefit``) remains as an encode shim.

**Write statements.** For updates/inserts/deletes, *every* index on the
written table is cost-relevant through maintenance, which would make used
sets — and hence the graph — exponential. But maintenance charges are
additive and configuration-independent, so the graph is built over the
*plan-relevant* used sets only (access paths, joins) with maintenance-free
"core" costs, and ``cost(X)`` adds ``Σ_{a∈X} maintenance(a)`` analytically.
This representation is exact.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..core.bitset import IndexUniverse, iter_bits
from ..db.index import Index
from ..query.ast import Statement
from ..optimizer.whatif import WhatIfOptimizer

__all__ = ["IBGNode", "IndexBenefitGraph", "build_ibg"]


def _maintenance_tables(
    universe: IndexUniverse, maintenance: Dict[Index, float]
) -> Tuple[int, Dict[int, float]]:
    """``(maintenance mask, per-bit charge map)`` — the single definition of
    how maintenance charges project into the mask encoding."""
    mask = universe.project(maintenance)
    by_bit = {
        universe.bit_of(index): charge for index, charge in maintenance.items()
    }
    return mask, by_bit


class IBGNode:
    """One optimized configuration in the IBG.

    ``cost`` is the *core* (maintenance-free) plan cost under ``mask``;
    ``used_mask`` are the plan-relevant indices. Both sets are stored only
    as masks over the graph's :class:`IndexUniverse` — ``subset`` / ``used``
    decode on demand, so graph construction allocates no containers.
    """

    __slots__ = ("mask", "cost", "used_mask", "_universe")

    def __init__(
        self, mask: int, cost: float, used_mask: int, universe: IndexUniverse
    ) -> None:
        self.mask = mask
        self.cost = cost
        self.used_mask = used_mask
        self._universe = universe

    @property
    def subset(self) -> FrozenSet[Index]:
        return self._universe.decode(self.mask)

    @property
    def used(self) -> FrozenSet[Index]:
        return self._universe.decode(self.used_mask)

    def __repr__(self) -> str:
        return (
            f"IBGNode(subset={sorted(ix.name for ix in self.subset)}, "
            f"cost={self.cost!r}, "
            f"used={sorted(ix.name for ix in self.used)})"
        )


class IndexBenefitGraph:
    """The IBG of one statement over a candidate set ``U``.

    Provides ``cost(X)`` / ``used(X)`` lookups for any ``X ⊆ U`` without
    further optimizer calls; the ``*_mask`` variants answer the same
    questions for :class:`IndexUniverse`-encoded configurations.
    """

    def __init__(
        self,
        statement: Statement,
        universe: IndexUniverse,
        nodes: Dict[int, IBGNode],
        root_mask: int,
        maintenance: Dict[Index, float],
    ) -> None:
        self.statement = statement
        self._universe = universe
        self._nodes = nodes
        self._root_mask = root_mask
        self.candidates_mask = root_mask
        self.candidates = universe.decode(root_mask)
        self._maintenance = dict(maintenance)
        self._maintenance_mask, self._maintenance_by_bit = _maintenance_tables(
            universe, maintenance
        )
        self._covering_cache: Dict[int, IBGNode] = {}
        self._all_used_mask: Optional[int] = None
        self._all_used: Optional[FrozenSet[Index]] = None
        self.empty_cost = self.cost_mask(0)

    @property
    def universe(self) -> IndexUniverse:
        """The bit-position table this graph's masks are encoded in."""
        return self._universe

    @property
    def nodes(self) -> Tuple[IBGNode, ...]:
        return tuple(self._nodes.values())

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def root(self) -> IBGNode:
        return self._nodes[self._root_mask]

    @property
    def maintained_indices(self) -> FrozenSet[Index]:
        """Indices that charge maintenance under this (write) statement."""
        return frozenset(self._maintenance)

    def _find_covering(self, wanted: int) -> IBGNode:
        """Walk from the root to the node whose core cost equals the
        target subset's core cost."""
        cached = self._covering_cache.get(wanted)
        if cached is not None:
            return cached
        nodes = self._nodes
        node = nodes[self._root_mask]
        while True:
            extra = node.used_mask & ~wanted
            if not extra:
                self._covering_cache[wanted] = node
                return node
            # Remove any used index not in the target subset; the lowest
            # set bit keeps traversals deterministic and reproducible.
            drop = extra & -extra
            child = nodes.get(node.mask & ~drop)
            if child is None:
                raise KeyError(
                    f"IBG is missing child {self._universe.decode(node.mask & ~drop)}"
                    f" — was it built with a node cap?"
                )
            node = child

    def _maintenance_sum(self, mask: int) -> float:
        total = 0.0
        charges = self._maintenance_by_bit
        for bit in iter_bits(mask):
            total += charges[bit]
        return total

    # -- mask-level lookups (the hot path) ------------------------------------

    def cost_mask(self, config_mask: int) -> float:
        """``cost(q, X)`` for an encoded ``X ⊆ U``, answered from the graph."""
        wanted = config_mask & self._root_mask
        total = self._find_covering(wanted).cost
        charged = wanted & self._maintenance_mask
        if charged:
            total += self._maintenance_sum(charged)
        return total

    def used_mask(self, config_mask: int) -> int:
        """``used(q, X)`` as a mask: the cost-relevant indices under ``X``."""
        wanted = config_mask & self._root_mask
        node = self._find_covering(wanted)
        return (node.used_mask & wanted) | (wanted & self._maintenance_mask)

    def all_used_mask(self) -> int:
        """Mask union of cost-relevant indices over all configurations."""
        if self._all_used_mask is None:
            out = self._maintenance_mask
            for node in self._nodes.values():
                out |= node.used_mask
            self._all_used_mask = out
        return self._all_used_mask

    # -- frozenset API (module-boundary shim) ----------------------------------

    def cost(self, subset: AbstractSet[Index]) -> float:
        """``cost(q, X)`` for any ``X ⊆ U``, answered from the graph."""
        return self.cost_mask(self._universe.project(subset))

    def used(self, subset: AbstractSet[Index]) -> FrozenSet[Index]:
        """``used(q, X)``: the cost-relevant indices under ``X``."""
        return self._universe.decode(
            self.used_mask(self._universe.project(subset))
        )

    def benefit(self, extra: AbstractSet[Index], base: AbstractSet[Index]) -> float:
        """``benefit_q(extra, base)`` evaluated entirely from the graph."""
        base_mask = self._universe.project(base)
        return self.cost_mask(base_mask) - self.cost_mask(
            base_mask | self._universe.project(extra)
        )

    def all_used_indices(self) -> FrozenSet[Index]:
        """Union of cost-relevant indices over all configurations.

        Any candidate outside this set never appears in a plan and pays no
        maintenance under *any* configuration, so it cannot change any cost
        or any benefit: analyses may soundly restrict themselves to this set.
        """
        if self._all_used is None:
            self._all_used = self._universe.decode(self.all_used_mask())
        return self._all_used

    def __iter__(self) -> Iterator[IBGNode]:
        return iter(self._nodes.values())


def build_ibg(
    optimizer: WhatIfOptimizer,
    statement: Statement,
    candidates: AbstractSet[Index],
    max_nodes: int = 4096,
) -> IndexBenefitGraph:
    """Construct the IBG of ``statement`` over ``candidates``.

    Only indices relevant to the statement (on its referenced tables) are
    kept in the root; the rest can never appear in a plan. ``max_nodes``
    bounds pathological blow-up; the bound is generous because each node
    expands only into ``|plan-used|`` children and plan-used sets are small.
    """
    universe = optimizer.mask_universe
    root_mask = optimizer.relevant_mask(statement, universe.encode(candidates))
    maintenance: Dict[Index, float] = {}
    if statement.is_update:
        for bit in iter_bits(root_mask):
            index = universe.index_at(bit)
            charge = optimizer.maintenance_cost(statement, index)
            if charge > 0.0:
                maintenance[index] = charge
    maintenance_mask, charge_by_bit = _maintenance_tables(universe, maintenance)

    # Wave-at-a-time construction: each BFS frontier is priced through the
    # optimizer's batched template interface in one call, so the graph pays
    # one plan derivation per *statement*, not one per node.
    nodes: Dict[int, IBGNode] = {}
    frontier: List[int] = [root_mask]
    while frontier:
        wave = [mask for mask in dict.fromkeys(frontier) if mask not in nodes]
        if not wave:
            break
        priced = optimizer.plan_usage_masks(statement, wave)
        frontier = []
        for subset_mask, (cost, plan_used_mask) in zip(wave, priced):
            if len(nodes) >= max_nodes:
                raise RuntimeError(
                    f"IBG exceeded {max_nodes} nodes for statement {statement!r}"
                )
            plan_used_mask &= subset_mask
            # Store the maintenance-free core cost so lookups stay exact for
            # arbitrary subsets (maintenance is re-added per lookup).
            core = cost
            charged = subset_mask & maintenance_mask
            if charged:
                core -= sum(charge_by_bit[bit] for bit in iter_bits(charged))
            nodes[subset_mask] = IBGNode(
                subset_mask, core, plan_used_mask, universe
            )
            remaining = plan_used_mask
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                child = subset_mask & ~bit
                if child not in nodes:
                    frontier.append(child)
    return IndexBenefitGraph(statement, universe, nodes, root_mask, maintenance)
