"""Crash-consistency-aware file IO: a pluggable backend + atomic writes.

Durability code must be *testable* under injected faults: a WAL that only
ever talks to the real filesystem can't be killed mid-record in a unit
test. :class:`FileIO` is the narrow waist — every filesystem touch the
durability layer makes (append, fsync, rename, directory fsync) goes
through one of these methods, so the fault harness
(``tests/service/faults.py``) can substitute an in-memory model that
distinguishes *written* bytes from *durable* bytes and crash between the
two.

:func:`atomic_write_json` is the one blessed way to publish a JSON
artifact: write to a temp file, fsync it, rename over the destination,
then fsync the parent directory so the rename itself survives a crash.
A reader therefore observes either the old document or the new one,
never a torn mixture — ``path.write_text`` gives no such guarantee.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import BinaryIO, Dict, List, Optional, Union

__all__ = ["FileIO", "REAL_IO", "atomic_write_json"]

PathLike = Union[str, os.PathLike]


class FileIO:
    """The real-OS implementation of the durability IO interface.

    Methods are deliberately free-function-thin: the value of the class
    is its *surface*, which the fault-injection harness mirrors with an
    in-memory crash-consistency model. Anything the WAL or checkpoint
    writer needs from the filesystem must be expressible here.
    """

    # -- handles ---------------------------------------------------------------

    def open_append(self, path: PathLike) -> BinaryIO:
        """Open ``path`` for appending (created if absent)."""
        return open(os.fspath(path), "ab")

    def open_write(self, path: PathLike) -> BinaryIO:
        """Open ``path`` for writing, truncating any existing content."""
        return open(os.fspath(path), "wb")

    def write(self, handle: BinaryIO, data: bytes) -> int:
        return handle.write(data)

    def flush(self, handle: BinaryIO) -> None:
        handle.flush()

    def fsync(self, handle: BinaryIO) -> None:
        """Force ``handle``'s written bytes to stable storage."""
        handle.flush()
        os.fsync(handle.fileno())

    def truncate(self, handle: BinaryIO, size: int) -> None:
        """Cut ``handle``'s file to ``size`` bytes."""
        handle.flush()
        handle.truncate(size)

    def close(self, handle: BinaryIO) -> None:
        handle.close()

    # -- namespace -------------------------------------------------------------

    def replace(self, src: PathLike, dst: PathLike) -> None:
        """Atomically rename ``src`` over ``dst`` (POSIX rename semantics)."""
        os.replace(os.fspath(src), os.fspath(dst))

    def fsync_dir(self, path: PathLike) -> None:
        """Force directory entries (creates/renames) under ``path`` durable."""
        fd = os.open(os.fspath(path), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def makedirs(self, path: PathLike) -> None:
        os.makedirs(os.fspath(path), exist_ok=True)

    def remove(self, path: PathLike) -> None:
        os.remove(os.fspath(path))

    # -- reads -----------------------------------------------------------------

    def exists(self, path: PathLike) -> bool:
        return os.path.exists(os.fspath(path))

    def read_bytes(self, path: PathLike) -> bytes:
        with open(os.fspath(path), "rb") as handle:
            return handle.read()

    def file_size(self, path: PathLike) -> int:
        return os.path.getsize(os.fspath(path))

    def listdir(self, path: PathLike) -> List[str]:
        return sorted(os.listdir(os.fspath(path)))


#: Process-wide default backend (the real filesystem).
REAL_IO = FileIO()


def atomic_write_json(
    path: PathLike,
    document: Dict[str, object],
    *,
    indent: Optional[int] = 2,
    sort_keys: bool = True,
    io: FileIO = REAL_IO,
) -> pathlib.Path:
    """Crash-atomically publish ``document`` as JSON at ``path``.

    temp file + fsync + rename + parent-directory fsync: after a crash at
    any instant, ``path`` holds either its previous content or the
    complete new document. The temp file lives next to the destination
    (same filesystem, so the rename is atomic) under a ``.tmp`` suffix;
    readers that glob for real artifact names never see it.
    """
    target = pathlib.Path(path)
    tmp = target.with_name(target.name + ".tmp")
    data = (json.dumps(document, indent=indent, sort_keys=sort_keys) + "\n").encode("utf-8")
    handle = io.open_write(tmp)
    try:
        io.write(handle, data)
        io.fsync(handle)
    finally:
        io.close(handle)
    io.replace(tmp, target)
    io.fsync_dir(target.parent)
    return target
