"""`repro.obs` — dependency-free telemetry for the tuning pipeline.

The package has two halves sharing one on/off switch:

* **Metrics** (:mod:`repro.obs.registry`): a process-wide
  :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges and
  fixed-bucket histograms, exported as JSON snapshots or Prometheus text.
* **Traces** (:mod:`repro.obs.trace`): nested pipeline spans
  (``with obs.span("wfit.prepare"): ...``) kept in a bounded ring and
  exportable in the Chrome ``trace_event`` format.

Enablement contract
-------------------
Telemetry is **on by default** and controlled by the ``REPRO_OBS``
environment variable at import time — ``REPRO_OBS=0`` (or ``false`` /
``no`` / ``off``) starts the process disabled — plus :func:`enable` /
:func:`disable` at runtime. Instrumented hot paths check the single
module-level :data:`state` flag (one attribute load) and skip all clock
reads, histogram observes and span allocation when it is off; that is the
"near-zero-cost no-op mode" gated at ≤2% overhead by
``benchmarks/perf_gate.py --obs-overhead``.

Telemetry never feeds back into tuning decisions: with obs on or off, and
with any mix of snapshots taken mid-run, recommendations and totWork are
bit-identical (enforced by ``tests/obs/test_determinism.py``).

Typical use::

    from repro import obs

    with obs.span("engine.analyze"):
        ...
    obs.default_registry().counter("repro_wfit_statements_total").inc()
    print(obs.default_registry().expose_text())

``python -m repro.obs`` pretty-prints, diffs and validates saved
snapshots (see :mod:`repro.obs.__main__`).
"""

from __future__ import annotations

import os
from typing import Optional

from .registry import (
    DEFAULT_TIME_BUCKETS,
    POW2_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    parse_prometheus_text,
    text_from_snapshot,
    validate_snapshot,
)
from .trace import TRACE_RING_DEFAULT, Tracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "POW2_BUCKETS",
    "MetricsRegistry",
    "Tracer",
    "default_registry",
    "default_tracer",
    "diff_snapshots",
    "disable",
    "enable",
    "enabled",
    "parse_prometheus_text",
    "span",
    "text_from_snapshot",
    "validate_snapshot",
]

_OBS_ENV = "REPRO_OBS"
_FALSEY = {"0", "false", "no", "off"}


class _ObsState:
    """The single flag hot paths consult (attribute load, no function call)."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled


def _env_enabled() -> bool:
    return os.environ.get(_OBS_ENV, "1").strip().lower() not in _FALSEY


#: Shared enablement state. Instrumented modules import this once and test
#: ``state.enabled`` inline on their hot paths.
state = _ObsState(_env_enabled())

_registry = MetricsRegistry()
_tracer = Tracer(ring_size=TRACE_RING_DEFAULT)

# Span durations double as metrics: every closed span observes into this
# family, so phase timing shows up in snapshots without pulling a trace.
_span_seconds = {}


def _on_span_close(span) -> None:
    hist = _span_seconds.get(span.name)
    if hist is None:
        hist = _span_seconds[span.name] = _registry.histogram(
            "repro_span_seconds",
            help="Wall time of pipeline spans by name.",
            labels={"span": span.name},
        )
    hist.observe(span.wall_s)


_tracer.on_close = _on_span_close


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return state.enabled


def enable() -> None:
    """Turn telemetry on for this process (overrides ``REPRO_OBS=0``)."""
    state.enabled = True


def disable() -> None:
    """Turn telemetry off: instruments stop recording, spans become no-ops.

    Existing registry values are kept (snapshots still render); they just
    stop advancing until :func:`enable`.
    """
    state.enabled = False


def default_registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation records to."""
    return _registry


def default_tracer() -> Tracer:
    """The process-wide tracer behind :func:`span`."""
    return _tracer


def span(name: str):
    """Open a named span on the default tracer (no-op when disabled)."""
    return _tracer.span(name, enabled=state.enabled)
