"""``python -m repro.obs`` — inspect, diff and validate telemetry artifacts.

Subcommands:

``show SNAPSHOT``
    Pretty-print a metrics snapshot (or a replay report containing one
    under ``"obs"``) as a sorted table; ``--format prom`` renders the
    Prometheus exposition text instead, ``--format json`` echoes the
    normalized snapshot document.

``diff BEFORE AFTER``
    Per-metric deltas (counters/histograms subtract; gauges show the
    AFTER level). Accepts snapshots or replay reports on either side.

``check SNAPSHOT [--trace TRACE]``
    CI validation: the snapshot must satisfy the schema, its Prometheus
    rendering must round-trip through the bundled parser, and the
    optional trace file must be a Chrome ``trace_event`` document. Exit
    status 0 on success, 1 with a diagnostic on the first failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Mapping, Optional

from .registry import (
    diff_snapshots,
    parse_prometheus_text,
    text_from_snapshot,
    validate_snapshot,
)


def _load_snapshot(path: str) -> Mapping[str, object]:
    """Load ``path`` as a snapshot, unwrapping replay reports transparently."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, Mapping) and "version" not in document:
        # Replay reports carry the snapshot under "obs" (their top-level
        # "metrics" key is the engine's own dict, not a snapshot).
        inner = document.get("obs")
        if isinstance(inner, Mapping):
            document = inner
    validate_snapshot(document)
    return document


def _labels_repr(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _render_table(snapshot: Mapping[str, object]) -> str:
    lines: List[str] = []
    metrics: Mapping[str, Mapping[str, object]] = snapshot["metrics"]  # type: ignore[assignment]
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry["type"]
        for sample in entry["samples"]:  # type: ignore[index]
            labels = _labels_repr(sample.get("labels", {}))
            if kind == "histogram":
                count = int(sample["count"])
                total = float(sample["sum"])
                mean = total / count if count else 0.0
                lines.append(
                    f"{name}{labels}  count={count}  sum={total:.6g}  "
                    f"mean={mean:.6g}"
                )
            else:
                value = float(sample["value"])
                rendered = (
                    str(int(value)) if float(value).is_integer() else f"{value:.6g}"
                )
                lines.append(f"{name}{labels}  {rendered}")
    return "\n".join(lines)


def _cmd_show(args: argparse.Namespace) -> int:
    snapshot = _load_snapshot(args.snapshot)
    if args.format == "prom":
        sys.stdout.write(text_from_snapshot(snapshot))
    elif args.format == "json":
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(_render_table(snapshot))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    before = _load_snapshot(args.before)
    after = _load_snapshot(args.after)
    delta = diff_snapshots(before, after)
    if args.format == "json":
        json.dump(delta, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(_render_table(delta))
    return 0


def _check_trace(path: str) -> Optional[str]:
    """Return an error string if ``path`` is not a Chrome trace document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return f"trace: unreadable ({exc})"
    events = document.get("traceEvents") if isinstance(document, dict) else None
    if not isinstance(events, list):
        return "trace: missing 'traceEvents' list"
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            return f"trace: event {index} is not an object"
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                return f"trace: event {index} lacks {field!r}"
        if event["ph"] == "X" and "dur" not in event:
            return f"trace: complete event {index} lacks 'dur'"
    return None


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        snapshot = _load_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        print(f"FAIL snapshot: {exc}", file=sys.stderr)
        return 1
    text = text_from_snapshot(snapshot)
    try:
        families = parse_prometheus_text(text)
    except ValueError as exc:
        print(f"FAIL prometheus: {exc}", file=sys.stderr)
        return 1
    if args.expect_metric:
        missing = [m for m in args.expect_metric if m not in families]
        if missing:
            print(
                f"FAIL expected metrics absent: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 1
    if args.trace:
        error = _check_trace(args.trace)
        if error:
            print(f"FAIL {error}", file=sys.stderr)
            return 1
    sample_count = sum(
        len(entry["samples"]) for entry in snapshot["metrics"].values()  # type: ignore[union-attr, index]
    )
    print(
        f"OK {args.snapshot}: {len(families)} metric families, "
        f"{sample_count} samples"
        + (f"; trace {args.trace} valid" if args.trace else "")
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect, diff and validate repro telemetry artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="pretty-print a metrics snapshot")
    show.add_argument("snapshot", help="snapshot JSON (or replay report)")
    show.add_argument(
        "--format", choices=("table", "prom", "json"), default="table"
    )
    show.set_defaults(func=_cmd_show)

    diff = sub.add_parser("diff", help="delta between two snapshots")
    diff.add_argument("before")
    diff.add_argument("after")
    diff.add_argument("--format", choices=("table", "json"), default="table")
    diff.set_defaults(func=_cmd_diff)

    check = sub.add_parser(
        "check", help="validate snapshot schema + Prometheus rendering"
    )
    check.add_argument("snapshot")
    check.add_argument("--trace", help="also validate a Chrome trace JSON")
    check.add_argument(
        "--expect-metric",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless this metric family is present (repeatable)",
    )
    check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
