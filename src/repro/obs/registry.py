"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the telemetry layer (:mod:`repro.obs`):
every instrumented component — the work-function kernels, the what-if
optimizer, WFIT's phases, the tuning engine — records into instruments
obtained from one process-wide :class:`MetricsRegistry` (see
:func:`repro.obs.default_registry`). The registry then exposes the whole
state three ways:

* :meth:`MetricsRegistry.snapshot` — a JSON-ready document (schema below),
  what the replay CLI's ``--metrics-out`` embeds and the bench harnesses
  attach per row;
* :meth:`MetricsRegistry.expose_text` — the Prometheus text exposition
  format (`HELP`/`TYPE` comments, cumulative ``le`` histogram buckets),
  rendered from the same snapshot via :func:`text_from_snapshot`;
* :func:`diff_snapshots` — per-section deltas (counters and histograms
  subtract; gauges keep the later value), what ``python -m repro.obs diff``
  and the bench per-row accounting use.

Design constraints, in order:

1. **Never perturb results.** Instruments only ever *observe*; nothing in
   this module is consulted by the tuning algorithms.
2. **Dependency-free and thread-safe.** Stdlib only; every instrument
   guards its mutable state with its own lock (the engine's submitter
   threads, the drain thread, and WFIT's worker pool all record
   concurrently).
3. **Bounded, deterministic output.** Families and label sets are sorted
   at exposition time, so two runs over the same workload produce
   byte-identical text/snapshots (timing-valued histograms aside).

Snapshot schema (``version`` 1)::

    {"version": 1,
     "metrics": {
       "<name>": {"type": "counter"|"gauge",
                  "help": "...",
                  "samples": [{"labels": {...}, "value": <float>}, ...]},
       "<name>": {"type": "histogram",
                  "help": "...",
                  "samples": [{"labels": {...}, "count": <int>,
                               "sum": <float>,
                               "buckets": {"<le>": <cumulative int>, ...,
                                           "+Inf": <count>}}, ...]}}}

Collectors (:meth:`MetricsRegistry.register_collector`) let a component
keep its own fast per-instance counters — e.g. the what-if optimizer's
plain-int cache accounting, incremented on the costing hot path with no
lock — while still appearing in every snapshot: the registry samples the
collector at snapshot time through a weak reference, so dead components
drop out instead of leaking, and same-named samples from live instances
are summed.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
import weakref
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "POW2_BUCKETS",
    "SNAPSHOT_VERSION",
    "diff_snapshots",
    "parse_prometheus_text",
    "text_from_snapshot",
    "validate_snapshot",
]

#: Snapshot document format version.
SNAPSHOT_VERSION = 1

#: Default histogram buckets for durations in seconds: 10µs … 10s, a
#: 1-2.5-5 ladder wide enough for both a single kernel relaxation and a
#: whole engine micro-batch.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Power-of-two buckets for sizes/counts (batch sizes, tracked states):
#: 1 … 2^20, the WFA part-state cap.
POW2_BUCKETS: Tuple[float, ...] = tuple(float(1 << i) for i in range(21))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Label key tuple: sorted ((name, value), ...).
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> _LabelKey:
    if not labels:
        return ()
    out = []
    for name in sorted(labels):
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
        out.append((name, str(labels[name])))
    return tuple(out)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Prometheus-conformant float rendering (ints without the dot)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    """Bucket-boundary rendering for ``le`` labels (stable dict keys)."""
    return "+Inf" if bound == math.inf else _format_value(bound)


def _labels_text(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in items
    )
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value (resettable only via the registry)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram (cumulative ``le`` semantics at exposition).

    ``observe(v)`` lands ``v`` in the first bucket whose upper bound is
    ``>= v`` (an implicit ``+Inf`` bucket catches the rest) — identical to
    the Prometheus client contract, so an exact bucket boundary counts in
    the bucket it bounds.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        slot = bisect.bisect_left(self._bounds, float(value))
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> Dict[str, int]:
        """``{formatted le bound: cumulative count}``, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            out[_format_le(bound)] = running
        out["+Inf"] = running + counts[-1]
        return out

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._sum = 0.0
            self._count = 0


class _Family:
    """One metric name: its type, help text, and per-label-set children."""

    __slots__ = ("name", "type", "help", "buckets", "children", "lock")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.type = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[_LabelKey, object] = {}
        self.lock = threading.Lock()


class MetricsRegistry:
    """Thread-safe instrument factory + exposition surface.

    Instruments are get-or-create: asking twice for the same
    ``(name, labels)`` returns the same object, so components built at
    different times aggregate into one series. Re-registering a name with
    a different type (or a histogram with different buckets) raises — a
    silent type change would corrupt every consumer of the exposition.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}  # guarded-by: _lock
        # Weakly-referenced sample collectors: fn() -> iterable of sample
        # dicts {"name", "type", "help", "labels", "value"}.
        self._collectors: List[object] = []  # guarded-by: _lock

    # -- instrument factories ------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str,
                buckets: Optional[Tuple[float, ...]] = None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
                return family
        if family.type != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.type}, "
                f"requested {kind}"
            )
        if kind == "histogram" and buckets is not None and family.buckets != buckets:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return family

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        with family.lock:
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Counter()
        return child  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        with family.lock:
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Gauge()
        return child  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
                  labels: Optional[Mapping[str, str]] = None) -> Histogram:
        bounds = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help, bounds)
        key = _label_key(labels)
        with family.lock:
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Histogram(
                    family.buckets or bounds
                )
        return child  # type: ignore[return-value]

    # -- collectors ----------------------------------------------------------

    def register_collector(self, fn: Callable[[], Iterable[Dict[str, object]]]) -> None:
        """Register a sample source consulted at snapshot time.

        ``fn`` is held weakly (``WeakMethod`` for bound methods), so a
        collector vanishes with its owner — components register a bound
        ``_collect_obs`` method and never need to unregister. Samples with
        the same ``(name, labels)`` from different collectors are summed.
        """
        ref: object
        if hasattr(fn, "__self__"):
            ref = weakref.WeakMethod(fn)  # type: ignore[arg-type]
        else:
            try:
                ref = weakref.ref(fn)
            except TypeError:  # e.g. a plain lambda is weakref-able; others not
                ref = lambda fn=fn: fn  # strong fallback
        with self._lock:
            self._collectors.append(ref)

    def _collected_samples(self) -> List[Dict[str, object]]:
        with self._lock:
            refs = list(self._collectors)
        samples: List[Dict[str, object]] = []
        live: List[object] = []
        for ref in refs:
            fn = ref()
            if fn is None:
                continue  # owner died; prune below
            live.append(ref)
            samples.extend(fn())
        if len(live) != len(refs):
            with self._lock:
                self._collectors = [r for r in self._collectors if r() is not None]
        return samples

    # -- snapshot / exposition ----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The registry state as a JSON-ready document (schema above)."""
        metrics: Dict[str, Dict[str, object]] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            with family.lock:
                children = sorted(family.children.items())
            samples: List[Dict[str, object]] = []
            for key, child in children:
                labels = {k: v for k, v in key}
                if family.type == "histogram":
                    hist: Histogram = child  # type: ignore[assignment]
                    samples.append({
                        "labels": labels,
                        "count": hist.count,
                        "sum": hist.sum,
                        "buckets": hist.cumulative_buckets(),
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics[name] = {
                "type": family.type,
                "help": family.help,
                "samples": samples,
            }
        # Collector-backed samples (counters/gauges only); summed on
        # (name, labels) collisions across live owners.
        collected: Dict[str, Dict[str, object]] = {}
        for sample in self._collected_samples():
            name = str(sample["name"])
            entry = collected.setdefault(name, {
                "type": str(sample.get("type", "counter")),
                "help": str(sample.get("help", "")),
                "values": {},
            })
            key = _label_key(sample.get("labels"))  # type: ignore[arg-type]
            entry["values"][key] = (  # type: ignore[index]
                entry["values"].get(key, 0.0) + float(sample["value"])  # type: ignore[union-attr]
            )
        for name in sorted(collected):
            entry = collected[name]
            if name in metrics:
                raise ValueError(
                    f"collector metric {name!r} collides with a registered "
                    f"instrument"
                )
            metrics[name] = {
                "type": entry["type"],
                "help": entry["help"],
                "samples": [
                    {"labels": {k: v for k, v in key}, "value": value}
                    for key, value in sorted(entry["values"].items())  # type: ignore[union-attr]
                ],
            }
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def expose_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        return text_from_snapshot(self.snapshot())

    def reset(self) -> None:
        """Zero every instrument value (registrations stay intact).

        Cached instrument handles held by instrumented components remain
        valid — only the numbers restart, which is what per-section bench
        accounting and the test suite want.
        """
        with self._lock:
            families = list(self._families.values())
        for family in families:
            with family.lock:
                children = list(family.children.values())
            for child in children:
                child._reset()  # type: ignore[union-attr]


# ---------------------------------------------------------------------------
# Snapshot-document helpers (shared by the registry, the CLI, and CI checks)
# ---------------------------------------------------------------------------

def _bucket_items(buckets: Mapping[str, object]) -> List[Tuple[str, int]]:
    """Histogram bucket entries in ascending bound order.

    Snapshot documents may arrive with lexicographically sorted keys
    (``json.dumps(sort_keys=True)``), so consumers must order buckets by
    the numeric ``le`` bound, never by dict order.
    """
    def _bound(le: str) -> float:
        return math.inf if le == "+Inf" else float(le)

    return [
        (le, int(buckets[le]))
        for le in sorted(buckets, key=_bound)
    ]


def text_from_snapshot(snapshot: Mapping[str, object]) -> str:
    """Render a snapshot document as Prometheus exposition text."""
    lines: List[str] = []
    metrics: Mapping[str, Mapping[str, object]] = snapshot["metrics"]  # type: ignore[assignment]
    for name in sorted(metrics):
        entry = metrics[name]
        kind = str(entry["type"])
        help_text = str(entry.get("help", ""))
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in entry["samples"]:  # type: ignore[index]
            key = _label_key(sample.get("labels"))
            if kind == "histogram":
                for le, count in _bucket_items(sample["buckets"]):
                    labels = _labels_text(key, extra=[("le", le)])
                    lines.append(f"{name}_bucket{labels} {count}")
                lines.append(
                    f"{name}_sum{_labels_text(key)} "
                    f"{_format_value(float(sample['sum']))}"
                )
                lines.append(
                    f"{name}_count{_labels_text(key)} {int(sample['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(key)} "
                    f"{_format_value(float(sample['value']))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def validate_snapshot(document: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid snapshot."""
    if not isinstance(document, Mapping):
        raise ValueError("snapshot must be a JSON object")
    if document.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {document.get('version')!r}"
        )
    metrics = document.get("metrics")
    if not isinstance(metrics, Mapping):
        raise ValueError("snapshot lacks a 'metrics' object")
    for name, entry in metrics.items():
        if not _NAME_RE.match(str(name)):
            raise ValueError(f"invalid metric name {name!r}")
        kind = entry.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"{name}: unknown metric type {kind!r}")
        samples = entry.get("samples")
        if not isinstance(samples, list):
            raise ValueError(f"{name}: 'samples' must be a list")
        for sample in samples:
            labels = sample.get("labels", {})
            if not isinstance(labels, Mapping):
                raise ValueError(f"{name}: sample labels must be an object")
            for label in labels:
                if not _LABEL_NAME_RE.match(str(label)):
                    raise ValueError(f"{name}: invalid label name {label!r}")
            if kind == "histogram":
                buckets = sample.get("buckets")
                if not isinstance(buckets, Mapping) or "+Inf" not in buckets:
                    raise ValueError(
                        f"{name}: histogram sample needs buckets ending at +Inf"
                    )
                counts = [count for _, count in _bucket_items(buckets)]
                if counts != sorted(counts):
                    raise ValueError(
                        f"{name}: histogram buckets must be cumulative"
                    )
                if int(sample.get("count", -1)) != int(counts[-1]):
                    raise ValueError(
                        f"{name}: histogram count disagrees with +Inf bucket"
                    )
                if "sum" not in sample:
                    raise ValueError(f"{name}: histogram sample lacks 'sum'")
            else:
                if "value" not in sample:
                    raise ValueError(f"{name}: sample lacks 'value'")
                float(sample["value"])


def diff_snapshots(
    before: Mapping[str, object], after: Mapping[str, object]
) -> Dict[str, object]:
    """Per-metric deltas ``after − before`` (a valid snapshot document).

    Counters and histograms subtract (series absent from ``before`` count
    from zero); gauges keep the ``after`` value — a gauge is a level, not
    a flow. Series present only in ``before`` are dropped: the registry
    never removes series, so that only happens across a ``reset()``.
    """
    validate_snapshot(before)
    validate_snapshot(after)

    def _by_key(entry: Mapping[str, Any]) -> Dict[_LabelKey, Any]:
        return {
            _label_key(sample.get("labels")): sample
            for sample in entry["samples"]
        }

    out: Dict[str, Dict[str, object]] = {}
    before_metrics: Mapping[str, Mapping[str, object]] = before["metrics"]  # type: ignore[assignment]
    after_metrics: Mapping[str, Mapping[str, object]] = after["metrics"]  # type: ignore[assignment]
    for name, entry in after_metrics.items():
        kind = str(entry["type"])
        old = before_metrics.get(name)
        old_samples = _by_key(old) if old and old["type"] == kind else {}
        samples: List[Dict[str, object]] = []
        for sample in entry["samples"]:  # type: ignore[index]
            key = _label_key(sample.get("labels"))
            prev = old_samples.get(key)
            labels = {k: v for k, v in key}
            if kind == "histogram":
                prev_buckets = prev["buckets"] if prev else {}
                buckets = {
                    le: int(count) - int(prev_buckets.get(le, 0))
                    for le, count in sample["buckets"].items()
                }
                samples.append({
                    "labels": labels,
                    "count": int(sample["count"]) - (int(prev["count"]) if prev else 0),
                    "sum": float(sample["sum"]) - (float(prev["sum"]) if prev else 0.0),
                    "buckets": buckets,
                })
            elif kind == "gauge":
                samples.append({"labels": labels, "value": float(sample["value"])})
            else:
                samples.append({
                    "labels": labels,
                    "value": float(sample["value"]) - (float(prev["value"]) if prev else 0.0),
                })
        out[name] = {"type": kind, "help": entry.get("help", ""), "samples": samples}
    return {"version": SNAPSHOT_VERSION, "metrics": out}


# ---------------------------------------------------------------------------
# A small Prometheus text-format parser (tests + CI validation)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"'
)


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text; raises ``ValueError`` on any malformed line.

    Returns ``{family name: {"type": ..., "help": ..., "samples":
    [(name, labels dict, value), ...]}}``. Validates that every sample
    belongs to a ``TYPE``-declared family (histogram samples may carry the
    ``_bucket``/``_sum``/``_count`` suffixes) and that histogram buckets
    are cumulative.
    """
    families: Dict[str, Dict[str, object]] = {}

    def _family_of(sample_name: str) -> Optional[str]:
        if sample_name in families:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families and families[base]["type"] == "histogram":
                    return base
        return None

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP")
            name = parts[2]
            families.setdefault(
                name, {"type": None, "help": "", "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE")
            entry = families.setdefault(
                parts[2], {"type": None, "help": "", "samples": []}
            )
            if entry["type"] is not None:
                raise ValueError(f"line {lineno}: duplicate TYPE for {parts[2]}")
            entry["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for label in _LABEL_RE.finditer(raw):
                labels[label.group("name")] = (
                    label.group("value")
                    .replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
                consumed += 1
            if consumed != len([p for p in raw.split(",") if p.strip()]):
                raise ValueError(f"line {lineno}: malformed labels {raw!r}")
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)  # raises on garbage
        name = match.group("name")
        family = _family_of(name)
        if family is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        families[family]["samples"].append((name, labels, value))  # type: ignore[union-attr]
    # Histogram invariants: cumulative buckets per label set.
    for name, entry in families.items():
        if entry["type"] != "histogram":
            continue
        series: Dict[_LabelKey, List[Tuple[float, float]]] = {}
        for sample_name, labels, value in entry["samples"]:  # type: ignore[union-attr]
            if not sample_name.endswith("_bucket"):
                continue
            le = labels.get("le")
            if le is None:
                raise ValueError(f"{sample_name}: bucket sample lacks le")
            rest = _label_key({k: v for k, v in labels.items() if k != "le"})
            bound = math.inf if le == "+Inf" else float(le)
            series.setdefault(rest, []).append((bound, value))
        for key, buckets in series.items():
            buckets.sort(key=lambda item: item[0])
            counts = [count for _, count in buckets]
            if counts != sorted(counts):
                raise ValueError(f"{name}: non-cumulative buckets at {key}")
            if not buckets or buckets[-1][0] != math.inf:
                raise ValueError(f"{name}: histogram lacks a +Inf bucket")
    return families
