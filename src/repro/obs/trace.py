"""Span-based tracing: nested phase timings with a Chrome-compatible export.

A *span* is one timed region of the pipeline — ``wfit.prepare``,
``engine.analyze``, a per-part relax slice. Spans are opened with the
:meth:`Tracer.span` context manager, nest via a thread-local stack (the
innermost open span on the current thread is the parent), and record wall
time (``time.perf_counter``) plus CPU time (``time.thread_time``) on exit.
Exceptions propagate untouched; the span is still closed and tagged with
the exception type so a trace shows *where* a failure happened.

Completed **root** spans (spans with no parent) land in a bounded ring —
``deque(maxlen=...)`` — holding the most recent traces with their full
child trees. Export formats:

* :meth:`Tracer.export` — a JSON-ready list of span dicts
  (``name/start_s/wall_s/cpu_s/thread/error/children``);
* :meth:`Tracer.export_chrome` — the Chrome ``trace_event`` format
  (``{"traceEvents": [...]}``, ``ph: "X"`` complete events, µs units),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

When the obs layer is disabled (``REPRO_OBS=0``), :meth:`Tracer.span`
returns a shared no-op context manager: no allocation, no clock reads, no
ring growth — the same object every time, so the disabled hot path costs
one attribute check and one ``with`` on a trivial CM.

Closing a span also feeds its wall time into the default registry's
``repro_span_seconds{span=...}`` histogram, so phase timing shows up in
metrics snapshots even when nobody pulls a trace.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "TRACE_RING_DEFAULT"]

#: Default bound on retained root spans (most recent kept).
TRACE_RING_DEFAULT = 256


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One timed region. Created by :meth:`Tracer.span`; not user-built."""

    __slots__ = (
        "name", "start_s", "wall_s", "cpu_s", "thread", "error", "children",
        "_tracer", "_cpu_start",
    )

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self.name = name
        self._tracer = tracer
        self.start_s = 0.0       # perf_counter at entry
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._cpu_start = 0.0
        self.thread = 0
        self.error: Optional[str] = None
        self.children: List["Span"] = []

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        if stack:
            stack[-1].children.append(self)
        stack.append(self)
        self.thread = threading.get_ident()
        self._cpu_start = time.thread_time()
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        cpu_end = time.thread_time()
        self.wall_s = end - self.start_s
        self.cpu_s = cpu_end - self._cpu_start
        if exc_type is not None:
            self.error = exc_type.__name__
        tracer = self._tracer
        stack = tracer._stack()
        # Exception safety: pop down to (and including) this span even if
        # an inner span leaked past its own __exit__ somehow.
        while stack:
            top = stack.pop()
            if top is self:
                break
        if not stack:
            tracer._finish_root(self)
        tracer._observe(self)
        return False  # never swallow exceptions

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "thread": self.thread,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [c.to_payload() for c in self.children]
        return payload


class Tracer:
    """Owns the thread-local span stacks and the bounded trace ring."""

    def __init__(self, ring_size: int = TRACE_RING_DEFAULT) -> None:
        self._local = threading.local()
        self._ring_lock = threading.Lock()
        self._ring: deque = deque(maxlen=ring_size)  # guarded-by: _ring_lock
        # Epoch anchor mapping perf_counter onto wall-clock time for
        # exported timestamps. Resolved lazily at first export (never at
        # construction): building a tracer inside a deterministic zone must
        # not read the wall clock.
        self._epoch_offset_s: Optional[float] = None  # guarded-by: _ring_lock
        # Lazily-bound hook: set by repro.obs to feed span durations into
        # the default registry without a circular import here.
        self.on_close = None

    # -- internals -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish_root(self, span: Span) -> None:
        with self._ring_lock:
            self._ring.append(span)

    def _observe(self, span: Span) -> None:
        hook = self.on_close
        if hook is not None:
            hook(span)

    def _epoch_offset(self) -> float:
        """The perf_counter→epoch anchor, resolved on first use.

        Export is the only consumer of wall-clock time, so the clocks are
        read here — once — rather than in ``__init__``; call
        :meth:`refresh_epoch` to re-anchor after a wall-clock step (NTP
        adjustment, suspend/resume).
        """
        with self._ring_lock:
            offset = self._epoch_offset_s
            if offset is None:
                offset = self._epoch_offset_s = (
                    time.time() - time.perf_counter()
                )
        return offset

    def refresh_epoch(self) -> float:
        """Re-anchor exported timestamps to the current wall clock."""
        offset = time.time() - time.perf_counter()
        with self._ring_lock:
            self._epoch_offset_s = offset
        return offset

    # -- public API ----------------------------------------------------------

    def span(self, name: str, enabled: bool = True):
        """Context manager timing the enclosed block as span ``name``."""
        if not enabled:
            return _NULL_SPAN
        return Span(self, name)

    def current(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def clear(self) -> None:
        with self._ring_lock:
            self._ring.clear()

    def export(self) -> List[Dict[str, object]]:
        """Recent root spans (oldest first) as JSON-ready dicts."""
        with self._ring_lock:
            roots = list(self._ring)
        return [root.to_payload() for root in roots]

    def export_chrome(self) -> Dict[str, object]:
        """Chrome ``trace_event`` document for chrome://tracing / Perfetto."""
        events: List[Dict[str, object]] = []
        epoch_offset = self._epoch_offset()

        def _emit(span: Span) -> None:
            ts_us = (span.start_s + epoch_offset) * 1e6
            event: Dict[str, object] = {
                "name": span.name,
                "ph": "X",
                "ts": ts_us,
                "dur": span.wall_s * 1e6,
                "pid": 1,
                "tid": span.thread,
                "args": {"cpu_ms": span.cpu_s * 1e3},
            }
            if span.error is not None:
                event["args"]["error"] = span.error  # type: ignore[index]
            events.append(event)
            for child in span.children:
                _emit(child)

        with self._ring_lock:
            roots = list(self._ring)
        for root in roots:
            _emit(root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}
