# reprolint: zone=deterministic
"""What-if optimizer substrate: cost model, access paths, candidate extraction."""

from .access import AccessCostModel, AccessCosts, AccessPath
from .cost_model import CostModel, CostModelConfig, JoinStep, MaintenanceItem, QueryPlan
from .extract import MAX_COMPOSITE_WIDTH, extract_indices
from .selectivity import (
    combined_selectivity,
    join_selectivity,
    predicate_selectivity,
    selectivity_by_column,
)
from .template import PlanTemplate, build_plan_template
from .whatif import WhatIfOptimizer

__all__ = [
    "AccessCostModel",
    "AccessCosts",
    "AccessPath",
    "CostModel",
    "CostModelConfig",
    "JoinStep",
    "MAX_COMPOSITE_WIDTH",
    "MaintenanceItem",
    "PlanTemplate",
    "QueryPlan",
    "WhatIfOptimizer",
    "build_plan_template",
    "combined_selectivity",
    "extract_indices",
    "join_selectivity",
    "predicate_selectivity",
    "selectivity_by_column",
]
