# reprolint: zone=deterministic
"""Access-path enumeration and costing for a single table.

This is where *index interactions* originate, exactly as the paper motivates
(§2): two indices on the same table interact when they are intersected in a
physical plan, or when they compete as alternative access paths so that the
benefit of one is masked by the presence of the other. Indices on different
tables never interact in this module.

All costs are in page-read-equivalent units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..db.index import Index, IndexSizer
from ..db.stats import StatsRepository

__all__ = ["AccessPath", "AccessCostModel", "AccessCosts"]


@dataclass(frozen=True)
class AccessPath:
    """One priced way of reading the qualifying rows of a table.

    Attributes
    ----------
    kind:
        ``"table-scan"``, ``"index-scan"``, ``"index-only-scan"`` or
        ``"index-intersection"``.
    indexes:
        Indices used by the path (empty for a table scan).
    cost:
        Page-read-equivalent cost of the path.
    output_rows:
        Estimated qualifying rows produced.
    sorted_columns:
        Leading key columns the output is ordered by (enables sort
        avoidance for ORDER BY).
    """

    kind: str
    indexes: Tuple[Index, ...]
    cost: float
    output_rows: float
    sorted_columns: Tuple[str, ...] = ()

    @property
    def selection_key(self) -> Tuple[float, str, List[str]]:
        """The deterministic ordering :meth:`AccessCostModel.best_path` and
        the batched :class:`~repro.optimizer.template.PlanTemplate` menus
        share: cheapest first, then kind, then index names."""
        return (self.cost, self.kind, [ix.name for ix in self.indexes])

    def describe(self) -> str:
        if not self.indexes:
            return self.kind
        return f"{self.kind}({', '.join(ix.name for ix in self.indexes)})"


@dataclass(frozen=True)
class AccessCosts:
    """Tunable constants of the access cost model (page-read units)."""

    cpu_per_row: float = 0.001          # predicate evaluation per scanned row
    random_fetch_per_row: float = 0.8   # heap fetch following a secondary index
    rid_sort_per_row: float = 0.002     # RID sort/merge work for intersections
    write_per_row: float = 0.05         # heap write during updates
    index_maint_per_row: float = 2.0    # B-tree entry delete+insert (plus height)

    # Matched-prefix selectivity above this threshold makes an index scan
    # pointless; the enumerator prunes it (the optimizer would too).
    max_useful_selectivity: float = 0.75


class AccessCostModel:
    """Enumerates and prices access paths for one table of a statement."""

    def __init__(
        self,
        stats: StatsRepository,
        sizer: Optional[IndexSizer] = None,
        costs: Optional[AccessCosts] = None,
    ) -> None:
        self._stats = stats
        self._sizer = sizer if sizer is not None else IndexSizer(stats)
        self.costs = costs if costs is not None else AccessCosts()

    # -- primitive costs ---------------------------------------------------

    def table_scan_cost(self, table: str) -> float:
        table_stats = self._stats.table_stats(table)
        return table_stats.page_count + table_stats.row_count * self.costs.cpu_per_row

    def _matched_prefix(
        self,
        index: Index,
        col_sel: Mapping[str, Tuple[float, bool]],
    ) -> Tuple[int, float]:
        """Longest sargable prefix of the index key and its selectivity.

        Equality predicates extend the prefix; a range predicate can only be
        the final matched column (standard B-tree matching rule).
        """
        matched = 0
        selectivity = 1.0
        for column in index.columns:
            entry = col_sel.get(column)
            if entry is None:
                break
            sel, is_eq = entry
            matched += 1
            selectivity *= sel
            if not is_eq:
                break
        return matched, selectivity

    def _index_scan_paths(
        self,
        table: str,
        index: Index,
        col_sel: Mapping[str, Tuple[float, bool]],
        needed_columns: FrozenSet[str],
        residual_selectivity: float,
        allow_index_only: bool,
    ) -> List[AccessPath]:
        table_stats = self._stats.table_stats(table)
        rows = table_stats.row_count
        pages = table_stats.page_count
        matched, matched_sel = self._matched_prefix(index, col_sel)
        covering = index.covers(tuple(needed_columns))
        if matched == 0 and not covering:
            return []
        if matched > 0 and matched_sel > self.costs.max_useful_selectivity and not covering:
            return []

        height = self._sizer.height(index)
        leaf_pages = self._sizer.leaf_pages(index)
        scan_fraction = matched_sel if matched > 0 else 1.0
        leaf_cost = max(1.0, scan_fraction * leaf_pages)
        traverse = float(height)
        matched_rows = scan_fraction * rows
        output_rows = max(rows * residual_selectivity, 0.0)
        paths: List[AccessPath] = []

        sorted_columns = index.columns[: matched or len(index.columns)]
        if allow_index_only and covering:
            cost = traverse + leaf_cost + matched_rows * self.costs.cpu_per_row
            paths.append(AccessPath(
                kind="index-only-scan",
                indexes=(index,),
                cost=cost,
                output_rows=output_rows,
                sorted_columns=index.columns,
            ))
        if matched > 0:
            fetch = min(
                matched_rows * self.costs.random_fetch_per_row,
                float(pages),
            )
            cost = (
                traverse
                + leaf_cost
                + fetch
                + matched_rows * self.costs.cpu_per_row
            )
            paths.append(AccessPath(
                kind="index-scan",
                indexes=(index,),
                cost=cost,
                output_rows=output_rows,
                sorted_columns=sorted_columns,
            ))
        return paths

    def _intersection_paths(
        self,
        table: str,
        indices: Sequence[Index],
        col_sel: Mapping[str, Tuple[float, bool]],
        residual_selectivity: float,
    ) -> List[AccessPath]:
        """Two-way RID-intersection plans (the paper's canonical interaction)."""
        table_stats = self._stats.table_stats(table)
        rows = table_stats.row_count
        pages = table_stats.page_count
        usable: List[Tuple[Index, float, float]] = []
        for index in indices:
            matched, sel = self._matched_prefix(index, col_sel)
            if matched == 0 or sel >= 1.0:
                continue
            height = self._sizer.height(index)
            leaf = max(1.0, sel * self._sizer.leaf_pages(index))
            probe_cost = height + leaf + sel * rows * self.costs.rid_sort_per_row
            usable.append((index, sel, probe_cost))
        paths: List[AccessPath] = []
        for i in range(len(usable)):
            for j in range(i + 1, len(usable)):
                ix_a, sel_a, cost_a = usable[i]
                ix_b, sel_b, cost_b = usable[j]
                if set(ix_a.columns[:1]) == set(ix_b.columns[:1]):
                    continue  # same leading column: intersection is pointless
                combined_sel = sel_a * sel_b
                fetch = min(
                    combined_sel * rows * self.costs.random_fetch_per_row,
                    float(pages),
                )
                cost = cost_a + cost_b + fetch
                output_rows = rows * residual_selectivity
                first, second = sorted((ix_a, ix_b))
                paths.append(AccessPath(
                    kind="index-intersection",
                    indexes=(first, second),
                    cost=cost,
                    output_rows=output_rows,
                ))
        return paths

    # -- public API ----------------------------------------------------------

    def enumerate_paths(
        self,
        table: str,
        col_sel: Mapping[str, Tuple[float, bool]],
        needed_columns: FrozenSet[str],
        indices: AbstractSet[Index],
        allow_index_only: bool = True,
    ) -> List[AccessPath]:
        """All candidate access paths for ``table`` under configuration ``indices``."""
        table_stats = self._stats.table_stats(table)
        residual = 1.0
        for sel, _ in col_sel.values():
            residual *= sel
        output_rows = table_stats.row_count * residual
        paths: List[AccessPath] = [AccessPath(
            kind="table-scan",
            indexes=(),
            cost=self.table_scan_cost(table),
            output_rows=output_rows,
        )]
        on_table = sorted(ix for ix in indices if ix.table == table)
        for index in on_table:
            paths.extend(self._index_scan_paths(
                table, index, col_sel, needed_columns, residual, allow_index_only
            ))
        paths.extend(self._intersection_paths(table, on_table, col_sel, residual))
        return paths

    def best_path(
        self,
        table: str,
        col_sel: Mapping[str, Tuple[float, bool]],
        needed_columns: FrozenSet[str],
        indices: AbstractSet[Index],
        allow_index_only: bool = True,
    ) -> AccessPath:
        """Cheapest access path, with deterministic tie-breaking."""
        paths = self.enumerate_paths(
            table, col_sel, needed_columns, indices, allow_index_only
        )
        return min(paths, key=lambda p: p.selection_key)

    # -- update maintenance --------------------------------------------------

    def index_maintenance_cost(
        self, index: Index, affected_rows: float, key_change: bool
    ) -> float:
        """Cost for one index to absorb ``affected_rows`` modified rows.

        ``key_change`` is True when the statement modifies a key column of
        this index (or inserts/deletes rows), requiring a delete+insert per
        row; otherwise maintenance is free (heap-only update).
        """
        if not key_change or affected_rows <= 0:
            return 0.0
        height = self._sizer.height(index)
        return affected_rows * (height + self.costs.index_maint_per_row)
