# reprolint: zone=deterministic
"""Whole-statement costing: the analytical stand-in for DB2's optimizer.

``CostModel.statement_cost(stmt, X)`` prices the best physical plan for a
statement under hypothetical index configuration ``X`` — the ``cost(q, X)``
primitive of the paper (§2). ``explain`` returns the chosen plan for
inspection.

Design constraints inherited from the paper:

* **Monotonicity**: adding an index never increases a query's cost (more
  plans available), and never decreases an update's maintenance overhead.
* **Interactions** happen within a table (alternative paths, intersections).
  With the default hash-join-only configuration, contributions of different
  tables are additive, so Eq. (2.1) of the paper holds exactly with the
  per-table partition; enabling index-nested-loop joins introduces
  cross-table interactions (exercised by tests, off for the benchmark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..db.index import Index, IndexSizer
from ..db.stats import StatsRepository
from ..query.ast import (
    DeleteStatement,
    InsertStatement,
    JoinPredicate,
    SelectQuery,
    Statement,
    UpdateStatement,
)
from .access import AccessCostModel, AccessCosts, AccessPath
from .selectivity import join_selectivity, selectivity_by_column

__all__ = ["CostModel", "CostModelConfig", "QueryPlan", "JoinStep", "MaintenanceItem"]


@dataclass(frozen=True)
class CostModelConfig:
    """Constants for join/sort costing and optional plan features."""

    hash_cpu_per_row: float = 0.002     # build+probe work per row
    output_cpu_per_row: float = 0.0005  # per produced join output row
    sort_cpu_per_row: float = 0.0008    # per row per log2 level
    inlj_lookup_cost: float = 1.5       # per outer row: traverse + fetch
    enable_inlj: bool = False           # index-nested-loop joins (cross-table
                                        # interactions) — off for benchmarks

    access: AccessCosts = field(default_factory=AccessCosts)


@dataclass(frozen=True)
class JoinStep:
    """One step of the left-deep join pipeline."""

    inner_table: str
    method: str              # "hash" or "index-nested-loop"
    cost: float
    output_rows: float
    index: Optional[Index] = None


@dataclass(frozen=True)
class MaintenanceItem:
    """Index maintenance charge incurred by an update statement."""

    index: Index
    cost: float


@dataclass(frozen=True)
class QueryPlan:
    """The physical plan chosen for a statement under some configuration."""

    statement: Statement
    access_paths: Tuple[Tuple[str, AccessPath], ...]
    join_steps: Tuple[JoinStep, ...] = ()
    sort_cost: float = 0.0
    write_cost: float = 0.0
    maintenance: Tuple[MaintenanceItem, ...] = ()

    @property
    def total_cost(self) -> float:
        return (
            sum(path.cost for _, path in self.access_paths)
            + sum(step.cost for step in self.join_steps)
            + self.sort_cost
            + self.write_cost
            + sum(item.cost for item in self.maintenance)
        )

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        lines: List[str] = []
        for table, path in self.access_paths:
            lines.append(f"access {table}: {path.describe()} cost={path.cost:.1f}")
        for step in self.join_steps:
            via = f" via {step.index.name}" if step.index else ""
            lines.append(
                f"join {step.inner_table} ({step.method}{via}) cost={step.cost:.1f}"
            )
        if self.sort_cost > 0:
            lines.append(f"sort cost={self.sort_cost:.1f}")
        if self.write_cost > 0:
            lines.append(f"write cost={self.write_cost:.1f}")
        for item in self.maintenance:
            lines.append(f"maintain {item.index.name} cost={item.cost:.1f}")
        lines.append(f"total={self.total_cost:.1f}")
        return "\n".join(lines)


class CostModel:
    """Prices statements against a :class:`~repro.db.stats.StatsRepository`."""

    def __init__(
        self,
        stats: StatsRepository,
        config: Optional[CostModelConfig] = None,
    ) -> None:
        self._stats = stats
        self.config = config if config is not None else CostModelConfig()
        self._sizer = IndexSizer(stats)
        self._access = AccessCostModel(stats, self._sizer, self.config.access)

    @property
    def stats(self) -> StatsRepository:
        return self._stats

    @property
    def sizer(self) -> IndexSizer:
        return self._sizer

    @property
    def access_model(self) -> AccessCostModel:
        """The per-table access-path enumerator (shared with plan templates)."""
        return self._access

    # -- select ------------------------------------------------------------

    def _select_plan(self, query: SelectQuery, config: AbstractSet[Index]) -> QueryPlan:
        col_sel: Dict[str, Dict] = {}
        access_paths: List[Tuple[str, AccessPath]] = []
        path_by_table: Dict[str, AccessPath] = {}
        for table in query.tables:
            sels = selectivity_by_column(self._stats, query.predicates_on(table))
            col_sel[table] = dict(sels)
            path = self._access.best_path(
                table,
                sels,
                query.columns_needed(table),
                config,
            )
            path_by_table[table] = path

        join_steps: List[JoinStep] = []
        if len(query.tables) == 1:
            table = query.tables[0]
            access_paths.append((table, path_by_table[table]))
            current_rows = path_by_table[table].output_rows
        else:
            current_rows, access_paths, join_steps = self._order_joins(
                query, path_by_table, config
            )

        sort_cost = self._sort_cost(query, path_by_table, current_rows)
        return QueryPlan(
            statement=query,
            access_paths=tuple(access_paths),
            join_steps=tuple(join_steps),
            sort_cost=sort_cost,
        )

    def _order_joins(
        self,
        query: SelectQuery,
        path_by_table: Dict[str, AccessPath],
        config: AbstractSet[Index],
    ) -> Tuple[float, List[Tuple[str, AccessPath]], List[JoinStep]]:
        """Greedy left-deep join order, smallest estimated input first.

        The join *order* depends only on cardinalities (never on available
        indices), which keeps cost contributions of different tables additive
        under hash joins.
        """
        remaining = set(query.tables)
        first = min(
            remaining,
            key=lambda t: (path_by_table[t].output_rows, t),
        )
        remaining.remove(first)
        joined = {first}
        current_rows = path_by_table[first].output_rows
        access_paths: List[Tuple[str, AccessPath]] = [(first, path_by_table[first])]
        join_steps: List[JoinStep] = []

        while remaining:
            best: Optional[Tuple[float, str, Optional[JoinPredicate]]] = None
            for table in sorted(remaining):
                join_pred = self.connecting_join(query, joined, table)
                if join_pred is None:
                    out = current_rows * path_by_table[table].output_rows
                else:
                    inner_col = join_pred.column_on(table)
                    outer_col = (
                        join_pred.left
                        if join_pred.right.table == table
                        else join_pred.right
                    )
                    sel = join_selectivity(
                        self._stats,
                        outer_col.table, outer_col.column,
                        table, inner_col.column,
                    )
                    out = current_rows * path_by_table[table].output_rows * sel
                key = (out, table)
                if best is None or key < (best[0], best[1]):
                    best = (out, table, join_pred)
            if best is None:
                raise RuntimeError("join enumeration found no next table")
            out_rows, table, join_pred = best
            remaining.remove(table)
            joined.add(table)

            inner_path = path_by_table[table]
            hash_cost = (
                inner_path.cost
                + (current_rows + inner_path.output_rows) * self.config.hash_cpu_per_row
                + out_rows * self.config.output_cpu_per_row
            )
            step_cost = hash_cost
            method = "hash"
            used_index: Optional[Index] = None
            scan_inner = True
            if self.config.enable_inlj and join_pred is not None:
                inner_col = join_pred.column_on(table).column
                for index in sorted(ix for ix in config if ix.table == table):
                    if index.leading_column != inner_col:
                        continue
                    lookup = current_rows * (
                        self._sizer.height(index) + self.config.inlj_lookup_cost
                    )
                    inlj_cost = lookup + out_rows * self.config.output_cpu_per_row
                    if inlj_cost < step_cost:
                        step_cost = inlj_cost
                        method = "index-nested-loop"
                        used_index = index
                        scan_inner = False
            if scan_inner:
                access_paths.append((table, inner_path))
                step_cost -= inner_path.cost if method == "hash" else 0.0
            join_steps.append(JoinStep(
                inner_table=table,
                method=method,
                cost=step_cost,
                output_rows=out_rows,
                index=used_index,
            ))
            current_rows = out_rows
        return current_rows, access_paths, join_steps

    @staticmethod
    def connecting_join(
        query: SelectQuery, joined: AbstractSet[str], table: str
    ) -> Optional[JoinPredicate]:
        """The join predicate linking ``table`` to the already-joined set.

        Public because :mod:`repro.optimizer.template` replays the same
        greedy join-order construction when building a plan template; both
        must agree on which predicate connects each step.
        """
        for join in query.joins:
            if join.touches(table):
                other = join.left.table if join.right.table == table else join.right.table
                if other in joined:
                    return join
        return None

    def _sort_cost(
        self,
        query: SelectQuery,
        path_by_table: Dict[str, AccessPath],
        output_rows: float,
    ) -> float:
        if query.order_by is None:
            return 0.0
        wanted = tuple(c.column for c in query.order_by.columns)
        if len(query.tables) == 1:
            path = path_by_table[query.tables[0]]
            if path.sorted_columns[: len(wanted)] == wanted:
                return 0.0  # index delivers the order
        rows = max(output_rows, 1.0)
        return rows * math.log2(rows + 2.0) * self.config.sort_cpu_per_row

    # -- updates -------------------------------------------------------------

    def _update_plan(self, stmt: UpdateStatement, config: AbstractSet[Index]) -> QueryPlan:
        sels = selectivity_by_column(self._stats, stmt.predicates)
        path = self._access.best_path(
            stmt.table,
            sels,
            stmt.columns_needed(stmt.table),
            config,
            allow_index_only=False,  # must fetch heap rows to modify them
        )
        affected = path.output_rows
        write_cost = affected * self.config.access.write_per_row
        maintenance: List[MaintenanceItem] = []
        set_columns = set(stmt.set_columns)
        for index in sorted(ix for ix in config if ix.table == stmt.table):
            key_change = bool(set_columns.intersection(index.columns))
            cost = self._access.index_maintenance_cost(index, affected, key_change)
            if cost > 0:
                maintenance.append(MaintenanceItem(index, cost))
        return QueryPlan(
            statement=stmt,
            access_paths=((stmt.table, path),),
            write_cost=write_cost,
            maintenance=tuple(maintenance),
        )

    def _delete_plan(self, stmt: DeleteStatement, config: AbstractSet[Index]) -> QueryPlan:
        sels = selectivity_by_column(self._stats, stmt.predicates)
        path = self._access.best_path(
            stmt.table,
            sels,
            stmt.columns_needed(stmt.table),
            config,
            allow_index_only=False,
        )
        affected = path.output_rows
        write_cost = affected * self.config.access.write_per_row
        maintenance = [
            MaintenanceItem(
                index,
                self._access.index_maintenance_cost(index, affected, key_change=True),
            )
            for index in sorted(ix for ix in config if ix.table == stmt.table)
        ]
        maintenance = [m for m in maintenance if m.cost > 0]
        return QueryPlan(
            statement=stmt,
            access_paths=((stmt.table, path),),
            write_cost=write_cost,
            maintenance=tuple(maintenance),
        )

    def _insert_plan(self, stmt: InsertStatement, config: AbstractSet[Index]) -> QueryPlan:
        rows = float(stmt.row_count)
        write_cost = rows * self.config.access.write_per_row
        maintenance = [
            MaintenanceItem(
                index,
                self._access.index_maintenance_cost(index, rows, key_change=True),
            )
            for index in sorted(ix for ix in config if ix.table == stmt.table)
        ]
        maintenance = [m for m in maintenance if m.cost > 0]
        return QueryPlan(
            statement=stmt,
            access_paths=(),
            write_cost=write_cost,
            maintenance=tuple(maintenance),
        )

    # -- public API ----------------------------------------------------------

    def explain(self, statement: Statement, config: AbstractSet[Index]) -> QueryPlan:
        """The best plan for ``statement`` under hypothetical config ``config``."""
        if isinstance(statement, SelectQuery):
            return self._select_plan(statement, config)
        if isinstance(statement, UpdateStatement):
            return self._update_plan(statement, config)
        if isinstance(statement, DeleteStatement):
            return self._delete_plan(statement, config)
        if isinstance(statement, InsertStatement):
            return self._insert_plan(statement, config)
        raise TypeError(f"cannot cost statement of type {type(statement).__name__}")

    def statement_cost(self, statement: Statement, config: AbstractSet[Index]) -> float:
        """``cost(q, X)``: cost of the best plan under configuration ``config``."""
        return self.explain(statement, config).total_cost

    def maintenance_cost(self, statement: Statement, index: Index) -> float:
        """Maintenance charge ``index`` adds to ``statement`` if materialized.

        This charge is *additive and configuration-independent*: affected-row
        estimates depend only on the statement's predicates, never on which
        access path is chosen. The IBG machinery exploits this to avoid
        exponential used-sets on write statements.
        """
        if isinstance(statement, SelectQuery):
            return 0.0
        if index.table != statement.tables_referenced()[0]:
            return 0.0
        access = AccessCostModel(self._stats, self._sizer, self.config.access)
        if isinstance(statement, InsertStatement):
            return access.index_maintenance_cost(
                index, float(statement.row_count), key_change=True
            )
        sels = selectivity_by_column(self._stats, statement.predicates)
        residual = 1.0
        for sel, _ in sels.values():
            residual *= sel
        affected = self._stats.row_count(statement.table) * residual
        if isinstance(statement, DeleteStatement):
            return access.index_maintenance_cost(index, affected, key_change=True)
        if not isinstance(statement, UpdateStatement):
            raise TypeError(f"unsupported statement type: {type(statement).__name__}")
        key_change = bool(set(statement.set_columns) & set(index.columns))
        return access.index_maintenance_cost(index, affected, key_change)
