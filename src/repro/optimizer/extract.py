# reprolint: zone=deterministic
"""Candidate index extraction — the paper's ``extractIndices(q)`` primitive.

DB2's design advisor provides this in the prototype (§5.2.2, Figure 6
line 1); here it is implemented syntactically: every sargable predicate,
join and ORDER BY column yields a single-column index, and bounded composite
indexes are generated in the canonical equality-columns-then-range-column
order plus covering composites for narrow count(*)-style queries.

The output is intentionally a *superset* of useful indices — WFIT's
``topIndices`` is responsible for pruning (Figure 6 line 5).
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set, Tuple

from ..db.index import Index
from ..query.ast import (
    DeleteStatement,
    EqualityPredicate,
    RangePredicate,
    SelectQuery,
    Statement,
    UpdateStatement,
)

__all__ = ["extract_indices", "MAX_COMPOSITE_WIDTH"]

#: Widest composite index the extractor will propose.
MAX_COMPOSITE_WIDTH = 3


def _dedupe(columns: Sequence[str]) -> Tuple[str, ...]:
    seen: Set[str] = set()
    out: List[str] = []
    for column in columns:
        if column not in seen:
            seen.add(column)
            out.append(column)
    return tuple(out)


def _candidates_for_table(
    table: str,
    eq_columns: Sequence[str],
    range_columns: Sequence[str],
    join_columns: Sequence[str],
    order_columns: Sequence[str],
) -> Set[Index]:
    candidates: Set[Index] = set()
    singles = _dedupe([*eq_columns, *range_columns, *join_columns, *order_columns])
    for column in singles:
        candidates.add(Index(table, (column,)))

    # Canonical composite: equality columns first, then the most useful range
    # column (B-tree matching stops at the first range column).
    eq = _dedupe(eq_columns)
    ranges = _dedupe(range_columns)
    if eq and (len(eq) > 1 or ranges):
        key = list(eq[:MAX_COMPOSITE_WIDTH])
        if ranges and len(key) < MAX_COMPOSITE_WIDTH:
            key.append(ranges[0])
        if len(key) > 1:
            candidates.add(Index(table, tuple(key)))

    # Join-driven composites: join column leading (useful for lookup joins),
    # then the best local filter column.
    for join_column in _dedupe(join_columns):
        filters = [c for c in _dedupe([*eq, *ranges]) if c != join_column]
        if filters:
            candidates.add(Index(table, (join_column, filters[0])))

    # ORDER BY composite (delivers the requested order directly).
    order = _dedupe(order_columns)
    if len(order) > 1:
        candidates.add(Index(table, order[:MAX_COMPOSITE_WIDTH]))

    # Covering composite: sargable columns first, then the remaining needed
    # columns as suffix. Enables index-only scans for narrow queries such as
    # the benchmark's count(*) shapes.
    needed = _dedupe([*eq, *ranges, *join_columns, *order_columns])
    if 2 <= len(needed) <= MAX_COMPOSITE_WIDTH:
        key = list(eq)
        if ranges:
            key.append(ranges[0])
        key.extend(c for c in needed if c not in key)
        candidates.add(Index(table, tuple(key[:MAX_COMPOSITE_WIDTH])))
    return candidates


def extract_indices(statement: Statement) -> FrozenSet[Index]:
    """Indices that could plausibly improve ``statement``.

    Updates yield candidates only from their WHERE clause: an index whose key
    is a SET column can never help (it only adds maintenance cost), so it is
    not proposed — though WFIT may still track such an index if another
    statement proposed it.
    """
    candidates: Set[Index] = set()
    if isinstance(statement, SelectQuery):
        for table in statement.tables:
            eq_columns = [
                p.column.column
                for p in statement.predicates_on(table)
                if isinstance(p, EqualityPredicate)
            ]
            range_columns = [
                p.column.column
                for p in statement.predicates_on(table)
                if isinstance(p, RangePredicate)
            ]
            join_columns = [
                j.column_on(table).column for j in statement.joins_on(table)
            ]
            order_columns = (
                [c.column for c in statement.order_by.columns]
                if statement.order_by is not None
                and statement.order_by.table == table
                else []
            )
            candidates.update(_candidates_for_table(
                table, eq_columns, range_columns, join_columns, order_columns
            ))
    elif isinstance(statement, (UpdateStatement, DeleteStatement)):
        table = statement.table
        eq_columns = [
            p.column.column
            for p in statement.predicates_on(table)
            if isinstance(p, EqualityPredicate)
        ]
        range_columns = [
            p.column.column
            for p in statement.predicates_on(table)
            if isinstance(p, RangePredicate)
        ]
        if isinstance(statement, UpdateStatement):
            set_columns = set(statement.set_columns)
            eq_columns = [c for c in eq_columns if c not in set_columns]
            range_columns = [c for c in range_columns if c not in set_columns]
        candidates.update(_candidates_for_table(
            table, eq_columns, range_columns, [], []
        ))
    # INSERT proposes nothing: new indexes only hurt inserts.
    return frozenset(candidates)
