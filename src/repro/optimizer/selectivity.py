# reprolint: zone=deterministic
"""Selectivity estimation for conjunctive predicates.

Uniform-distribution, attribute-independence estimates — the textbook model,
which is also what matters here: the paper evaluates tuning quality *under
the optimizer's own cost model*, so the estimator only needs to be
self-consistent, not accurate against real data.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

from ..db.stats import StatsRepository
from ..query.ast import EqualityPredicate, RangePredicate, TablePredicate

__all__ = [
    "predicate_selectivity",
    "combined_selectivity",
    "selectivity_by_column",
    "join_selectivity",
]


def predicate_selectivity(stats: StatsRepository, pred: TablePredicate) -> float:
    """Selectivity in ``[0, 1]`` of a single predicate."""
    column_stats = stats.column_stats(pred.table, pred.column.column)
    if isinstance(pred, EqualityPredicate):
        return column_stats.eq_selectivity()
    return column_stats.range_selectivity(pred.lo, pred.hi)


def combined_selectivity(
    stats: StatsRepository, preds: Iterable[TablePredicate]
) -> float:
    """Product of per-predicate selectivities (independence assumption)."""
    sel = 1.0
    for pred in preds:
        sel *= predicate_selectivity(stats, pred)
    return sel


def selectivity_by_column(
    stats: StatsRepository, preds: Sequence[TablePredicate]
) -> Mapping[str, Tuple[float, bool]]:
    """Map column name -> (selectivity, is_equality) for sargability checks.

    If several predicates touch the same column their selectivities multiply
    and the column counts as an equality match only if all are equalities.
    """
    out: dict = {}
    for pred in preds:
        name = pred.column.column
        sel = predicate_selectivity(stats, pred)
        is_eq = isinstance(pred, EqualityPredicate)
        if name in out:
            prev_sel, prev_eq = out[name]
            out[name] = (prev_sel * sel, prev_eq and is_eq)
        else:
            out[name] = (sel, is_eq)
    return out


def join_selectivity(
    stats: StatsRepository,
    left_table: str,
    left_column: str,
    right_table: str,
    right_column: str,
) -> float:
    """Equi-join selectivity ``1 / max(ndv_left, ndv_right)``."""
    left_ndv = stats.column_stats(left_table, left_column).n_distinct
    right_ndv = stats.column_stats(right_table, right_column).n_distinct
    return 1.0 / max(left_ndv, right_ndv, 1)
