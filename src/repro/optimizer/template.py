# reprolint: zone=deterministic
"""Per-statement plan templates: batched what-if costing (ISSUE 4).

The scalar :class:`~repro.optimizer.cost_model.CostModel` re-derives
selectivities, the greedy join order, and the per-table access-path menu on
*every* plan optimization, even though — by the paper's own design (§2, §5)
— none of those depend on the hypothetical configuration: the join order is
fixed by cardinalities, selectivities by the predicates, and the candidate
access paths by the statement's sargable columns. Only the *argmin over the
menu* changes with the configuration.

A :class:`PlanTemplate` performs that statement-local work once and compiles
it into flat per-table *menus*:

* every candidate access path of every referenced table, priced and sorted
  by the scalar path's deterministic ``selection_key``, each tagged with the
  mask of index bits it requires;
* the (configuration-independent) join skeleton — greedy join order, hash
  build/probe and output CPU constants per step, and the per-index
  nested-loop-join alternatives when INLJ is enabled;
* additive maintenance charges per candidate index for write statements,
  plus the constant heap-write term;
* the ORDER-BY sort term (constant for joins; per-path sort-avoidance flag
  for single-table queries).

:meth:`PlanTemplate.entry` then prices *any* configuration mask with one
first-available scan per table menu plus a handful of float additions that
replay the scalar plan's summation order **exactly** — the same costs to the
last bit (``tests/optimizer/test_template_property.py`` is the oracle), with
used/plan-used masks included, and no plan objects, frozensets, or path
re-enumeration. The scalar ``CostModel.explain``/``statement_cost`` path is
retained untouched as the equivalence oracle and for plan inspection.

Menu-entry availability is a single mask test (``entry.mask & ~config ==
0``), so pricing the ``2^k`` configurations a WFA part requests costs
``O(2^k · tables · menu)`` int operations — this is what removes the
optimizer bottleneck from small-part (high-part-count) deployments.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.bitset import IndexUniverse
from ..query.ast import (
    DeleteStatement,
    InsertStatement,
    SelectQuery,
    Statement,
    UpdateStatement,
)
from .cost_model import CostModel
from .selectivity import join_selectivity, selectivity_by_column

__all__ = ["PlanTemplate", "build_plan_template"]

#: A priced access-path alternative: (required index bits, path cost,
#: delivers-the-ORDER-BY flag). Menus are sorted by the scalar path's
#: ``AccessPath.selection_key``, so "first available entry" is exactly
#: ``AccessCostModel.best_path`` restricted to the configuration.
_MenuEntry = Tuple[int, float, bool]

#: One table of the join pipeline: (menu, c1, c2, inlj). ``c1 is None``
#: marks the leading (build-side) table; for join tables ``c1``/``c2`` are
#: the hash build+probe and output CPU constants of the step and ``inlj``
#: holds ``(cost, index bit)`` nested-loop alternatives in sorted index
#: order (empty unless INLJ is enabled and an equi-join connects the step).
_Slot = Tuple[Sequence[_MenuEntry], Optional[float], float, Sequence[Tuple[float, int]]]


class PlanTemplate:
    """Configuration-parametric costing for one statement.

    Instances are built by :func:`build_plan_template` and cached per
    statement by :class:`~repro.optimizer.whatif.WhatIfOptimizer`;
    ``covered_mask`` records the candidate bits the menus were enumerated
    over — a request mentioning bits outside it means new indices appeared
    on the statement's tables and the owner must rebuild.
    """

    __slots__ = (
        "kind",
        "covered_mask",
        "_slots",
        "_sort_const",
        "_sort_default",
        "_write_cost",
        "_maintenance",
    )

    def __init__(
        self,
        kind: str,
        covered_mask: int,
        slots: Sequence[_Slot],
        sort_const: float,
        sort_default: float,
        write_cost: float,
        maintenance: Sequence[Tuple[int, float]],
    ) -> None:
        self.kind = kind
        self.covered_mask = covered_mask
        self._slots = tuple(slots)
        self._sort_const = sort_const
        self._sort_default = sort_default
        self._write_cost = write_cost
        self._maintenance = tuple(maintenance)

    @property
    def maintenance_charges(self) -> Tuple[Tuple[int, float], ...]:
        """``(index bit, charge)`` pairs in sorted index order (writes only)."""
        return self._maintenance

    def costs_into(
        self, config_masks: Sequence[int], out
    ) -> List[Tuple[float, int, int]]:
        """Price a batch of (relevance-reduced) masks into ``out``.

        ``out`` is any float container with ``__setitem__`` — typically a
        slice of the work-function kernel's cost vector or a scratch numpy
        buffer. Returns the full ``(cost, used, plan-used)`` memo triples
        in batch order so the caller can install them in the statement
        memo; costs land in ``out`` so array consumers skip the per-entry
        tuple unpacking on the hot path.
        """
        entry = self.entry
        entries: List[Tuple[float, int, int]] = []
        append = entries.append
        for i, mask in enumerate(config_masks):
            triple = entry(mask)
            out[i] = triple[0]
            append(triple)
        return entries

    def entry(self, config_mask: int) -> Tuple[float, int, int]:
        """``(cost, used mask, plan-used mask)`` under ``config_mask``.

        ``config_mask`` must be relevance-reduced and within
        :attr:`covered_mask`; the result triple is bit-identical to what the
        scalar optimize-and-extract path produces for the same mask.
        """
        kind = self.kind
        if kind == "select":
            slots = self._slots
            if len(slots) == 1:
                menu = slots[0][0]
                for e_mask, cost, sort_ok in menu:
                    if not e_mask & ~config_mask:
                        break
                total = cost + (0.0 if sort_ok else self._sort_default)
                return total, e_mask, e_mask
            acc = 0
            steps = 0
            used = 0
            for menu, c1, c2, inlj in slots:
                for e_mask, cost, _ in menu:
                    if not e_mask & ~config_mask:
                        break
                if c1 is None:  # leading table: access cost only, no step
                    acc += cost
                    used |= e_mask
                    continue
                hash_cost = (cost + c1) + c2
                best = hash_cost
                best_ix = 0
                for inlj_cost, ix_bit in inlj:
                    if ix_bit & config_mask and inlj_cost < best:
                        best = inlj_cost
                        best_ix = ix_bit
                if best_ix:
                    steps += best
                    used |= best_ix
                else:
                    acc += cost
                    steps += hash_cost - cost
                    used |= e_mask
            total = (acc + steps) + self._sort_const
            return total, used, used
        # Write statements: menu argmin + constant heap write + additive
        # per-index maintenance (the IBG's exact-decomposition property).
        msum = 0
        maint_used = 0
        for ix_bit, charge in self._maintenance:
            if ix_bit & config_mask:
                msum += charge
                maint_used |= ix_bit
        if kind == "insert":
            return self._write_cost + msum, maint_used, 0
        menu = self._slots[0][0]
        for e_mask, cost, _ in menu:
            if not e_mask & ~config_mask:
                break
        total = (cost + self._write_cost) + msum
        return total, e_mask | maint_used, e_mask


def _menu(
    model: CostModel,
    universe: IndexUniverse,
    table: str,
    col_sel,
    needed_columns,
    candidates,
    wanted_order: Tuple[str, ...],
    allow_index_only: bool = True,
) -> List[_MenuEntry]:
    """The priced, deterministically sorted access-path menu of one table."""
    paths = model.access_model.enumerate_paths(
        table, col_sel, needed_columns, candidates, allow_index_only
    )
    paths.sort(key=lambda p: p.selection_key)
    entries: List[_MenuEntry] = []
    for path in paths:
        mask = 0
        for index in path.indexes:
            mask |= universe.bit_of(index)
        sort_ok = (
            bool(wanted_order)
            and path.sorted_columns[: len(wanted_order)] == wanted_order
        )
        entries.append((mask, path.cost, sort_ok))
    return entries


def _select_template(
    model: CostModel,
    universe: IndexUniverse,
    query: SelectQuery,
    covered_mask: int,
) -> PlanTemplate:
    stats = model.stats
    config = model.config
    candidates = universe.decode(covered_mask)
    wanted_order: Tuple[str, ...] = ()
    if query.order_by is not None:
        wanted_order = tuple(c.column for c in query.order_by.columns)

    menus = {}
    out_rows = {}
    for table in query.tables:
        sels = selectivity_by_column(stats, query.predicates_on(table))
        order = wanted_order if query.order_by is not None and (
            query.order_by.table == table and len(query.tables) == 1
        ) else ()
        menus[table] = _menu(
            model, universe, table, sels, query.columns_needed(table),
            candidates, order,
        )
        # Every path of a table produces the same qualifying-row estimate;
        # the table scan (always first in enumeration) supplies it.
        residual = 1.0
        for sel, _ in sels.values():
            residual *= sel
        out_rows[table] = stats.table_stats(table).row_count * residual

    if len(query.tables) == 1:
        table = query.tables[0]
        sort_default = 0.0
        if query.order_by is not None:
            rows = max(out_rows[table], 1.0)
            sort_default = (
                rows * math.log2(rows + 2.0) * config.sort_cpu_per_row
            )
        return PlanTemplate(
            "select", covered_mask,
            slots=((menus[table], None, 0.0, ()),),
            sort_const=0.0, sort_default=sort_default,
            write_cost=0.0, maintenance=(),
        )

    # Greedy left-deep join skeleton — the same walk as
    # ``CostModel._order_joins`` with the (configuration-independent)
    # cardinalities substituted for concrete access paths.
    remaining = set(query.tables)
    first = min(remaining, key=lambda t: (out_rows[t], t))
    remaining.remove(first)
    joined = {first}
    current_rows = out_rows[first]
    slots: List[_Slot] = [(menus[first], None, 0.0, ())]
    sorted_candidates = sorted(ix for ix in candidates)
    while remaining:
        best = None
        for table in sorted(remaining):
            join_pred = model.connecting_join(query, joined, table)
            if join_pred is None:
                out = current_rows * out_rows[table]
            else:
                inner_col = join_pred.column_on(table)
                outer_col = (
                    join_pred.left
                    if join_pred.right.table == table
                    else join_pred.right
                )
                sel = join_selectivity(
                    stats,
                    outer_col.table, outer_col.column,
                    table, inner_col.column,
                )
                out = current_rows * out_rows[table] * sel
            key = (out, table)
            if best is None or key < (best[0], best[1]):
                best = (out, table, join_pred)
        if best is None:
            raise RuntimeError("join enumeration found no next table")
        step_rows, table, join_pred = best
        remaining.remove(table)
        joined.add(table)
        c1 = (current_rows + out_rows[table]) * config.hash_cpu_per_row
        c2 = step_rows * config.output_cpu_per_row
        inlj: List[Tuple[float, int]] = []
        if config.enable_inlj and join_pred is not None:
            join_col = join_pred.column_on(table).column
            for index in sorted_candidates:
                if index.table != table or index.leading_column != join_col:
                    continue
                lookup = current_rows * (
                    model.sizer.height(index) + config.inlj_lookup_cost
                )
                inlj.append((lookup + c2, universe.bit_of(index)))
        slots.append((menus[table], c1, c2, tuple(inlj)))
        current_rows = step_rows

    sort_const = 0.0
    if query.order_by is not None:
        rows = max(current_rows, 1.0)
        sort_const = rows * math.log2(rows + 2.0) * config.sort_cpu_per_row
    return PlanTemplate(
        "select", covered_mask, slots=slots,
        sort_const=sort_const, sort_default=0.0,
        write_cost=0.0, maintenance=(),
    )


def _write_template(
    model: CostModel,
    universe: IndexUniverse,
    statement: Statement,
    covered_mask: int,
) -> PlanTemplate:
    stats = model.stats
    config = model.config
    candidates = universe.decode(covered_mask)
    table = statement.table
    on_table = sorted(ix for ix in candidates if ix.table == table)
    access = model.access_model

    if isinstance(statement, InsertStatement):
        affected = float(statement.row_count)
        slots: Tuple[_Slot, ...] = ()
        kind = "insert"
    else:
        sels = selectivity_by_column(stats, statement.predicates)
        menu = _menu(
            model, universe, table, sels, statement.columns_needed(table),
            candidates, (), allow_index_only=False,
        )
        residual = 1.0
        for sel, _ in sels.values():
            residual *= sel
        affected = stats.table_stats(table).row_count * residual
        slots = ((menu, None, 0.0, ()),)
        kind = "delete" if isinstance(statement, DeleteStatement) else "update"

    set_columns = (
        set(statement.set_columns)
        if isinstance(statement, UpdateStatement) else None
    )
    maintenance: List[Tuple[int, float]] = []
    for index in on_table:
        key_change = (
            True if set_columns is None
            else bool(set_columns.intersection(index.columns))
        )
        charge = access.index_maintenance_cost(index, affected, key_change)
        if charge > 0:
            maintenance.append((universe.bit_of(index), charge))
    return PlanTemplate(
        kind, covered_mask, slots=slots,
        sort_const=0.0, sort_default=0.0,
        write_cost=affected * config.access.write_per_row,
        maintenance=maintenance,
    )


def build_plan_template(
    model: CostModel,
    universe: IndexUniverse,
    statement: Statement,
    covered_mask: int,
) -> Optional[PlanTemplate]:
    """Compile ``statement`` into a :class:`PlanTemplate` over the candidate
    bits of ``covered_mask`` (all registered indices on its tables).

    Returns None for statement types the template engine does not model —
    the caller then falls back to the scalar per-configuration path, which
    stays authoritative.
    """
    if isinstance(statement, SelectQuery):
        return _select_template(model, universe, statement, covered_mask)
    if isinstance(statement, (UpdateStatement, DeleteStatement, InsertStatement)):
        return _write_template(model, universe, statement, covered_mask)
    return None
