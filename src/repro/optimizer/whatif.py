# reprolint: zone=deterministic
"""The what-if optimizer interface consumed by the tuning algorithms.

Modern optimizers expose hypothetical-configuration costing; the paper's
prototype calls DB2's. :class:`WhatIfOptimizer` provides the same contract
over the analytical :class:`~repro.optimizer.cost_model.CostModel`, plus:

* **Relevance reduction** — only indices on the statement's tables affect
  its plan, so the cache key is the relevant sub-configuration.
* **Used-set extraction** — ``optimize()`` returns the plan cost together
  with the set of indices the plan depends on, which is exactly what the
  Index Benefit Graph of [16] needs.
* **Memoization with call accounting** — ``whatif_calls`` counts every
  costing request; ``optimizations`` counts actual (cache-missing) plan
  optimizations, the expensive quantity the paper reports in §6.2.

Bitset kernel
-------------
Configurations are interned into a shared
:class:`~repro.core.bitset.IndexUniverse` and the memo table keys on
``(statement, relevant-mask)`` ints: relevance reduction is one ``&``
against the statement's table mask and a hit costs one int-dict probe
instead of hashing a frozenset. The frozenset API (``cost``, ``optimize``,
``plan_usage``) is preserved as a thin encode/decode shim at the module
boundary; hot loops use the ``*_mask`` variants or a per-statement
:class:`StatementCosts` handle (see :meth:`WhatIfOptimizer.statement_costs`),
which is what WFA's work-function update drives.

Batched costing (plan templates)
--------------------------------
Memo *misses* are priced by a cached per-statement
:class:`~repro.optimizer.template.PlanTemplate` — selectivities, the greedy
join order, and every candidate access path are computed once per statement,
after which any configuration mask is a pure table-local menu argmin plus
precomputed join/sort/maintenance terms, bit-identical to the scalar
:class:`CostModel` path (retained as the equivalence oracle). The
``optimizations`` counter therefore counts *template builds* plus any scalar
fallbacks: the number of times genuine plan derivation ran, which is the
machine-independent overhead quantity of §6.2.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Tuple

try:  # Optional: the vectorized costs_into() path. Pure-Python callers
    import numpy as _np  # (and the no-numpy CI lane) use the int loop.
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from .. import obs
from ..core.bitset import IndexUniverse
from ..db.index import Index
from ..db.stats import StatsRepository
from ..query.ast import Statement
from .cost_model import CostModel, CostModelConfig, QueryPlan
from .template import PlanTemplate, build_plan_template

__all__ = ["StatementCosts", "WhatIfOptimizer"]

#: Per-statement memo entry: (total cost, used mask, plan-used mask).
_Entry = Tuple[float, int, int]

#: Most-recent statements whose IBG (or failed-build record) is retained.
#: Graph reuse is within-statement (across WFA⁺ parts, and WFIT's
#: chooseCands → analyze sequence), so a small LRU keeps every win while
#: bounding memory over arbitrarily long non-repeating workload streams.
_IBG_CACHE_LIMIT = 64

#: Most-recent statements whose compiled plan template is retained. A
#: template is a few flat tuples per referenced table, so the bound mirrors
#: the statement memo rather than the (heavier) IBG cache.
_TEMPLATE_CACHE_LIMIT = 512

#: Most-recent statements whose cost memo / table tuple is retained. Entries
#: are small, so this is far larger than the IBG bound, but it keeps the
#: optimizer's footprint flat over non-repeating workload streams too.
_STMT_CACHE_LIMIT = 1024


class StatementCosts:
    """Mask-level costing handle for one statement (the WFA hot path).

    Snapshots the statement's table mask once, then answers ``cost(mask)``
    requests with one ``&`` plus one int-keyed dict probe, sharing the
    owning optimizer's memo table (so every part of a WFA⁺ partition and
    every caller of the frozenset API hit the same entries).
    """

    __slots__ = ("_optimizer", "_statement", "_cache")

    def __init__(self, optimizer: "WhatIfOptimizer", statement: Statement) -> None:
        self._optimizer = optimizer
        self._statement = statement
        self._cache = optimizer._statement_cache(statement)

    def costs(self, config_masks: Sequence[int]) -> List[float]:
        """Vectorized :meth:`cost` over many configuration masks.

        The whole batch is priced through the statement's plan template
        (built at most once per statement) — the paper's §5 architecture:
        ``2^k`` configuration costs from a single plan derivation. Repeat
        masks are answered from the shared memo with one int-dict probe.
        """
        out: List[float] = [0.0] * len(config_masks)
        self.costs_into(config_masks, out)
        return out

    def costs_into(self, config_masks: Sequence[int], out) -> None:
        """:meth:`costs`, written into a caller-owned float buffer.

        ``out`` may be any float container supporting ``__setitem__``
        (``array('d')``, a numpy vector, a list); this is how WFA⁺/WFIT
        parts fetch statement costs directly into the work-function
        kernel's cost vector without building a ``2^k`` Python list per
        statement.

        When ``config_masks`` and ``out`` are both numpy vectors (the
        numpy-kernel hot path), relevance reduction runs vectorized: the
        batch collapses to its *distinct* relevant masks (one ``&`` plus
        one ``unique`` over int64), only those hit the memo/template, and
        the answers broadcast back with one gather. Cache accounting is
        identical either way — a request answered without pricing work is
        a hit whether it was deduplicated or individually probed.
        """
        optimizer = self._optimizer
        n = len(config_masks)
        optimizer.whatif_calls += n
        statement = self._statement
        # Recomputed per batch: the universe may have grown (new indices on
        # this statement's tables) since the handle was created.
        tables_mask = optimizer._statement_tables_mask(statement)
        cache = self._cache
        cache_get = cache.get
        optimize = optimizer._optimize_relevant
        if (
            _np is not None
            and isinstance(config_masks, _np.ndarray)
            and isinstance(out, _np.ndarray)
            and 0 <= tables_mask < (1 << 63)
        ):
            relevant = _np.bitwise_and(config_masks, tables_mask)
            uniq, inverse = _np.unique(relevant, return_inverse=True)
            values = _np.empty(len(uniq), dtype=_np.float64)
            miss_masks: List[int] = []
            miss_positions: List[int] = []
            for j, rel in enumerate(uniq.tolist()):
                entry = cache_get(rel)
                if entry is None:
                    miss_masks.append(rel)
                    miss_positions.append(j)
                else:
                    values[j] = entry[0]
            if miss_masks:
                optimizer._price_relevant_batch(
                    statement, miss_masks, cache, values, miss_positions
                )
            _np.take(values, inverse.reshape(-1), out=out)
            optimizer._stmt_hits += n - len(miss_masks)
            return
        if _np is not None and isinstance(config_masks, _np.ndarray):
            # Universe beyond 63 bits: the int64 vector cannot carry the
            # table mask — rewiden to Python ints and take the int loop.
            config_masks = config_masks.tolist()
        hits = 0
        for i, mask in enumerate(config_masks):
            relevant = mask & tables_mask
            entry = cache_get(relevant)
            if entry is None:
                entry = optimize(statement, relevant, cache)
            else:
                hits += 1
            out[i] = entry[0]
        optimizer._stmt_hits += hits


class WhatIfOptimizer:
    """Memoizing what-if costing facade over a :class:`CostModel`."""

    def __init__(
        self,
        stats: StatsRepository,
        config: Optional[CostModelConfig] = None,
    ) -> None:
        self._model = CostModel(stats, config)
        self._universe = IndexUniverse()
        # statement -> {relevant mask -> (cost, used mask, plan-used mask)},
        # LRU-bounded like every statement-keyed table here.
        self._cache: "OrderedDict[Statement, Dict[int, _Entry]]" = OrderedDict()
        self._stmt_tables: "OrderedDict[Statement, Tuple[str, ...]]" = OrderedDict()
        self._maintenance_cache: Dict[Tuple[Statement, Index], float] = {}
        # statement -> its IBG, LRU-bounded (built lazily by bulk costing;
        # grown when a request spans candidates outside the cached root).
        self._ibg_cache: "OrderedDict[Statement, object]" = OrderedDict()
        # statement -> (root, cap) of an IBG build that hit the node cap, so
        # the identical doomed build is not repeated; a larger cap, or a
        # different root, still retries. LRU-bounded like the graph cache.
        self._ibg_failed: "OrderedDict[Statement, Tuple[int, int]]" = OrderedDict()
        # statement -> compiled PlanTemplate, LRU-bounded; rebuilt when new
        # candidate indices appear on the statement's tables.
        self._template_cache: "OrderedDict[Statement, PlanTemplate]" = OrderedDict()
        self.whatif_calls = 0
        self.optimizations = 0
        # Observability counters behind cache_stats(): hit/miss/eviction
        # accounting for the statement memo, the plan-template cache, and
        # the IBG cache.
        self._stmt_hits = 0
        self._stmt_misses = 0
        self._stmt_evictions = 0
        self._template_hits = 0
        self._template_builds = 0
        self._template_evictions = 0
        self._template_mask_costs = 0
        self._ibg_graph_hits = 0
        self._ibg_graph_builds = 0
        self._ibg_evictions = 0
        # The counters above stay plain per-instance ints (no lock, no
        # registry call on the costing hot path; benches build several
        # optimizers per process and read them per instance). The default
        # registry samples them at snapshot time through a weak collector,
        # summing across live instances.
        obs.default_registry().register_collector(self._collect_obs)

    def _collect_obs(self):
        """Registry collector: current counter values as metric samples."""
        pairs = (
            ("repro_whatif_calls_total",
             "cost_mask requests (memo hits included).", self.whatif_calls),
            ("repro_whatif_optimizations_total",
             "Genuine plan derivations (template builds + scalar plans).",
             self.optimizations),
            ("repro_whatif_statement_hits_total",
             "Statement-memo hits.", self._stmt_hits),
            ("repro_whatif_statement_misses_total",
             "Statement-memo misses.", self._stmt_misses),
            ("repro_whatif_statement_evictions_total",
             "Statement-memo LRU evictions.", self._stmt_evictions),
            ("repro_whatif_template_hits_total",
             "Plan-template cache hits.", self._template_hits),
            ("repro_whatif_template_builds_total",
             "Plan-template compilations.", self._template_builds),
            ("repro_whatif_template_evictions_total",
             "Plan-template LRU evictions.", self._template_evictions),
            ("repro_whatif_template_mask_costs_total",
             "Memo misses priced by a template menu walk.",
             self._template_mask_costs),
            ("repro_whatif_ibg_hits_total",
             "IBG cache hits.", self._ibg_graph_hits),
            ("repro_whatif_ibg_builds_total",
             "IBG constructions.", self._ibg_graph_builds),
            ("repro_whatif_ibg_evictions_total",
             "IBG cache LRU evictions.", self._ibg_evictions),
        )
        return [
            {"name": name, "type": "counter", "help": help_text, "value": value}
            for name, help_text, value in pairs
        ]

    @property
    def cost_model(self) -> CostModel:
        return self._model

    @property
    def stats(self) -> StatsRepository:
        return self._model.stats

    @property
    def mask_universe(self) -> IndexUniverse:
        """The shared index-to-bit interning table for mask-level callers."""
        return self._universe

    # -- relevance reduction -------------------------------------------------

    def _tables_of(self, statement: Statement) -> Tuple[str, ...]:
        tables = self._stmt_tables.get(statement)
        if tables is None:
            tables = tuple(dict.fromkeys(statement.tables_referenced()))
            self._stmt_tables[statement] = tables
            while len(self._stmt_tables) > _STMT_CACHE_LIMIT:
                self._stmt_tables.popitem(last=False)
        return tables

    def _statement_tables_mask(self, statement: Statement) -> int:
        return self._universe.tables_mask(self._tables_of(statement))

    def relevant_subset(
        self, statement: Statement, config: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Indices of ``config`` that can influence ``statement``'s plan."""
        tables = set(self._tables_of(statement))
        return frozenset(ix for ix in config if ix.table in tables)

    def relevant_mask(self, statement: Statement, config_mask: int) -> int:
        """Mask analogue of :meth:`relevant_subset` (one ``&``)."""
        return config_mask & self._statement_tables_mask(statement)

    # -- plan inspection helpers ----------------------------------------------

    @staticmethod
    def _plan_indices(plan: QueryPlan) -> FrozenSet[Index]:
        """Indices the chosen *plan* depends on (access paths and joins)."""
        used = set()
        for _, path in plan.access_paths:
            used.update(path.indexes)
        for step in plan.join_steps:
            if step.index is not None:
                used.add(step.index)
        return frozenset(used)

    @staticmethod
    def _used_indices(plan: QueryPlan) -> FrozenSet[Index]:
        """Indices the plan's cost actually depends on.

        Access-path and join indices lower the cost; maintenance-paying
        indices raise it. Either way, removing any other index from the
        configuration leaves the cost unchanged — the property the IBG
        traversal relies on.
        """
        used = set(WhatIfOptimizer._plan_indices(plan))
        for item in plan.maintenance:
            used.add(item.index)
        return frozenset(used)

    # -- the memo table -------------------------------------------------------

    def _statement_cache(self, statement: Statement) -> Dict[int, _Entry]:
        cache = self._cache.get(statement)
        if cache is None:
            cache = self._cache[statement] = {}
            while len(self._cache) > _STMT_CACHE_LIMIT:
                self._cache.popitem(last=False)
                self._stmt_evictions += 1
        return cache

    def _statement_template(self, statement: Statement) -> Optional[PlanTemplate]:
        """The statement's compiled :class:`PlanTemplate` (built on demand).

        A cached template is reused while it covers every candidate index
        registered on the statement's tables; new relevant candidates
        trigger a rebuild (old memo entries stay valid — menus only grow).
        Returns None for statement types the template engine cannot model;
        the scalar path then remains authoritative.
        """
        tables_mask = self._statement_tables_mask(statement)
        template = self._template_cache.get(statement)
        if template is not None and not tables_mask & ~template.covered_mask:
            self._template_cache.move_to_end(statement)
            self._template_hits += 1
            return template
        template = build_plan_template(
            self._model, self._universe, statement, tables_mask
        )
        if template is None:
            return None
        # A build performs the statement's one-off plan derivation work
        # (selectivities, join order, path enumeration): the honest unit
        # of "actual plan optimizations" once batching is on.
        self._template_builds += 1
        self.optimizations += 1
        self._template_cache[statement] = template
        self._template_cache.move_to_end(statement)
        while len(self._template_cache) > _TEMPLATE_CACHE_LIMIT:
            self._template_cache.popitem(last=False)
            self._template_evictions += 1
        return template

    def _optimize_relevant(
        self,
        statement: Statement,
        relevant_mask: int,
        cache: Dict[int, _Entry],
    ) -> _Entry:
        """Cache miss: price the mask via the plan template (scalar fallback)."""
        self._stmt_misses += 1
        template = self._statement_template(statement)
        if template is not None:
            entry = template.entry(relevant_mask)
            self._template_mask_costs += 1
        else:
            self.optimizations += 1
            universe = self._universe
            plan = self._model.explain(statement, universe.decode(relevant_mask))
            entry = (
                plan.total_cost,
                universe.encode(self._used_indices(plan)),
                universe.encode(self._plan_indices(plan)),
            )
        cache[relevant_mask] = entry
        return entry

    def _price_relevant_batch(
        self,
        statement: Statement,
        relevant_masks: List[int],
        cache: Dict[int, _Entry],
        values,
        positions: List[int],
    ) -> None:
        """Price a batch of distinct memo-missing relevant masks at once.

        The batched twin of :meth:`_optimize_relevant`: the statement's
        plan template is fetched *once* for the whole batch and the masks
        are priced through :meth:`PlanTemplate.costs_into`; statements the
        template engine cannot model fall back to the scalar oracle per
        mask. Entries land in the shared memo and their costs in
        ``values`` at the given ``positions``.
        """
        self._stmt_misses += len(relevant_masks)
        template = self._statement_template(statement)
        if template is not None:
            costs = [0.0] * len(relevant_masks)
            entries = template.costs_into(relevant_masks, costs)
            self._template_mask_costs += len(relevant_masks)
            for rel, entry in zip(relevant_masks, entries):
                cache[rel] = entry
            for pos, cost in zip(positions, costs):
                values[pos] = cost
            return
        universe = self._universe
        for pos, rel in zip(positions, relevant_masks):
            self.optimizations += 1
            plan = self._model.explain(statement, universe.decode(rel))
            entry = (
                plan.total_cost,
                universe.encode(self._used_indices(plan)),
                universe.encode(self._plan_indices(plan)),
            )
            cache[rel] = entry
            values[pos] = entry[0]

    def _lookup_mask(self, statement: Statement, config_mask: int) -> _Entry:
        self.whatif_calls += 1
        relevant = config_mask & self._statement_tables_mask(statement)
        cache = self._statement_cache(statement)
        entry = cache.get(relevant)
        if entry is None:
            entry = self._optimize_relevant(statement, relevant, cache)
        else:
            self._stmt_hits += 1
        return entry

    def plan_usage_masks(
        self, statement: Statement, config_masks: Sequence[int]
    ) -> List[Tuple[float, int]]:
        """Batched :meth:`plan_usage_mask`: ``(cost, plan-used mask)`` per
        requested configuration, priced through the statement's template
        with one handle fetch for the whole batch (what IBG construction
        drives wave by wave)."""
        self.whatif_calls += len(config_masks)
        tables_mask = self._statement_tables_mask(statement)
        cache = self._statement_cache(statement)
        cache_get = cache.get
        out: List[Tuple[float, int]] = []
        for mask in config_masks:
            relevant = mask & tables_mask
            entry = cache_get(relevant)
            if entry is None:
                entry = self._optimize_relevant(statement, relevant, cache)
            else:
                self._stmt_hits += 1
            out.append((entry[0], entry[2]))
        return out

    # -- the statement IBG (configuration-parametric costing) -----------------

    def _statement_ibg(
        self,
        statement: Statement,
        union_mask: int,
        max_nodes: int = 4096,
        strict: bool = False,
    ):
        """The cached IBG of ``statement`` covering ``union_mask``.

        A cached graph is reused whenever its root covers the requested
        candidates (and, in strict mode, respects ``max_nodes``); otherwise
        it is rebuilt over the union of both roots (the per-subset plan
        memo makes the rebuild pay only for new nodes). A build that hits
        the node cap is memoized so it is not repeated for every covered
        request; non-strict callers then get None and fall back to direct
        memoized optimization, strict callers get the RuntimeError.
        """
        cached = self._ibg_cache.get(statement)
        root = union_mask
        if cached is not None:
            self._ibg_cache.move_to_end(statement)
            if union_mask & ~cached.candidates_mask == 0:
                if not strict or cached.node_count <= max_nodes:
                    self._ibg_graph_hits += 1
                    return cached
                # The cached cover is over this caller's cap: fall through
                # and build over just the requested root, which may fit.
            else:
                root = union_mask | cached.candidates_mask
        failed = self._ibg_failed.get(statement)
        # Skip only the *identical* doomed build (same root, no larger cap):
        # a smaller or different root may well fit under the cap.
        if failed is not None and root == failed[0] and max_nodes <= failed[1]:
            if strict:
                raise RuntimeError(
                    f"IBG for {statement!r} previously exceeded the node cap"
                )
            return None
        # Imported here: the graph module imports this one at module scope.
        from ..ibg.graph import build_ibg

        try:
            graph = build_ibg(
                self, statement, self._universe.decode(root), max_nodes=max_nodes
            )
            self._ibg_graph_builds += 1
        except RuntimeError:
            self._ibg_failed[statement] = (root, max_nodes)
            self._ibg_failed.move_to_end(statement)
            while len(self._ibg_failed) > _IBG_CACHE_LIMIT:
                self._ibg_failed.popitem(last=False)
            if strict:
                raise
            return None
        # A success covering a previously failed root invalidates the
        # failure memo (e.g. the failure was at a smaller cap).
        if failed is not None and failed[0] & ~graph.candidates_mask == 0:
            self._ibg_failed.pop(statement, None)
        # Never replace a cached graph with one covering fewer candidates
        # (possible only via the strict over-cap rebuild above).
        if cached is None or cached.candidates_mask & ~graph.candidates_mask == 0:
            self._ibg_cache[statement] = graph
            self._ibg_cache.move_to_end(statement)
            while len(self._ibg_cache) > _IBG_CACHE_LIMIT:
                self._ibg_cache.popitem(last=False)
                self._ibg_evictions += 1
        return graph

    def statement_ibg(self, statement: Statement, candidates: AbstractSet[Index],
                      max_nodes: int = 4096):
        """The statement's Index Benefit Graph covering ``candidates``.

        Cached per statement and shared with bulk mask costing, so WFIT's
        candidate-maintenance sweep and the WFA work-function update answer
        their configuration questions from one graph. Raises
        :class:`RuntimeError` when the graph exceeds ``max_nodes``.
        """
        union = self.relevant_mask(statement, self._universe.encode(candidates))
        return self._statement_ibg(statement, union, max_nodes=max_nodes, strict=True)

    # -- mask-level interface (the hot path) ----------------------------------

    def statement_costs(self, statement: Statement) -> StatementCosts:
        """A per-statement mask costing handle (see :class:`StatementCosts`)."""
        return StatementCosts(self, statement)

    def cost_mask(self, statement: Statement, config_mask: int) -> float:
        """``cost(q, X)`` with ``X`` encoded in :attr:`mask_universe`."""
        return self._lookup_mask(statement, config_mask)[0]

    def plan_usage_mask(
        self, statement: Statement, config_mask: int
    ) -> Tuple[float, int]:
        """``(cost, plan-used mask)`` — excludes maintenance-only indices."""
        entry = self._lookup_mask(statement, config_mask)
        return entry[0], entry[2]

    # -- frozenset interface (module-boundary shim) ----------------------------

    def optimize(
        self, statement: Statement, config: AbstractSet[Index]
    ) -> Tuple[float, FrozenSet[Index]]:
        """``(cost(q, X), used(q, X))`` with caching on the relevant subset."""
        entry = self._lookup_mask(statement, self._universe.encode(config))
        return entry[0], self._universe.decode(entry[1])

    def plan_usage(
        self, statement: Statement, config: AbstractSet[Index]
    ) -> Tuple[float, FrozenSet[Index]]:
        """``(cost, plan-used)`` — used indices excluding maintenance-only
        ones (those affect the cost additively; see ``maintenance_cost``)."""
        entry = self._lookup_mask(statement, self._universe.encode(config))
        return entry[0], self._universe.decode(entry[2])

    def cost(self, statement: Statement, config: AbstractSet[Index]) -> float:
        """``cost(q, X)``: cost of the best plan under configuration ``config``."""
        return self._lookup_mask(statement, self._universe.encode(config))[0]

    def maintenance_cost(self, statement: Statement, index: Index) -> float:
        """Config-independent maintenance charge of ``index`` (0 for reads)."""
        key = (statement, index)
        cached = self._maintenance_cache.get(key)
        if cached is None:
            cached = self._model.maintenance_cost(statement, index)
            self._maintenance_cache[key] = cached
        return cached

    def explain(self, statement: Statement, config: AbstractSet[Index]) -> QueryPlan:
        """The chosen plan (not cached; used for inspection and examples)."""
        return self._model.explain(
            statement, self.relevant_subset(statement, config)
        )

    def benefit(
        self,
        statement: Statement,
        extra: AbstractSet[Index],
        base: AbstractSet[Index],
    ) -> float:
        """``benefit_q(Y, X) = cost(q, X) − cost(q, Y ∪ X)`` (§2).

        Negative for update statements when ``extra`` incurs maintenance.
        """
        base_mask = self._universe.encode(base)
        extra_mask = self._universe.encode(extra)
        return self.cost_mask(statement, base_mask) - self.cost_mask(
            statement, base_mask | extra_mask
        )

    def cache_stats(self, reset: bool = False) -> Dict[str, float]:
        """Hit/miss/eviction counters for the memo, template and IBG caches.

        ``statement_*`` accounts the per-statement cost memo (a hit is a
        costing request answered without pricing work); ``template_*``
        accounts the compiled plan-template cache — ``template_builds``
        counts genuine plan derivations, ``template_mask_costs`` the memo
        misses priced by a template menu walk instead of a scalar
        optimization. ``ibg_*`` accounts the per-statement Index Benefit
        Graph cache (WFIT's candidate analysis). Hit rates are derived;
        they are 0.0 while no requests have been observed. Counters are
        cumulative since construction or the last reset; with
        ``reset=True`` the returned values cover the window since the
        previous reset and the counters restart at zero (the caches
        themselves are untouched), which is how the bench harnesses report
        per-section counts instead of run totals.
        """
        stmt_lookups = self._stmt_hits + self._stmt_misses
        template_requests = self._template_hits + self._template_builds
        ibg_requests = self._ibg_graph_hits + self._ibg_graph_builds
        stats = {
            "statement_hits": self._stmt_hits,
            "statement_misses": self._stmt_misses,
            "statement_evictions": self._stmt_evictions,
            "statement_hit_rate": (
                self._stmt_hits / stmt_lookups if stmt_lookups else 0.0
            ),
            "template_hits": self._template_hits,
            "template_builds": self._template_builds,
            "template_evictions": self._template_evictions,
            "template_hit_rate": (
                self._template_hits / template_requests
                if template_requests else 0.0
            ),
            "template_mask_costs": self._template_mask_costs,
            "ibg_graph_hits": self._ibg_graph_hits,
            "ibg_graph_builds": self._ibg_graph_builds,
            "ibg_evictions": self._ibg_evictions,
            "ibg_hit_rate": (
                self._ibg_graph_hits / ibg_requests if ibg_requests else 0.0
            ),
            "whatif_calls": self.whatif_calls,
            "optimizations": self.optimizations,
        }
        if reset:
            self.reset_counters()
        return stats

    def reset_counters(self) -> None:
        self.whatif_calls = 0
        self.optimizations = 0
        self._stmt_hits = 0
        self._stmt_misses = 0
        self._stmt_evictions = 0
        self._template_hits = 0
        self._template_builds = 0
        self._template_evictions = 0
        self._template_mask_costs = 0
        self._ibg_graph_hits = 0
        self._ibg_graph_builds = 0
        self._ibg_evictions = 0

    def clear_cache(self) -> None:
        self._cache.clear()
        self._maintenance_cache.clear()
        self._stmt_tables.clear()
        self._ibg_cache.clear()
        self._ibg_failed.clear()
        self._template_cache.clear()
