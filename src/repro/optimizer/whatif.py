"""The what-if optimizer interface consumed by the tuning algorithms.

Modern optimizers expose hypothetical-configuration costing; the paper's
prototype calls DB2's. :class:`WhatIfOptimizer` provides the same contract
over the analytical :class:`~repro.optimizer.cost_model.CostModel`, plus:

* **Relevance reduction** — only indices on the statement's tables affect
  its plan, so the cache key is the relevant sub-configuration.
* **Used-set extraction** — ``optimize()`` returns the plan cost together
  with the set of indices the plan depends on, which is exactly what the
  Index Benefit Graph of [16] needs.
* **Memoization with call accounting** — ``whatif_calls`` counts every
  costing request; ``optimizations`` counts actual (cache-missing) plan
  optimizations, the expensive quantity the paper reports in §6.2.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Optional, Tuple

from ..db.index import Index
from ..db.stats import StatsRepository
from ..query.ast import Statement
from .cost_model import CostModel, CostModelConfig, QueryPlan

__all__ = ["WhatIfOptimizer"]


class WhatIfOptimizer:
    """Memoizing what-if costing facade over a :class:`CostModel`."""

    def __init__(
        self,
        stats: StatsRepository,
        config: Optional[CostModelConfig] = None,
    ) -> None:
        self._model = CostModel(stats, config)
        self._cache: Dict[
            Tuple[Statement, FrozenSet[Index]],
            Tuple[float, FrozenSet[Index], FrozenSet[Index]],
        ] = {}
        self._maintenance_cache: Dict[Tuple[Statement, Index], float] = {}
        self.whatif_calls = 0
        self.optimizations = 0

    @property
    def cost_model(self) -> CostModel:
        return self._model

    @property
    def stats(self) -> StatsRepository:
        return self._model.stats

    def relevant_subset(
        self, statement: Statement, config: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        """Indices of ``config`` that can influence ``statement``'s plan."""
        tables = set(statement.tables_referenced())
        return frozenset(ix for ix in config if ix.table in tables)

    @staticmethod
    def _plan_indices(plan: QueryPlan) -> FrozenSet[Index]:
        """Indices the chosen *plan* depends on (access paths and joins)."""
        used = set()
        for _, path in plan.access_paths:
            used.update(path.indexes)
        for step in plan.join_steps:
            if step.index is not None:
                used.add(step.index)
        return frozenset(used)

    @staticmethod
    def _used_indices(plan: QueryPlan) -> FrozenSet[Index]:
        """Indices the plan's cost actually depends on.

        Access-path and join indices lower the cost; maintenance-paying
        indices raise it. Either way, removing any other index from the
        configuration leaves the cost unchanged — the property the IBG
        traversal relies on.
        """
        used = set(WhatIfOptimizer._plan_indices(plan))
        for item in plan.maintenance:
            used.add(item.index)
        return frozenset(used)

    def _lookup(
        self, statement: Statement, config: AbstractSet[Index]
    ) -> Tuple[float, FrozenSet[Index], FrozenSet[Index]]:
        self.whatif_calls += 1
        key = (statement, self.relevant_subset(statement, config))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.optimizations += 1
        plan = self._model.explain(statement, key[1])
        result = (
            plan.total_cost,
            self._used_indices(plan),
            self._plan_indices(plan),
        )
        self._cache[key] = result
        return result

    def optimize(
        self, statement: Statement, config: AbstractSet[Index]
    ) -> Tuple[float, FrozenSet[Index]]:
        """``(cost(q, X), used(q, X))`` with caching on the relevant subset."""
        cost, used, _ = self._lookup(statement, config)
        return cost, used

    def plan_usage(
        self, statement: Statement, config: AbstractSet[Index]
    ) -> Tuple[float, FrozenSet[Index]]:
        """``(cost, plan-used)`` — used indices excluding maintenance-only
        ones (those affect the cost additively; see ``maintenance_cost``)."""
        cost, _, plan_used = self._lookup(statement, config)
        return cost, plan_used

    def maintenance_cost(self, statement: Statement, index: Index) -> float:
        """Config-independent maintenance charge of ``index`` (0 for reads)."""
        key = (statement, index)
        cached = self._maintenance_cache.get(key)
        if cached is None:
            cached = self._model.maintenance_cost(statement, index)
            self._maintenance_cache[key] = cached
        return cached

    def cost(self, statement: Statement, config: AbstractSet[Index]) -> float:
        """``cost(q, X)``: cost of the best plan under configuration ``config``."""
        return self.optimize(statement, config)[0]

    def explain(self, statement: Statement, config: AbstractSet[Index]) -> QueryPlan:
        """The chosen plan (not cached; used for inspection and examples)."""
        return self._model.explain(
            statement, self.relevant_subset(statement, config)
        )

    def benefit(
        self,
        statement: Statement,
        extra: AbstractSet[Index],
        base: AbstractSet[Index],
    ) -> float:
        """``benefit_q(Y, X) = cost(q, X) − cost(q, Y ∪ X)`` (§2).

        Negative for update statements when ``extra`` incurs maintenance.
        """
        return self.cost(statement, base) - self.cost(statement, set(base) | set(extra))

    def reset_counters(self) -> None:
        self.whatif_calls = 0
        self.optimizations = 0

    def clear_cache(self) -> None:
        self._cache.clear()
        self._maintenance_cache.clear()
