"""Statement representation: AST, SQL-subset parser, and fluent builders."""

from .ast import (
    ColumnRef,
    DeleteStatement,
    EqualityPredicate,
    InsertStatement,
    JoinPredicate,
    OrderBy,
    RangePredicate,
    SelectQuery,
    Statement,
    TablePredicate,
    UpdateStatement,
)
from .builder import DeleteBuilder, SelectBuilder, UpdateBuilder, delete, select, update
from .parser import ParseError, parse_statement, to_sql

__all__ = [
    "ColumnRef",
    "DeleteBuilder",
    "DeleteStatement",
    "EqualityPredicate",
    "InsertStatement",
    "JoinPredicate",
    "OrderBy",
    "ParseError",
    "RangePredicate",
    "SelectBuilder",
    "SelectQuery",
    "Statement",
    "TablePredicate",
    "UpdateBuilder",
    "UpdateStatement",
    "delete",
    "parse_statement",
    "select",
    "to_sql",
    "update",
]
