"""Statement representation consumed by the what-if optimizer.

Statements are immutable, hashable value objects: the what-if cache keys on
``(statement, configuration)``, mirroring the configuration-parametric
optimization of Bruno & Nehme [8] that the paper cites for fast repeated
what-if calls.

The modelled SQL subset matches the paper's benchmark workload: conjunctive
select-project-join queries (equality / range / BETWEEN predicates, equi-
joins, optional ORDER BY, ``count(*)`` or a column projection) plus UPDATE /
INSERT / DELETE statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, Union

__all__ = [
    "ColumnRef",
    "EqualityPredicate",
    "RangePredicate",
    "TablePredicate",
    "JoinPredicate",
    "OrderBy",
    "SelectQuery",
    "UpdateStatement",
    "InsertStatement",
    "DeleteStatement",
    "Statement",
]


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A reference to ``table.column`` with the table fully qualified."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class EqualityPredicate:
    """``column = literal``. The literal value itself does not matter for
    uniform-distribution selectivity, but is kept for display/round-tripping."""

    column: ColumnRef
    value: object = None

    @property
    def table(self) -> str:
        return self.column.table

    def __str__(self) -> str:
        return f"{self.column} = {self.value!r}"


@dataclass(frozen=True)
class RangePredicate:
    """``lo <= column <= hi`` with either bound optional (open interval)."""

    column: ColumnRef
    lo: Optional[float] = None
    hi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is None:
            raise ValueError("range predicate needs at least one bound")
        if self.lo is not None and self.hi is not None and self.hi < self.lo:
            raise ValueError(f"empty range: [{self.lo}, {self.hi}]")

    @property
    def table(self) -> str:
        return self.column.table

    def __str__(self) -> str:
        if self.lo is not None and self.hi is not None:
            return f"{self.column} BETWEEN {self.lo} AND {self.hi}"
        if self.lo is not None:
            return f"{self.column} >= {self.lo}"
        return f"{self.column} <= {self.hi}"


TablePredicate = Union[EqualityPredicate, RangePredicate]


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join ``left = right`` between columns of two tables."""

    left: ColumnRef
    right: ColumnRef

    def __post_init__(self) -> None:
        if self.left.table == self.right.table:
            raise ValueError("join predicate must span two tables")

    def touches(self, table: str) -> bool:
        return table in (self.left.table, self.right.table)

    def column_on(self, table: str) -> ColumnRef:
        if self.left.table == table:
            return self.left
        if self.right.table == table:
            return self.right
        raise ValueError(f"join {self} does not touch table {table!r}")

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class OrderBy:
    """ORDER BY over columns of a single table (ascending)."""

    columns: Tuple[ColumnRef, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("ORDER BY needs at least one column")
        tables = {c.table for c in self.columns}
        if len(tables) != 1:
            raise ValueError("ORDER BY columns must come from a single table")

    @property
    def table(self) -> str:
        return self.columns[0].table


@dataclass(frozen=True)
class SelectQuery:
    """A conjunctive select-project-join query.

    ``projection`` empty means ``count(*)`` (the benchmark's common shape).
    """

    tables: Tuple[str, ...]
    predicates: Tuple[TablePredicate, ...] = ()
    joins: Tuple[JoinPredicate, ...] = ()
    projection: Tuple[ColumnRef, ...] = ()
    order_by: Optional[OrderBy] = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("query must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError("duplicate table references are not supported")
        known = set(self.tables)
        for pred in self.predicates:
            if pred.table not in known:
                raise ValueError(f"predicate {pred} on unreferenced table")
        for join in self.joins:
            if join.left.table not in known or join.right.table not in known:
                raise ValueError(f"join {join} on unreferenced table")
        for col in self.projection:
            if col.table not in known:
                raise ValueError(f"projected column {col} on unreferenced table")
        if self.order_by is not None and self.order_by.table not in known:
            raise ValueError("ORDER BY on unreferenced table")

    @property
    def is_update(self) -> bool:
        return False

    def tables_referenced(self) -> Tuple[str, ...]:
        return self.tables

    def predicates_on(self, table: str) -> Tuple[TablePredicate, ...]:
        return tuple(p for p in self.predicates if p.table == table)

    def joins_on(self, table: str) -> Tuple[JoinPredicate, ...]:
        return tuple(j for j in self.joins if j.touches(table))

    def columns_needed(self, table: str) -> FrozenSet[str]:
        """Columns of ``table`` the plan must produce (for covering checks)."""
        needed = {c.column for c in self.projection if c.table == table}
        needed.update(p.column.column for p in self.predicates if p.table == table)
        needed.update(
            j.column_on(table).column for j in self.joins if j.touches(table)
        )
        if self.order_by is not None and self.order_by.table == table:
            needed.update(c.column for c in self.order_by.columns)
        return frozenset(needed)


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET set_columns WHERE predicates`` (single table)."""

    table: str
    set_columns: Tuple[str, ...]
    predicates: Tuple[TablePredicate, ...] = ()

    def __post_init__(self) -> None:
        if not self.set_columns:
            raise ValueError("UPDATE must set at least one column")
        for pred in self.predicates:
            if pred.table != self.table:
                raise ValueError(f"predicate {pred} on table other than {self.table}")

    @property
    def is_update(self) -> bool:
        return True

    def tables_referenced(self) -> Tuple[str, ...]:
        return (self.table,)

    def predicates_on(self, table: str) -> Tuple[TablePredicate, ...]:
        return self.predicates if table == self.table else ()

    def columns_needed(self, table: str) -> FrozenSet[str]:
        if table != self.table:
            return frozenset()
        needed = set(self.set_columns)
        needed.update(p.column.column for p in self.predicates)
        return frozenset(needed)


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table`` of ``row_count`` rows (bulk or single)."""

    table: str
    row_count: int = 1

    def __post_init__(self) -> None:
        if self.row_count < 1:
            raise ValueError("row_count must be >= 1")

    @property
    def is_update(self) -> bool:
        return True

    def tables_referenced(self) -> Tuple[str, ...]:
        return (self.table,)

    def predicates_on(self, table: str) -> Tuple[TablePredicate, ...]:
        return ()

    def columns_needed(self, table: str) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table WHERE predicates``."""

    table: str
    predicates: Tuple[TablePredicate, ...] = ()

    def __post_init__(self) -> None:
        for pred in self.predicates:
            if pred.table != self.table:
                raise ValueError(f"predicate {pred} on table other than {self.table}")

    @property
    def is_update(self) -> bool:
        return True

    def tables_referenced(self) -> Tuple[str, ...]:
        return (self.table,)

    def predicates_on(self, table: str) -> Tuple[TablePredicate, ...]:
        return self.predicates if table == self.table else ()

    def columns_needed(self, table: str) -> FrozenSet[str]:
        if table != self.table:
            return frozenset()
        return frozenset(p.column.column for p in self.predicates)


Statement = Union[SelectQuery, UpdateStatement, InsertStatement, DeleteStatement]
