"""Fluent builders for programmatic statement construction.

Examples
--------
>>> from repro.query import select, update
>>> q = (select("tpch.lineitem")
...      .where_between("l_shipdate", 8000, 8100)
...      .count_star()
...      .build())
>>> u = (update("tpch.lineitem")
...      .set("l_tax")
...      .where_between("l_extendedprice", 65522.378, 66256.943)
...      .build())
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    ColumnRef,
    DeleteStatement,
    EqualityPredicate,
    JoinPredicate,
    OrderBy,
    RangePredicate,
    SelectQuery,
    TablePredicate,
    UpdateStatement,
)

__all__ = ["select", "update", "delete", "SelectBuilder", "UpdateBuilder", "DeleteBuilder"]


class SelectBuilder:
    """Accumulates the pieces of a :class:`~repro.query.ast.SelectQuery`."""

    def __init__(self, first_table: str) -> None:
        self._tables: List[str] = [first_table]
        self._predicates: List[TablePredicate] = []
        self._joins: List[JoinPredicate] = []
        self._projection: List[ColumnRef] = []
        self._order_by: Optional[OrderBy] = None

    def _resolve(self, column: str, table: Optional[str]) -> ColumnRef:
        if table is not None:
            return ColumnRef(table, column)
        if len(self._tables) == 1:
            return ColumnRef(self._tables[0], column)
        raise ValueError(
            f"column {column!r} is ambiguous: pass table= with multiple tables"
        )

    def join(self, table: str, on: Tuple[str, str]) -> "SelectBuilder":
        """Add ``table`` with an equi-join ``existing.on[0] = table.on[1]``.

        The left side of ``on`` is resolved against the most recently added
        table when unqualified.
        """
        left_col, right_col = on
        left = self._resolve(left_col, None) if len(self._tables) == 1 else None
        if left is None:
            left = ColumnRef(self._tables[-1], left_col)
        self._tables.append(table)
        self._joins.append(JoinPredicate(left, ColumnRef(table, right_col)))
        return self

    def where_eq(self, column: str, value: object = None, table: Optional[str] = None) -> "SelectBuilder":
        self._predicates.append(EqualityPredicate(self._resolve(column, table), value))
        return self

    def where_between(
        self, column: str, lo: float, hi: float, table: Optional[str] = None
    ) -> "SelectBuilder":
        self._predicates.append(RangePredicate(self._resolve(column, table), lo=lo, hi=hi))
        return self

    def where_ge(self, column: str, lo: float, table: Optional[str] = None) -> "SelectBuilder":
        self._predicates.append(RangePredicate(self._resolve(column, table), lo=lo))
        return self

    def where_le(self, column: str, hi: float, table: Optional[str] = None) -> "SelectBuilder":
        self._predicates.append(RangePredicate(self._resolve(column, table), hi=hi))
        return self

    def count_star(self) -> "SelectBuilder":
        self._projection = []
        return self

    def project(self, column: str, table: Optional[str] = None) -> "SelectBuilder":
        self._projection.append(self._resolve(column, table))
        return self

    def order_by(self, *columns: str, table: Optional[str] = None) -> "SelectBuilder":
        refs = tuple(self._resolve(c, table) for c in columns)
        self._order_by = OrderBy(refs)
        return self

    def build(self) -> SelectQuery:
        return SelectQuery(
            tables=tuple(self._tables),
            predicates=tuple(self._predicates),
            joins=tuple(self._joins),
            projection=tuple(self._projection),
            order_by=self._order_by,
        )


class UpdateBuilder:
    """Accumulates the pieces of an :class:`~repro.query.ast.UpdateStatement`."""

    def __init__(self, table: str) -> None:
        self._table = table
        self._set_columns: List[str] = []
        self._predicates: List[TablePredicate] = []

    def set(self, *columns: str) -> "UpdateBuilder":
        self._set_columns.extend(columns)
        return self

    def where_eq(self, column: str, value: object = None) -> "UpdateBuilder":
        self._predicates.append(
            EqualityPredicate(ColumnRef(self._table, column), value)
        )
        return self

    def where_between(self, column: str, lo: float, hi: float) -> "UpdateBuilder":
        self._predicates.append(
            RangePredicate(ColumnRef(self._table, column), lo=lo, hi=hi)
        )
        return self

    def build(self) -> UpdateStatement:
        return UpdateStatement(
            self._table, tuple(self._set_columns), tuple(self._predicates)
        )


class DeleteBuilder:
    """Accumulates the pieces of a :class:`~repro.query.ast.DeleteStatement`."""

    def __init__(self, table: str) -> None:
        self._table = table
        self._predicates: List[TablePredicate] = []

    def where_eq(self, column: str, value: object = None) -> "DeleteBuilder":
        self._predicates.append(
            EqualityPredicate(ColumnRef(self._table, column), value)
        )
        return self

    def where_between(self, column: str, lo: float, hi: float) -> "DeleteBuilder":
        self._predicates.append(
            RangePredicate(ColumnRef(self._table, column), lo=lo, hi=hi)
        )
        return self

    def build(self) -> DeleteStatement:
        return DeleteStatement(self._table, tuple(self._predicates))


def select(table: str) -> SelectBuilder:
    """Start building a SELECT over ``table`` (qualified ``dataset.table``)."""
    return SelectBuilder(table)


def update(table: str) -> UpdateBuilder:
    """Start building an UPDATE of ``table``."""
    return UpdateBuilder(table)


def delete(table: str) -> DeleteBuilder:
    """Start building a DELETE from ``table``."""
    return DeleteBuilder(table)
