"""Parser for the SQL subset used by the paper's benchmark workload.

Supported statements (case-insensitive keywords):

* ``SELECT count(*) | col[, col...] FROM t [alias][, t [alias]...]
  WHERE pred AND pred ... [ORDER BY col[, col...]]``
* ``UPDATE t SET col = expr[, col = expr...] [WHERE pred AND ...]``
* ``DELETE FROM t [WHERE pred AND ...]``
* ``INSERT INTO t ...``

Predicates are conjunctive: ``col = literal``, ``col op literal`` for
``op ∈ {<, <=, >, >=}``, ``col BETWEEN lit AND lit``, or ``col = col``
(equi-join). Timestamp literals in DB2's ``'YYYY-MM-DD-hh.mm.ss'`` form (as
in the paper's example queries) are converted to numeric "days since 1970".

The parser exists so the advisor middleware can intercept textual SQL exactly
as the paper's prototype does; programmatic construction via
:mod:`repro.query.builder` is equally supported.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .ast import (
    ColumnRef,
    DeleteStatement,
    EqualityPredicate,
    InsertStatement,
    JoinPredicate,
    OrderBy,
    RangePredicate,
    SelectQuery,
    Statement,
    TablePredicate,
    UpdateStatement,
)

__all__ = ["parse_statement", "to_sql", "ParseError"]


class ParseError(Exception):
    """Raised when a statement does not conform to the supported subset."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        '[^']*'                                        # string literal
      | (?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?        # number (opt. exponent)
      | [A-Za-z_][A-Za-z_0-9]*                         # identifier / keyword
      | <= | >= | <> | !=                              # two-char operators
      | [(),.*=<>+\-/]                                 # single-char tokens
    )
    """,
    re.VERBOSE,
)

_TIMESTAMP_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})(?:[-\s](\d{2})\.(\d{2})\.(\d{2}))?$"
)

_KEYWORDS = {
    "select", "from", "where", "and", "between", "order", "by", "update",
    "set", "delete", "insert", "into", "values", "count", "asc", "desc",
}


def _tokenize(sql: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    text = sql.strip().rstrip(";")
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character at offset {pos}: {text[pos:pos+20]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


def _literal_value(token: str) -> Union[float, str]:
    """Convert a literal token to a comparable value.

    Numbers become floats. DB2-style timestamp strings become "days since
    1970" floats so date ranges flow through numeric selectivity. Other
    strings are kept as-is (only usable in equality predicates).
    """
    if token.startswith("'") and token.endswith("'"):
        inner = token[1:-1]
        ts = _TIMESTAMP_RE.match(inner)
        if ts is not None:
            year, month, day = int(ts.group(1)), int(ts.group(2)), int(ts.group(3))
            days = (year - 1970) * 365.0 + (month - 1) * 30.4 + (day - 1)
            if ts.group(4) is not None:
                days += int(ts.group(4)) / 24.0
            return days
        return inner
    try:
        return float(token)
    except ValueError:
        raise ParseError(f"expected literal, got {token!r}") from None


class _TokenStream:
    """Cursor over the token list with keyword-aware helpers."""

    def __init__(self, tokens: Sequence[str]) -> None:
        self._tokens = list(tokens)
        self._pos = 0

    def peek(self, offset: int = 0) -> Optional[str]:
        idx = self._pos + offset
        return self._tokens[idx] if idx < len(self._tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of statement")
        self._pos += 1
        return token

    def accept(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == keyword.lower():
            self._pos += 1
            return True
        return False

    def expect(self, expected: str) -> str:
        token = self.next()
        if token.lower() != expected.lower():
            raise ParseError(f"expected {expected!r}, got {token!r}")
        return token

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() in {k.lower() for k in keywords}

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)


def _parse_literal(stream: _TokenStream) -> Union[float, str]:
    """Consume one literal, handling a unary minus on numbers."""
    if stream.peek() == "-":
        stream.next()
        value = _literal_value(stream.next())
        if not isinstance(value, float):
            raise ParseError("unary minus requires a numeric literal")
        return -value
    return _literal_value(stream.next())


def _parse_qualified_table(stream: _TokenStream) -> str:
    first = stream.next()
    if not first.isidentifier():
        raise ParseError(f"expected table name, got {first!r}")
    stream.expect(".")
    second = stream.next()
    if not second.isidentifier():
        raise ParseError(f"expected table name after '.', got {second!r}")
    return f"{first}.{second}"


def _parse_column_token(
    stream: _TokenStream, aliases: Dict[str, str], default_table: Optional[str]
) -> ColumnRef:
    first = stream.next()
    if not first.isidentifier():
        raise ParseError(f"expected column reference, got {first!r}")
    if stream.peek() == ".":
        stream.next()
        column = stream.next()
        if not column.isidentifier():
            raise ParseError(f"expected column name, got {column!r}")
        table = aliases.get(first.lower())
        if table is None:
            raise ParseError(f"unknown table alias {first!r}")
        return ColumnRef(table, column)
    if default_table is None:
        raise ParseError(
            f"unqualified column {first!r} is ambiguous with multiple tables"
        )
    return ColumnRef(default_table, first)


def _is_column_start(stream: _TokenStream) -> bool:
    token = stream.peek()
    if token is None or not token.isidentifier():
        return False
    return token.lower() not in _KEYWORDS


def _parse_predicates(
    stream: _TokenStream, aliases: Dict[str, str], default_table: Optional[str]
) -> Tuple[List[TablePredicate], List[JoinPredicate]]:
    predicates: List[TablePredicate] = []
    joins: List[JoinPredicate] = []
    while True:
        left = _parse_column_token(stream, aliases, default_table)
        if stream.accept("between"):
            lo = _parse_literal(stream)
            stream.expect("and")
            hi = _parse_literal(stream)
            if not isinstance(lo, float) or not isinstance(hi, float):
                raise ParseError(f"BETWEEN requires numeric/timestamp bounds on {left}")
            predicates.append(RangePredicate(left, lo=lo, hi=hi))
        else:
            op = stream.next()
            if op == "=" and _is_column_start(stream):
                right = _parse_column_token(stream, aliases, default_table)
                joins.append(JoinPredicate(left, right))
            elif op == "=":
                predicates.append(EqualityPredicate(left, _parse_literal(stream)))
            elif op in ("<", "<="):
                value = _parse_literal(stream)
                if not isinstance(value, float):
                    raise ParseError(f"range bound must be numeric on {left}")
                predicates.append(RangePredicate(left, hi=value))
            elif op in (">", ">="):
                value = _parse_literal(stream)
                if not isinstance(value, float):
                    raise ParseError(f"range bound must be numeric on {left}")
                predicates.append(RangePredicate(left, lo=value))
            else:
                raise ParseError(f"unsupported operator {op!r}")
        if not stream.accept("and"):
            break
    return predicates, joins


def _parse_select(stream: _TokenStream) -> SelectQuery:
    # Projection: count(*) or a comma-separated column list. Column
    # references cannot be resolved until FROM is parsed, so save tokens.
    count_star = False
    projection_tokens: List[List[str]] = []
    if stream.at_keyword("count"):
        stream.next()
        stream.expect("(")
        stream.expect("*")
        stream.expect(")")
        count_star = True
    else:
        while True:
            item = [stream.next()]
            while stream.peek() == ".":
                stream.next()
                item.append(stream.next())
            projection_tokens.append(item)
            if not stream.accept(","):
                break
    stream.expect("from")

    aliases: Dict[str, str] = {}
    tables: List[str] = []
    while True:
        table = _parse_qualified_table(stream)
        tables.append(table)
        aliases[table.split(".", 1)[1].lower()] = table
        token = stream.peek()
        if token is not None and token.isidentifier() and token.lower() not in _KEYWORDS:
            aliases[stream.next().lower()] = table
        if not stream.accept(","):
            break
    default_table = tables[0] if len(tables) == 1 else None

    projection: List[ColumnRef] = []
    if not count_star:
        for item in projection_tokens:
            if len(item) == 1:
                if default_table is None:
                    raise ParseError(
                        f"unqualified projected column {item[0]!r} with multiple tables"
                    )
                projection.append(ColumnRef(default_table, item[0]))
            elif len(item) == 2:
                table = aliases.get(item[0].lower())
                if table is None:
                    raise ParseError(f"unknown alias {item[0]!r} in projection")
                projection.append(ColumnRef(table, item[1]))
            else:
                raise ParseError(f"malformed projection item {'.'.join(item)!r}")

    predicates: List[TablePredicate] = []
    joins: List[JoinPredicate] = []
    if stream.accept("where"):
        predicates, joins = _parse_predicates(stream, aliases, default_table)

    order_by: Optional[OrderBy] = None
    if stream.accept("order"):
        stream.expect("by")
        columns: List[ColumnRef] = []
        while True:
            columns.append(_parse_column_token(stream, aliases, default_table))
            stream.accept("asc") or stream.accept("desc")
            if not stream.accept(","):
                break
        order_by = OrderBy(tuple(columns))

    if not stream.exhausted:
        raise ParseError(f"trailing tokens near {stream.peek()!r}")
    return SelectQuery(
        tables=tuple(tables),
        predicates=tuple(predicates),
        joins=tuple(joins),
        projection=tuple(projection),
        order_by=order_by,
    )


def _skip_set_expression(stream: _TokenStream) -> None:
    """Consume a SET right-hand side; only the column names matter to costing."""
    depth = 0
    while not stream.exhausted:
        token = stream.peek()
        lowered = token.lower() if token else ""
        if depth == 0 and (lowered == "where" or token == ","):
            return
        token = stream.next()
        if token == "(":
            depth += 1
        elif token == ")":
            depth -= 1


def _parse_update(stream: _TokenStream) -> UpdateStatement:
    table = _parse_qualified_table(stream)
    stream.expect("set")
    set_columns: List[str] = []
    while True:
        column = stream.next()
        if not column.isidentifier():
            raise ParseError(f"expected column in SET, got {column!r}")
        set_columns.append(column)
        stream.expect("=")
        _skip_set_expression(stream)
        if not stream.accept(","):
            break
    predicates: Tuple[TablePredicate, ...] = ()
    if stream.accept("where"):
        aliases = {table.split(".", 1)[1].lower(): table}
        preds, joins = _parse_predicates(stream, aliases, table)
        if joins:
            raise ParseError("UPDATE does not support join predicates")
        predicates = tuple(preds)
    if not stream.exhausted:
        raise ParseError(f"trailing tokens near {stream.peek()!r}")
    return UpdateStatement(table, tuple(set_columns), predicates)


def _parse_delete(stream: _TokenStream) -> DeleteStatement:
    stream.expect("from")
    table = _parse_qualified_table(stream)
    predicates: Tuple[TablePredicate, ...] = ()
    if stream.accept("where"):
        aliases = {table.split(".", 1)[1].lower(): table}
        preds, joins = _parse_predicates(stream, aliases, table)
        if joins:
            raise ParseError("DELETE does not support join predicates")
        predicates = tuple(preds)
    if not stream.exhausted:
        raise ParseError(f"trailing tokens near {stream.peek()!r}")
    return DeleteStatement(table, predicates)


def _parse_insert(stream: _TokenStream) -> InsertStatement:
    stream.expect("into")
    table = _parse_qualified_table(stream)
    # The remainder (column list / VALUES) does not affect costing.
    row_count = 1
    while not stream.exhausted:
        stream.next()
    return InsertStatement(table, row_count)


def parse_statement(sql: str) -> Statement:
    """Parse one SQL statement of the supported subset into an AST node."""
    stream = _TokenStream(_tokenize(sql))
    if stream.accept("select"):
        return _parse_select(stream)
    if stream.accept("update"):
        return _parse_update(stream)
    if stream.accept("delete"):
        return _parse_delete(stream)
    if stream.accept("insert"):
        return _parse_insert(stream)
    raise ParseError(f"unsupported statement: {sql[:40]!r}...")


def _render_column(ref: ColumnRef) -> str:
    """Render a column as ``table.column`` (the parser re-resolves the
    table's short name as an implicit alias)."""
    return f"{ref.table.split('.', 1)[1]}.{ref.column}"


def _format_predicate(pred: TablePredicate) -> str:
    column = _render_column(pred.column)
    if isinstance(pred, EqualityPredicate):
        value = pred.value
        rendered = f"'{value}'" if isinstance(value, str) else repr(value)
        return f"{column} = {rendered}"
    if pred.lo is not None and pred.hi is not None:
        return f"{column} BETWEEN {pred.lo:g} AND {pred.hi:g}"
    if pred.lo is not None:
        return f"{column} >= {pred.lo:g}"
    return f"{column} <= {pred.hi:g}"


def to_sql(statement: Statement) -> str:
    """Render a statement back to SQL text (for display and logging)."""
    if isinstance(statement, SelectQuery):
        projection = (
            ", ".join(_render_column(c) for c in statement.projection)
            if statement.projection
            else "count(*)"
        )
        parts = [f"SELECT {projection}", f"FROM {', '.join(statement.tables)}"]
        conditions = [_format_predicate(p) for p in statement.predicates]
        conditions.extend(
            f"{_render_column(j.left)} = {_render_column(j.right)}"
            for j in statement.joins
        )
        if conditions:
            parts.append("WHERE " + " AND ".join(conditions))
        if statement.order_by is not None:
            parts.append(
                "ORDER BY "
                + ", ".join(_render_column(c) for c in statement.order_by.columns)
            )
        return " ".join(parts)
    if isinstance(statement, UpdateStatement):
        sets = ", ".join(f"{c} = <expr>" for c in statement.set_columns)
        sql = f"UPDATE {statement.table} SET {sets}"
        if statement.predicates:
            sql += " WHERE " + " AND ".join(
                _format_predicate(p) for p in statement.predicates
            )
        return sql
    if isinstance(statement, DeleteStatement):
        sql = f"DELETE FROM {statement.table}"
        if statement.predicates:
            sql += " WHERE " + " AND ".join(
                _format_predicate(p) for p in statement.predicates
            )
        return sql
    if isinstance(statement, InsertStatement):
        return f"INSERT INTO {statement.table} VALUES (...)"
    raise TypeError(f"unknown statement type: {type(statement).__name__}")
