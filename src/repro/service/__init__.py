"""The multi-session tuning service layer.

Deployment-shaped packaging of the WFIT library: a
:class:`~repro.service.engine.TuningEngine` multiplexes many concurrent
client sessions over one shared WFIT core and one shared what-if optimizer
(micro-batched single-writer ingest), with per-client audit logs and
vote/materialization routing, versioned JSON checkpoint/restore
(:mod:`repro.service.snapshot`), and a replay CLI
(``python -m repro.service``).
"""

from .engine import ClientSession, Recommendation, SessionEvent, TuningEngine
from .snapshot import (
    SNAPSHOT_VERSION,
    checkpoint_engine,
    load_checkpoint,
    restore_engine,
    save_checkpoint,
)

__all__ = [
    "ClientSession",
    "Recommendation",
    "SNAPSHOT_VERSION",
    "SessionEvent",
    "TuningEngine",
    "checkpoint_engine",
    "load_checkpoint",
    "restore_engine",
    "save_checkpoint",
]
