"""The multi-session tuning service layer.

Deployment-shaped packaging of the WFIT library: a
:class:`~repro.service.engine.TuningEngine` multiplexes many concurrent
client sessions over one shared WFIT core and one shared what-if optimizer
(micro-batched single-writer ingest over the priority-classed
:class:`~repro.service.scheduler.IngestScheduler`: admission-controlled
queues with typed :class:`~repro.service.scheduler.QueueFull`
backpressure, a background task lane, and deterministic batch
formation), with per-client audit logs and
vote/materialization routing, versioned JSON checkpoint/restore
(:mod:`repro.service.snapshot`), durable ingest — a submission
write-ahead log plus atomic delta-checkpoint chains with crash recovery
(:mod:`repro.service.wal`) — and a replay CLI
(``python -m repro.service``).
"""

from .engine import ClientSession, Recommendation, SessionEvent, TuningEngine
from .scheduler import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    IngestScheduler,
    QueueFull,
)
from .snapshot import (
    SNAPSHOT_VERSION,
    BrokenChain,
    CorruptSnapshot,
    SnapshotError,
    UnsupportedVersion,
    checkpoint_engine,
    load_checkpoint,
    resolve_chain,
    restore_engine,
    save_checkpoint,
)
from .wal import (
    CorruptRecord,
    Durability,
    WalError,
    WalRecord,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "BrokenChain",
    "ClientSession",
    "CorruptRecord",
    "CorruptSnapshot",
    "DEFAULT_PRIORITY",
    "Durability",
    "IngestScheduler",
    "PRIORITIES",
    "QueueFull",
    "Recommendation",
    "SNAPSHOT_VERSION",
    "SessionEvent",
    "SnapshotError",
    "TuningEngine",
    "UnsupportedVersion",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "checkpoint_engine",
    "load_checkpoint",
    "read_wal",
    "resolve_chain",
    "restore_engine",
    "save_checkpoint",
]
