"""``python -m repro.service`` — the trace replay / checkpoint-resume CLI."""

from .replay import main

if __name__ == "__main__":
    raise SystemExit(main())
