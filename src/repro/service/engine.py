"""The multi-session tuning engine: one WFIT core, many clients.

The paper's §6 prototype is *middleware*: it sits between live clients and
the database, intercepts SQL, and lets any DBA pull recommendations and
push feedback at any time. :class:`TuningEngine` packages the library that
way for concurrent traffic:

* **Micro-batched ingest** — clients :meth:`~TuningEngine.submit`
  statements into a shared queue; a single writer drains it in batches
  (``batch_size`` statements per lock acquisition) through the one shared
  :class:`~repro.core.wfit.WFIT` instance. :meth:`~TuningEngine.pump` is
  the deterministic synchronous drain (what tests and the replay CLI use);
  :meth:`~TuningEngine.start` runs the same loop on a background thread.
  With ``workers > 1`` the single writer additionally fans each
  statement's per-part kernel relaxations out to the tuner's worker pool
  (partition-parallel ingest; bit-identical to ``workers=1``, which
  remains the default and the determinism oracle — see
  :mod:`repro.core.wfit`).
* **Shared caches** — every session's statements flow through one
  :class:`~repro.optimizer.whatif.WhatIfOptimizer`, so overlapping
  workloads pay for each plan optimization once
  (:meth:`~repro.optimizer.whatif.WhatIfOptimizer.cache_stats` exposes the
  hit rates; ``benchmarks/bench_service.py`` measures the win).
* **Session routing** — each client gets its own audit log; votes and
  DBA materialization actions are routed from any client to the shared
  core and recorded against the acting client.
* **totWork accounting** — the engine accounts the §3.1 metric under
  immediate adoption, which checkpoint/restore preserves so a restored
  engine's trajectory is comparable to the uninterrupted one.

Checkpoint/restore lives in :mod:`repro.service.snapshot`;
:meth:`TuningEngine.checkpoint` and :meth:`TuningEngine.restore` are the
entry points.
"""

from __future__ import annotations

# reprolint: lock-alias _wakeup=_ingest_lock
# (_wakeup is a Condition constructed over _ingest_lock: entering it IS
# entering the ingest lock, so lock-discipline analysis treats them as one.)

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from .. import obs
from ..core.wfit import WFIT
from ..db.index import Index
from ..optimizer.whatif import WhatIfOptimizer
from ..query.ast import Statement
from ..query.parser import parse_statement, to_sql

__all__ = [
    "ClientSession",
    "Recommendation",
    "SessionEvent",
    "TuningEngine",
]


@dataclass(frozen=True)
class SessionEvent:
    """One entry of a client's audit log."""

    kind: str          # "statement" | "vote" | "create" | "drop" | "recommendation"
    detail: str
    position: int      # client statements processed when the event happened


@dataclass(frozen=True)
class Recommendation:
    """A point-in-time recommendation, diffed against the materialized set."""

    recommended: FrozenSet[Index]
    materialized: FrozenSet[Index]

    @property
    def to_create(self) -> Tuple[Index, ...]:
        return tuple(sorted(self.recommended - self.materialized))

    @property
    def to_drop(self) -> Tuple[Index, ...]:
        return tuple(sorted(self.materialized - self.recommended))

    def statements(self) -> List[str]:
        """DDL the DBA would run to adopt the recommendation."""
        out = [
            f"CREATE INDEX {ix.name} ON {ix.table} ({', '.join(ix.columns)})"
            for ix in self.to_create
        ]
        out.extend(f"DROP INDEX {ix.name}" for ix in self.to_drop)
        return out

    @property
    def is_adopted(self) -> bool:
        return self.recommended == self.materialized


#: Default per-client analyze-latency window retained for percentile
#: reporting (override per engine with the ``latency_window`` constructor
#: knob). A bounded window keeps the engine's footprint flat over unbounded
#: statement streams — an unbounded per-statement append is a memory leak
#: in any long-lived session; p50/p95 then describe recent behavior, which
#: is what an operator watching a live engine wants anyway.
_LATENCY_WINDOW = 4096


class _ClientState:
    """Engine-internal per-client bookkeeping."""

    __slots__ = ("client_id", "submitted", "processed", "events", "latencies")

    def __init__(self, client_id: str, latency_window: int) -> None:
        self.client_id = client_id
        self.submitted = 0
        self.processed = 0
        self.events: List[SessionEvent] = []
        # Wall-clock seconds each of the client's last ``latency_window``
        # statements spent inside the shared core (analysis + totWork
        # accounting). Ephemeral observability: not part of checkpoint
        # documents.
        self.latencies: Deque[float] = deque(maxlen=latency_window)


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 when empty).

    The nearest-rank definition: the smallest value with at least
    ``fraction`` of the samples at or below it, i.e. index
    ``ceil(fraction · n) − 1``. A single sample is every percentile of
    itself, and p50 of two samples is the lower one — the previous
    ``int(fraction · n)`` truncation read one rank too high (p50 of
    ``[a, b]`` returned ``b``) and only the clamp hid it at p95+.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


# Process-wide engine instruments on the default registry, built lazily so
# importing the service registers nothing. Counters/histograms aggregate
# across engine instances (a process total); the queue-depth gauge instead
# comes from a per-engine collector so it always reads the *current* level.
_ENGINE_INSTRUMENTS: Dict[str, object] = {}


def _engine_instruments() -> Dict[str, object]:
    if not _ENGINE_INSTRUMENTS:
        registry = obs.default_registry()
        _ENGINE_INSTRUMENTS["statements"] = registry.counter(
            "repro_engine_statements_total",
            help="Statements analyzed through the shared core.",
        )
        _ENGINE_INSTRUMENTS["batches"] = registry.counter(
            "repro_engine_batches_total",
            help="Micro-batches drained by the single writer.",
        )
        _ENGINE_INSTRUMENTS["batch_size"] = registry.histogram(
            "repro_engine_batch_size",
            help="Statements per drained micro-batch.",
            buckets=obs.POW2_BUCKETS,
        )
        _ENGINE_INSTRUMENTS["latency"] = {}
    return _ENGINE_INSTRUMENTS


def _latency_histogram(client_id: str):
    instruments = _engine_instruments()
    table: Dict[str, object] = instruments["latency"]  # type: ignore[assignment]
    hist = table.get(client_id)
    if hist is None:
        hist = table[client_id] = obs.default_registry().histogram(
            "repro_engine_statement_seconds",
            help="Per-session in-core statement latency.",
            labels={"client": client_id},
        )
    return hist


class TuningEngine:
    """Multiplexes many client sessions over one shared WFIT core."""

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        transitions,
        materialized: AbstractSet[Index] = frozenset(),
        batch_size: int = 32,
        workers: Optional[int] = None,
        latency_window: int = _LATENCY_WINDOW,
        **wfit_options,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self._optimizer = optimizer
        self._transitions = transitions
        self._tuner = WFIT(
            optimizer, transitions, initial_config=frozenset(materialized),
            workers=workers,
            **wfit_options,
        )
        self._materialized: set = set(materialized)  # guarded-by: _pump_lock
        self.batch_size = batch_size
        self.latency_window = latency_window

        # Ingest: the submission queue is guarded by _ingest_lock (held only
        # for O(1) queue ops); _pump_lock serializes the single writer that
        # may touch the tuner. _wakeup signals the background drain thread.
        # _lifecycle_lock serializes start()/stop() transitions (without it
        # two concurrent start() calls can both pass the thread-is-None
        # check and leak a drain thread).
        self._queue: Deque[Tuple[str, Statement]] = deque()  # guarded-by: _ingest_lock
        # Optional write-ahead log (attached by repro.service.wal.Durability).
        # Submissions log under the ingest lock, votes/materializations under
        # the pump lock — always in the same critical section as the in-memory
        # mutation, so WAL order equals effect order.
        self._wal = None  # guarded-by: _ingest_lock, _pump_lock
        self._ingest_lock = threading.Lock()
        self._pump_lock = threading.RLock()
        self._lifecycle_lock = threading.Lock()
        self._wakeup = threading.Condition(self._ingest_lock)
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lifecycle_lock
        self._stop_flag = threading.Event()

        self._clients: Dict[str, _ClientState] = {}  # guarded-by: _ingest_lock
        self._statements_processed = 0  # guarded-by: _pump_lock
        self._batches_processed = 0  # guarded-by: _pump_lock
        # Parallel-efficiency of the most recent micro-batch that actually
        # ran fan-out sections (None until one has).
        self._last_batch_parallel_efficiency: Optional[float] = None  # guarded-by: _pump_lock
        # totWork accounting (§3.1, immediate adoption): the configuration
        # the accounting charges costs under, and the cumulative metric.
        self._accounting_config: FrozenSet[Index] = frozenset(materialized)  # guarded-by: _pump_lock
        self._total_work = 0.0  # guarded-by: _pump_lock
        # Observability: construction instant for metrics()["uptime_s"]
        # (monotonic — wall-clock steps must not produce negative uptime),
        # and a weak registry collector for the live queue-depth gauge
        # (summed across engines; dies with the engine).
        self._started_monotonic = time.monotonic()
        obs.default_registry().register_collector(self._collect_obs)

    def _collect_obs(self):
        """Registry collector: the engine's current queue depth."""
        with self._ingest_lock:
            depth = len(self._queue)
        return [{
            "name": "repro_engine_queue_depth",
            "type": "gauge",
            "help": "Statements submitted but not yet analyzed.",
            "value": depth,
        }]

    @classmethod
    def for_stats(cls, stats, **options) -> "TuningEngine":
        """Build an engine with the default optimizer/δ over ``stats``."""
        from ..db.transitions import StatsTransitionCosts

        return cls(
            WhatIfOptimizer(stats), StatsTransitionCosts(stats), **options
        )

    # -- shared core introspection -------------------------------------------

    @property
    def tuner(self) -> WFIT:
        return self._tuner

    @property
    def optimizer(self) -> WhatIfOptimizer:
        return self._optimizer

    @property
    def transitions(self):
        return self._transitions

    @property
    def materialized(self) -> FrozenSet[Index]:
        with self._pump_lock:
            return frozenset(self._materialized)

    @property
    def workers(self) -> int:
        """Per-part fan-out pool size of the shared tuner (1 = serial)."""
        return self._tuner.workers

    def close(self) -> None:
        """Release execution resources: stop the drain thread (draining
        pending work first) and shut down the tuner's worker pool."""
        self.stop(drain=True)
        self._tuner.close()

    @property
    def statements_processed(self) -> int:
        with self._pump_lock:
            return self._statements_processed

    @property
    def batches_processed(self) -> int:
        with self._pump_lock:
            return self._batches_processed

    @property
    def total_work(self) -> float:
        """Cumulative totWork under immediate adoption (§3.1)."""
        with self._pump_lock:
            return self._total_work

    @property
    def queue_depth(self) -> int:
        with self._ingest_lock:
            return len(self._queue)

    @property
    def session_ids(self) -> Tuple[str, ...]:
        with self._ingest_lock:
            return tuple(sorted(self._clients))

    # -- session management ----------------------------------------------------

    def _client(self, client_id: str) -> _ClientState:
        # The whole lookup runs under the ingest lock. The previous
        # lock-free fast path read the dict while concurrent submitters
        # could be inserting — safe-ish on CPython today, but exactly the
        # kind of convention R3 exists to make explicit rather than lucky.
        with self._ingest_lock:
            state = self._clients.get(client_id)
            if state is None:
                state = self._clients[client_id] = _ClientState(
                    client_id, self.latency_window
                )
        return state

    def session(self, client_id: str = "default") -> "ClientSession":
        """A handle bound to ``client_id`` (created on first use)."""
        self._client(client_id)
        return ClientSession(self, client_id)

    def attach_wal(self, wal) -> None:
        """Attach a :class:`repro.service.wal.WriteAheadLog` to the ingest
        path (or detach with ``None``).

        Both locks are taken so neither an in-flight submit nor the
        single writer can observe a half-attached log; from the next
        ingest-path operation on, every mutation is logged before it is
        applied. Prefer :meth:`repro.service.wal.Durability.attach`,
        which also manages sequence continuation and torn-tail repair.
        """
        with self._pump_lock:
            with self._ingest_lock:
                self._wal = wal

    def _log(self, client: _ClientState, kind: str, detail: str) -> None:
        client.events.append(SessionEvent(kind, detail, client.processed))

    def history(self, client_id: str) -> Tuple[SessionEvent, ...]:
        return tuple(self._client(client_id).events)

    # -- ingest ---------------------------------------------------------------

    def submit(
        self, client_id: str, statement: Union[str, Statement]
    ) -> Statement:
        """Enqueue one statement for ``client_id``; returns the parsed AST.

        The statement is analyzed at the next :meth:`pump` (or by the
        background drain thread when :meth:`start` is active).
        """
        parsed = (
            parse_statement(statement) if isinstance(statement, str) else statement
        )
        client = self._client(client_id)
        with self._ingest_lock:
            if self._wal is not None:
                self._wal.append(
                    "submit", {"client_id": client_id, "sql": to_sql(parsed)}
                )
            self._queue.append((client_id, parsed))
            client.submitted += 1
            self._wakeup.notify()
        return parsed

    def submit_many(
        self, entries: Iterable[Tuple[str, Union[str, Statement]]]
    ) -> int:
        """Enqueue a batch of ``(client_id, statement)`` pairs.

        The whole batch is parsed first, then enqueued under a *single*
        queue-lock acquisition with one drain-thread ``notify`` —
        submission order is preserved, and an N-statement batch costs one
        lock round-trip instead of N (the per-statement locking showed up
        directly in ingest throughput under concurrent submitters).
        """
        batch: List[Tuple[_ClientState, str, Statement]] = []
        for client_id, statement in entries:
            parsed = (
                parse_statement(statement)
                if isinstance(statement, str)
                else statement
            )
            # Resolve client states outside the queue lock: _client() takes
            # _ingest_lock itself on first sight of a client.
            batch.append((self._client(client_id), client_id, parsed))
        if not batch:
            return 0
        with self._ingest_lock:
            if self._wal is not None:
                self._wal.append(
                    "submit_many",
                    {
                        "entries": [
                            {"client_id": client_id, "sql": to_sql(parsed)}
                            for _, client_id, parsed in batch
                        ]
                    },
                )
            for client, client_id, parsed in batch:
                self._queue.append((client_id, parsed))
                client.submitted += 1
            self._wakeup.notify()
        return len(batch)

    def _analyze(self, client_id: str, statement: Statement) -> None:  # holds: _pump_lock
        """Run one statement through the shared core (writer lock held)."""
        started = time.perf_counter()
        with obs.span("engine.analyze"):
            recommendation = self._tuner.analyze_statement(statement)
            if recommendation != self._accounting_config:
                self._total_work += self._transitions.delta(
                    self._accounting_config, recommendation
                )
                self._accounting_config = recommendation
            self._total_work += self._optimizer.cost(statement, recommendation)
        elapsed = time.perf_counter() - started
        self._statements_processed += 1
        client = self._client(client_id)
        client.processed += 1
        client.latencies.append(elapsed)
        if obs.state.enabled:
            _engine_instruments()["statements"].inc()  # type: ignore[union-attr]
            _latency_histogram(client_id).observe(elapsed)  # type: ignore[union-attr]
        self._log(client, "statement", to_sql(statement))

    def pump(self, limit: Optional[int] = None) -> int:
        """Drain pending submissions synchronously; returns the count.

        The single-writer micro-batching loop: pops up to ``batch_size``
        submissions per queue-lock acquisition and analyzes them through
        the shared WFIT. With no ``limit`` it drains the whole queue.
        Deterministic: statements are processed in submission order, so
        tests (and the replay CLI) can single-step the engine.
        """
        processed = 0
        with self._pump_lock:
            while limit is None or processed < limit:
                budget = self.batch_size
                if limit is not None:
                    budget = min(budget, limit - processed)
                with self._ingest_lock:
                    batch = [
                        self._queue.popleft()
                        for _ in range(min(budget, len(self._queue)))
                    ]
                if not batch:
                    break
                before = self._tuner.parallel_stats()
                for client_id, statement in batch:
                    self._analyze(client_id, statement)
                after = self._tuner.parallel_stats()
                wall = (
                    after["parallel_wall_seconds"]
                    - before["parallel_wall_seconds"]
                )
                if wall > 0.0:
                    busy = (
                        after["parallel_busy_seconds"]
                        - before["parallel_busy_seconds"]
                    )
                    self._last_batch_parallel_efficiency = busy / (
                        wall * self._tuner.workers
                    )
                processed += len(batch)
                self._batches_processed += 1
                if obs.state.enabled:
                    instruments = _engine_instruments()
                    instruments["batches"].inc()  # type: ignore[union-attr]
                    instruments["batch_size"].observe(len(batch))  # type: ignore[union-attr]
        return processed

    # -- background drain ------------------------------------------------------

    def start(self, poll_interval: float = 0.05) -> None:
        """Start the background single-writer drain thread.

        Lifecycle transitions are serialized by an internal lock: two
        threads racing into ``start()`` cannot both pass the already-
        running check (one starts the drain thread, the other raises), and
        a ``stop()`` concurrent with a ``start()`` observes either the
        fully-started or the not-yet-started engine, never a half-built
        one.
        """
        with self._lifecycle_lock:
            if self._thread is not None:
                raise RuntimeError("engine is already running")
            self._stop_flag.clear()

            def _loop() -> None:
                while not self._stop_flag.is_set():
                    if self.pump(self.batch_size) == 0:
                        with self._wakeup:
                            self._wakeup.wait(timeout=poll_interval)

            thread = threading.Thread(
                target=_loop, name="tuning-engine-drain", daemon=True
            )
            thread.start()
            # Publish only after a successful start so a failed Thread
            # construction can never leave a stale handle behind.
            self._thread = thread

    def stop(self, drain: bool = True) -> None:
        """Stop the background thread (idempotent); optionally drain.

        Safe to call concurrently with :meth:`start` (the lifecycle lock
        orders the two: stop-then-start leaves the engine running,
        start-then-stop leaves it stopped) and with other ``stop`` calls —
        exactly one caller joins the thread.
        """
        with self._lifecycle_lock:
            thread = self._thread
            if thread is not None:
                self._stop_flag.set()
                with self._wakeup:
                    self._wakeup.notify_all()
                thread.join()
                self._thread = None
        if drain:
            self.pump()

    @property
    def running(self) -> bool:
        with self._lifecycle_lock:
            return self._thread is not None

    # -- recommendations and feedback routing ---------------------------------

    def recommendation(self, client_id: str = "default") -> Recommendation:
        """The current shared recommendation, audited to ``client_id``."""
        with self._pump_lock:
            rec = Recommendation(
                recommended=self._tuner.recommend(),
                materialized=frozenset(self._materialized),
            )
        self._log(
            self._client(client_id),
            "recommendation",
            f"create={len(rec.to_create)} drop={len(rec.to_drop)}",
        )
        return rec

    def vote(
        self,
        client_id: str,
        f_plus: AbstractSet[Index],
        f_minus: AbstractSet[Index],
    ) -> FrozenSet[Index]:
        """Route explicit DBA votes from ``client_id`` to the shared core."""
        with self._pump_lock:
            # Validate before logging: a WAL record for a vote the core
            # then rejects would be replayed by every subsequent recovery
            # and fail there the same way — one bad client call must not
            # leave a durable poison pill (create/drop below follow the
            # same check-then-log order).
            if frozenset(f_plus) & frozenset(f_minus):
                raise ValueError("F+ and F- must be disjoint")
            if self._wal is not None:
                # The position pins the vote to the statement count it ran
                # at: recovery pumps exactly that far before re-applying,
                # so feedback lands on the same work-function state.
                self._wal.append(
                    "vote",
                    {
                        "client_id": client_id,
                        "position": self._statements_processed,
                        "plus": [ix.to_payload() for ix in sorted(f_plus)],
                        "minus": [ix.to_payload() for ix in sorted(f_minus)],
                    },
                )
            rec = self._tuner.feedback(frozenset(f_plus), frozenset(f_minus))
        self._log(
            self._client(client_id),
            "vote",
            "+{" + ", ".join(ix.name for ix in sorted(f_plus)) + "} "
            "-{" + ", ".join(ix.name for ix in sorted(f_minus)) + "}",
        )
        return rec

    def create_index(self, client_id: str, index: Index) -> None:
        """``client_id`` materializes an index; WFIT learns via a +vote."""
        with self._pump_lock:
            if index in self._materialized:
                raise ValueError(f"{index.name} is already materialized")
            if self._wal is not None:
                self._wal.append(
                    "materialize",
                    {
                        "client_id": client_id,
                        "position": self._statements_processed,
                        "action": "create",
                        "index": index.to_payload(),
                    },
                )
            self._materialized.add(index)
            self._tuner.notify_materialized(
                created={index}, dropped=frozenset()
            )
        self._log(self._client(client_id), "create", index.name)

    def drop_index(self, client_id: str, index: Index) -> None:
        """``client_id`` drops an index; WFIT learns via a −vote."""
        with self._pump_lock:
            if index not in self._materialized:
                raise ValueError(f"{index.name} is not materialized")
            if self._wal is not None:
                self._wal.append(
                    "materialize",
                    {
                        "client_id": client_id,
                        "position": self._statements_processed,
                        "action": "drop",
                        "index": index.to_payload(),
                    },
                )
            self._materialized.discard(index)
            self._tuner.notify_materialized(
                created=frozenset(), dropped={index}
            )
        self._log(self._client(client_id), "drop", index.name)

    def adopt(
        self, client_id: str = "default"
    ) -> Tuple[Tuple[Index, ...], Tuple[Index, ...]]:
        """Adopt the current recommendation wholesale for ``client_id``."""
        client = self._client(client_id)
        with self._pump_lock:
            if self._wal is not None:
                # Adoption is deterministic given the position: the replayed
                # engine recomputes the same recommendation there, so only
                # the action itself needs logging.
                self._wal.append(
                    "materialize",
                    {
                        "client_id": client_id,
                        "position": self._statements_processed,
                        "action": "adopt",
                    },
                )
            rec = self._tuner.recommend()
            created = tuple(sorted(rec - self._materialized))
            dropped = tuple(sorted(self._materialized - rec))
            self._materialized = set(rec)
            self._tuner.feedback(rec, frozenset(dropped))
        for index in created:
            self._log(client, "create", index.name)
        for index in dropped:
            self._log(client, "drop", index.name)
        return created, dropped

    # -- observability ---------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """Aggregate engine metrics plus per-session counters.

        Per-session ``latency_p50_ms`` / ``latency_p95_ms`` are
        *window-relative*: they summarize the client's last
        ``latency_window`` (constructor knob, default 4096) in-core
        statement latencies — analysis plus totWork accounting — not the
        full session history; 0.0 before any statement. ``workers`` is the
        per-part fan-out pool size; ``parallel`` reports the cumulative
        fan-out accounting of :meth:`~repro.core.wfit.WFIT.parallel_stats`
        plus ``last_batch_efficiency``, the busy/(wall × workers) ratio of
        the most recent micro-batch that ran a parallel section (None
        until one has; serial engines never do). ``uptime_s`` is seconds
        since construction (monotonic clock) and ``queue_depth`` the
        current submitted-but-unanalyzed backlog. The numeric counters are
        also exported on the process-wide :mod:`repro.obs` registry as
        ``repro_engine_*`` series.
        """
        # The writer lock first: latency deques are appended to by the
        # single writer under _pump_lock, so snapshotting them requires it
        # (lock order matches pump(): _pump_lock, then _ingest_lock).
        with self._pump_lock:
            with self._ingest_lock:
                sessions = {}
                for client_id, state in sorted(self._clients.items()):
                    samples = list(state.latencies)
                    sessions[client_id] = {
                        "submitted": state.submitted,
                        "processed": state.processed,
                        "events": len(state.events),
                        "latency_p50_ms": _percentile(samples, 0.50) * 1000.0,
                        "latency_p95_ms": _percentile(samples, 0.95) * 1000.0,
                    }
                queue_depth = len(self._queue)
            parallel = dict(self._tuner.parallel_stats())
            parallel["last_batch_efficiency"] = (
                self._last_batch_parallel_efficiency
            )
            return {
                "statements_processed": self._statements_processed,
                "batches_processed": self._batches_processed,
                "uptime_s": time.monotonic() - self._started_monotonic,
                "queue_depth": queue_depth,
                "workers": self._tuner.workers,
                "parallel": parallel,
                "total_work": self._total_work,
                "materialized": [ix.name for ix in sorted(self._materialized)],
                "recommendation": [
                    ix.name for ix in sorted(self._tuner.recommend())
                ],
                "sessions": sessions,
                "cache": self._optimizer.cache_stats(),
            }

    # -- checkpoint / restore --------------------------------------------------

    def checkpoint(
        self,
        extra: Optional[Dict[str, object]] = None,
        drain: bool = True,
        *,
        snapshot_id: Optional[int] = None,
        base: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Serialize the full engine state to a versioned JSON document.

        The snapshot is taken between micro-batches, never inside one.
        With ``drain=True`` (the default) submissions pending at entry are
        analyzed first; with ``drain=False`` the checkpoint returns
        without paying for their analysis — either way, whatever remains
        queued at the snapshot point (the whole backlog when not
        draining, or statements submitted concurrently with the drain) is
        serialized into the document's ``"pending"`` list and replayed by
        :meth:`restore`, so no submitted statement is ever dropped from a
        checkpoint. ``extra`` is stored verbatim under the ``"extra"``
        key (the replay CLI stashes trace parameters there).
        ``snapshot_id``/``base`` are the durability layer's chaining
        inputs (see :meth:`repro.service.wal.Durability.checkpoint`): with
        a ``base`` full document, unchanged parts are elided into a delta.
        """
        from .snapshot import checkpoint_engine

        with self._pump_lock:
            if drain:
                self.pump()
            return checkpoint_engine(
                self, extra=extra, snapshot_id=snapshot_id, base=base
            )

    @classmethod
    def restore(
        cls,
        document: Dict[str, object],
        optimizer: WhatIfOptimizer,
        transitions,
    ) -> "TuningEngine":
        """Rebuild an engine from a :meth:`checkpoint` document.

        The optimizer/δ provider must be built over equivalent statistics;
        the restored engine then produces step-identical recommendations
        and totWork from the checkpoint on.
        """
        from .snapshot import restore_engine

        return restore_engine(document, optimizer, transitions)

    @classmethod
    def recover(
        cls,
        directory,
        optimizer: WhatIfOptimizer,
        transitions,
        *,
        io=None,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> Tuple["TuningEngine", Dict[str, object]]:
        """Rebuild an engine from a durability directory (snapshot chain +
        WAL tail); returns ``(engine, report)``.

        The newest snapshot whose chain resolves is restored, then the
        WAL tail is replayed — submissions re-enter the queue, votes and
        materializations re-apply at the statement positions they
        originally ran at; a torn final record is tolerated, mid-file
        corruption refuses with :class:`repro.service.wal.CorruptRecord`.
        Replayed submissions are left queued: pump (or attach a fresh
        WAL via :class:`repro.service.wal.Durability` first) to continue.
        """
        from ..ioutil import REAL_IO
        from .wal import Durability

        return Durability.recover(
            directory,
            optimizer,
            transitions,
            io=io if io is not None else REAL_IO,
            engine_options=engine_options,
        )


class ClientSession:
    """A client-facing handle over one engine session.

    Thin by construction: all state lives in the engine; the handle only
    binds a ``client_id``. ``execute`` is the synchronous convenience used
    by single-client callers (submit + drain); concurrent deployments
    submit and let the engine's drain loop do the work.
    """

    def __init__(self, engine: TuningEngine, client_id: str) -> None:
        self._engine = engine
        self._client_id = client_id

    @property
    def engine(self) -> TuningEngine:
        return self._engine

    @property
    def client_id(self) -> str:
        return self._client_id

    # -- workload --------------------------------------------------------------

    def submit(self, statement: Union[str, Statement]) -> Statement:
        """Enqueue one statement (asynchronous ingest)."""
        return self._engine.submit(self._client_id, statement)

    def execute(self, statement: Union[str, Statement]) -> Statement:
        """Intercept one statement synchronously; returns the AST.

        Equivalent to ``submit`` followed by a full drain — which is what a
        single-client deployment (the legacy ``AdvisorSession`` shape)
        wants. When the engine's background thread is running, this still
        guarantees the statement has been analyzed on return.
        """
        parsed = self._engine.submit(self._client_id, statement)
        self._engine.pump()
        return parsed

    def execute_many(
        self, statements: Iterable[Union[str, Statement]]
    ) -> int:
        """Intercept a batch; returns how many statements were analyzed."""
        count = 0
        for statement in statements:
            self.submit(statement)
            count += 1
        self._engine.pump()
        return count

    # -- recommendations / feedback / DBA actions ------------------------------

    def recommendation(self) -> Recommendation:
        return self._engine.recommendation(self._client_id)

    def vote(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        return self._engine.vote(self._client_id, f_plus, f_minus)

    def vote_up(self, *indices: Index) -> FrozenSet[Index]:
        return self._engine.vote(self._client_id, frozenset(indices), frozenset())

    def vote_down(self, *indices: Index) -> FrozenSet[Index]:
        return self._engine.vote(self._client_id, frozenset(), frozenset(indices))

    def create_index(self, index: Index) -> None:
        self._engine.create_index(self._client_id, index)

    def drop_index(self, index: Index) -> None:
        self._engine.drop_index(self._client_id, index)

    def adopt(self) -> Tuple[Tuple[Index, ...], Tuple[Index, ...]]:
        return self._engine.adopt(self._client_id)

    # -- introspection ---------------------------------------------------------

    @property
    def materialized(self) -> FrozenSet[Index]:
        return self._engine.materialized

    @property
    def statements_submitted(self) -> int:
        return self._engine._client(self._client_id).submitted

    @property
    def statements_processed(self) -> int:
        return self._engine._client(self._client_id).processed

    def history(self) -> Tuple[SessionEvent, ...]:
        return self._engine.history(self._client_id)
