"""The multi-session tuning engine: one WFIT core, many clients.

The paper's §6 prototype is *middleware*: it sits between live clients and
the database, intercepts SQL, and lets any DBA pull recommendations and
push feedback at any time. :class:`TuningEngine` packages the library that
way for concurrent traffic:

* **Priority-scheduled ingest** — clients :meth:`~TuningEngine.submit`
  statements into the priority-classed queues of
  :class:`~repro.service.scheduler.IngestScheduler`; a single writer
  drains them in micro-batches (``batch_size`` statements per batch)
  through the one shared :class:`~repro.core.wfit.WFIT` instance. Batch
  formation is deterministic — ``(priority rank, arrival seq)`` order —
  so a uniform-priority engine drains in exact submission order,
  bit-identical to the pre-scheduler FIFO. Per-class queue bounds give
  typed backpressure (:class:`~repro.service.scheduler.QueueFull`)
  instead of unbounded growth, and foreground (``interactive`` /
  ``normal``) batches always form before ``background`` ones, which
  drain ``background_batch_size`` (default 1) at a time so a flood
  never occupies the writer for a full batch while interactive work
  waits. :meth:`~TuningEngine.pump` is the deterministic synchronous
  drain (what tests and the replay CLI use); :meth:`~TuningEngine.start`
  runs the same loop on a background thread, which additionally runs
  deferred maintenance tasks (:meth:`~TuningEngine.defer`) whenever the
  statement queues are idle. With ``workers > 1`` the single writer
  fans each statement's per-part kernel relaxations out to the tuner's
  worker pool (partition-parallel ingest; bit-identical to
  ``workers=1`` — see :mod:`repro.core.wfit`).
* **Shared caches** — every session's statements flow through one
  :class:`~repro.optimizer.whatif.WhatIfOptimizer`, so overlapping
  workloads pay for each plan optimization once
  (:meth:`~repro.optimizer.whatif.WhatIfOptimizer.cache_stats` exposes the
  hit rates; ``benchmarks/bench_service.py`` measures the win).
* **Session routing** — each client gets its own audit log and default
  priority class; votes and DBA materialization actions are routed from
  any client to the shared core and recorded against the acting client.
* **totWork accounting, recommended and realized** — the engine accounts
  the §3.1 metric twice: :attr:`~TuningEngine.total_work` under
  *immediate adoption* (every recommendation takes effect the moment it
  is produced — the autonomous-WFIT series), and
  :attr:`~TuningEngine.realized_total_work` under the configurations the
  DBA *actually* materialized (:meth:`~TuningEngine.create_index` /
  :meth:`~TuningEngine.drop_index` / :meth:`~TuningEngine.adopt`), so a
  lagging DBA's cost shows up honestly (the Figure 11 experiment, now
  reported live by :meth:`~TuningEngine.metrics`). A statement's
  realized cost is charged under the materialized set in effect at the
  *next* statement's analysis (deferred finalization): a DBA who adopts
  between the two — zero lag — is charged exactly the recommended cost,
  which is what makes the two series provably equal at lag 0.
  Checkpoint/restore preserves both series.

Checkpoint/restore lives in :mod:`repro.service.snapshot`;
:meth:`TuningEngine.checkpoint` and :meth:`TuningEngine.restore` are the
entry points.
"""

from __future__ import annotations

# reprolint: lock-alias _wakeup=_ingest_lock
# (_wakeup is a Condition constructed over _ingest_lock: entering it IS
# entering the ingest lock, so lock-discipline analysis treats them as one.)

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .. import obs
from ..core.wfit import WFIT
from ..db.index import Index
from ..optimizer.whatif import WhatIfOptimizer
from ..query.ast import Statement
from ..query.parser import parse_statement, to_sql
from .scheduler import (
    BACKGROUND_CLASSES,
    DEFAULT_PRIORITY,
    FOREGROUND_CLASSES,
    PRIORITIES,
    IngestScheduler,
    QueueEntry,
    QueueFull,
    normalize_priority,
)

__all__ = [
    "ClientSession",
    "QueueFull",
    "Recommendation",
    "SessionEvent",
    "TuningEngine",
]


@dataclass(frozen=True)
class SessionEvent:
    """One entry of a client's audit log."""

    kind: str          # "statement" | "vote" | "create" | "drop" | "recommendation"
    detail: str
    position: int      # client statements processed when the event happened


@dataclass(frozen=True)
class Recommendation:
    """A point-in-time recommendation, diffed against the materialized set."""

    recommended: FrozenSet[Index]
    materialized: FrozenSet[Index]

    @property
    def to_create(self) -> Tuple[Index, ...]:
        return tuple(sorted(self.recommended - self.materialized))

    @property
    def to_drop(self) -> Tuple[Index, ...]:
        return tuple(sorted(self.materialized - self.recommended))

    def statements(self) -> List[str]:
        """DDL the DBA would run to adopt the recommendation."""
        out = [
            f"CREATE INDEX {ix.name} ON {ix.table} ({', '.join(ix.columns)})"
            for ix in self.to_create
        ]
        out.extend(f"DROP INDEX {ix.name}" for ix in self.to_drop)
        return out

    @property
    def is_adopted(self) -> bool:
        return self.recommended == self.materialized


#: Default per-client analyze-latency window retained for percentile
#: reporting (override per engine with the ``latency_window`` constructor
#: knob). A bounded window keeps the engine's footprint flat over unbounded
#: statement streams — an unbounded per-statement append is a memory leak
#: in any long-lived session; p50/p95 then describe recent behavior, which
#: is what an operator watching a live engine wants anyway.
_LATENCY_WINDOW = 4096


class _ClientState:
    """Engine-internal per-client bookkeeping."""

    __slots__ = (
        "client_id",
        "priority",
        "submitted",
        "processed",
        "events",
        "latencies",
        "recommended_work",
        "realized_work",
    )

    def __init__(self, client_id: str, latency_window: int) -> None:
        self.client_id = client_id
        self.priority = DEFAULT_PRIORITY
        self.submitted = 0
        self.processed = 0
        self.events: List[SessionEvent] = []
        # Wall-clock seconds each of the client's last ``latency_window``
        # statements spent inside the shared core (analysis + totWork
        # accounting). Ephemeral observability: not part of checkpoint
        # documents.
        self.latencies: Deque[float] = deque(maxlen=latency_window)
        # Per-session query-cost shares of the two totWork series
        # (transition costs are a property of the shared configuration,
        # not of any one session, so they live only in the engine-level
        # totals). ``realized_work`` covers *finalized* statements; the
        # one statement whose realized cost is still pending is projected
        # only into the engine-level realized total.
        self.recommended_work = 0.0
        self.realized_work = 0.0


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 when empty).

    The nearest-rank definition: the smallest value with at least
    ``fraction`` of the samples at or below it, i.e. index
    ``ceil(fraction · n) − 1``. A single sample is every percentile of
    itself, and p50 of two samples is the lower one — the previous
    ``int(fraction · n)`` truncation read one rank too high (p50 of
    ``[a, b]`` returned ``b``) and only the clamp hid it at p95+.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


# Process-wide engine instruments on the default registry, built lazily so
# importing the service registers nothing. Counters/histograms aggregate
# across engine instances (a process total); the queue-depth gauges and
# backpressure counter instead come from a per-engine collector so they
# always read the *current* level (and die with the engine).
_ENGINE_INSTRUMENTS: Dict[str, object] = {}


def _engine_instruments() -> Dict[str, object]:
    if not _ENGINE_INSTRUMENTS:
        registry = obs.default_registry()
        _ENGINE_INSTRUMENTS["statements"] = registry.counter(
            "repro_engine_statements_total",
            help="Statements analyzed through the shared core.",
        )
        _ENGINE_INSTRUMENTS["batches"] = registry.counter(
            "repro_engine_batches_total",
            help="Micro-batches drained by the single writer.",
        )
        _ENGINE_INSTRUMENTS["batch_size"] = registry.histogram(
            "repro_engine_batch_size",
            help="Statements per drained micro-batch.",
            buckets=obs.POW2_BUCKETS,
        )
        _ENGINE_INSTRUMENTS["background_tasks"] = registry.counter(
            "repro_engine_background_tasks_total",
            help="Deferred maintenance tasks run in idle queue windows.",
        )
        _ENGINE_INSTRUMENTS["latency"] = {}
    return _ENGINE_INSTRUMENTS


def _latency_histogram(client_id: str):
    instruments = _engine_instruments()
    table: Dict[str, object] = instruments["latency"]  # type: ignore[assignment]
    hist = table.get(client_id)
    if hist is None:
        hist = table[client_id] = obs.default_registry().histogram(
            "repro_engine_statement_seconds",
            help="Per-session in-core statement latency.",
            labels={"client": client_id},
        )
    return hist


class TuningEngine:
    """Multiplexes many client sessions over one shared WFIT core."""

    def __init__(
        self,
        optimizer: WhatIfOptimizer,
        transitions,
        materialized: AbstractSet[Index] = frozenset(),
        batch_size: int = 32,
        workers: Optional[int] = None,
        latency_window: int = _LATENCY_WINDOW,
        background_batch_size: int = 1,
        background_pacing: float = 0.008,
        queue_limits: Optional[Mapping[str, Optional[int]]] = None,
        **wfit_options,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        if background_batch_size < 1:
            raise ValueError("background_batch_size must be >= 1")
        if background_pacing < 0:
            raise ValueError("background_pacing must be >= 0")
        self._optimizer = optimizer
        self._transitions = transitions
        self._tuner = WFIT(
            optimizer, transitions, initial_config=frozenset(materialized),
            workers=workers,
            **wfit_options,
        )
        self._materialized: set = set(materialized)  # guarded-by: _pump_lock
        self.batch_size = batch_size
        self.latency_window = latency_window
        #: Statements per *background* micro-batch. Deliberately tiny by
        #: default: the single writer is non-preemptive, so this bounds
        #: how long a queued background flood can occupy it before the
        #: next foreground arrival gets a turn.
        self.background_batch_size = background_batch_size
        #: Seconds the drain thread idles after a background-only drain
        #: cycle (0 disables). Pacing caps the background lane's duty
        #: cycle on the non-preemptive writer: with a flood queued, the
        #: writer is busy only ``cost/(cost+pacing)`` of the time, so an
        #: interactive arrival almost always finds it parked in the
        #: wakeup wait and is picked up immediately. Only the threaded
        #: drain loop paces — synchronous :meth:`pump` never sleeps, so
        #: replay and tests are unaffected.
        self.background_pacing = float(background_pacing)

        # Ingest: the priority-classed queues live in the scheduler
        # (internally locked); _ingest_lock orders admission → WAL append
        # → enqueue as one atomic step against other submitters and the
        # single writer. _pump_lock serializes the single writer that may
        # touch the tuner. _wakeup signals the background drain thread.
        # _lifecycle_lock serializes start()/stop() transitions (without
        # it two concurrent start() calls can both pass the
        # thread-is-None check and leak a drain thread). Lock order:
        # _pump_lock → _ingest_lock → IngestScheduler._lock.
        self._scheduler = IngestScheduler(limits=queue_limits)
        # Optional write-ahead log (attached by repro.service.wal.Durability).
        # Submissions log under the ingest lock, votes/materializations under
        # the pump lock — always in the same critical section as the in-memory
        # mutation, so WAL order equals effect order. Batch drains log under
        # both (see _drain_batch).
        self._wal = None  # guarded-by: _ingest_lock, _pump_lock
        self._ingest_lock = threading.Lock()
        self._pump_lock = threading.RLock()
        self._lifecycle_lock = threading.Lock()
        self._wakeup = threading.Condition(self._ingest_lock)
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lifecycle_lock
        self._stop_flag = threading.Event()

        self._clients: Dict[str, _ClientState] = {}  # guarded-by: _ingest_lock
        self._statements_processed = 0  # guarded-by: _pump_lock
        self._batches_processed = 0  # guarded-by: _pump_lock
        # Parallel-efficiency of the most recent micro-batch that actually
        # ran fan-out sections (None until one has).
        self._last_batch_parallel_efficiency: Optional[float] = None  # guarded-by: _pump_lock
        # totWork accounting (§3.1), twice over. The *recommended* series
        # assumes immediate adoption: the configuration the accounting
        # charges costs under, and the cumulative metric.
        self._accounting_config: FrozenSet[Index] = frozenset(materialized)  # guarded-by: _pump_lock
        self._total_work = 0.0  # guarded-by: _pump_lock
        # The *realized* series charges under what the DBA actually
        # materialized. A statement's realized cost is finalized at the
        # next analysis (deferred: the DBA may adopt between the two);
        # _pending_realized holds the one statement still open.
        self._realized_work = 0.0  # guarded-by: _pump_lock
        self._pending_realized: Optional[Tuple[str, Statement]] = None  # guarded-by: _pump_lock
        # Transition costs the DBA paid while _pending_realized was open;
        # they are folded into that statement's finalization as one
        # ``cost + transition`` sum — the exact accumulation grouping
        # run_online uses — so the two accountings agree to the last bit,
        # not merely to rounding.
        self._pending_transition = 0.0  # guarded-by: _pump_lock
        # Adoption-lag bookkeeping: when (in global statement count) the
        # materialized set last changed, and how often it has.
        self._last_adoption_position: Optional[int] = None  # guarded-by: _pump_lock
        self._adoptions = 0  # guarded-by: _pump_lock
        # Background-task lane accounting (tasks themselves queue in the
        # scheduler).
        self._background_tasks_run = 0  # guarded-by: _pump_lock
        self._background_task_errors = 0  # guarded-by: _pump_lock
        self._last_background_error: Optional[str] = None  # guarded-by: _pump_lock
        # Observability: construction instant for metrics()["uptime_s"]
        # (monotonic — wall-clock steps must not produce negative uptime),
        # and a weak registry collector for the live queue-depth gauges
        # (summed across engines; dies with the engine).
        self._started_monotonic = time.monotonic()
        obs.default_registry().register_collector(self._collect_obs)

    def _collect_obs(self):
        """Registry collector: queue depths (total and per class) plus the
        cumulative backpressure-rejection count."""
        depths = self._scheduler.depths()
        rejections = self._scheduler.rejections()
        samples = [{
            "name": "repro_engine_queue_depth",
            "type": "gauge",
            "help": "Statements submitted but not yet analyzed.",
            "value": sum(depths.values()),
        }]
        for priority in PRIORITIES:
            samples.append({
                "name": "repro_engine_queue_depth_class",
                "type": "gauge",
                "help": "Statements queued per priority class.",
                "labels": {"priority": priority},
                "value": depths[priority],
            })
        samples.append({
            "name": "repro_engine_backpressure_rejections_total",
            "type": "counter",
            "help": "Submissions rejected by per-class admission control.",
            "value": sum(rejections.values()),
        })
        return samples

    @classmethod
    def for_stats(cls, stats, **options) -> "TuningEngine":
        """Build an engine with the default optimizer/δ over ``stats``."""
        from ..db.transitions import StatsTransitionCosts

        return cls(
            WhatIfOptimizer(stats), StatsTransitionCosts(stats), **options
        )

    # -- shared core introspection -------------------------------------------

    @property
    def tuner(self) -> WFIT:
        return self._tuner

    @property
    def optimizer(self) -> WhatIfOptimizer:
        return self._optimizer

    @property
    def transitions(self):
        return self._transitions

    @property
    def materialized(self) -> FrozenSet[Index]:
        with self._pump_lock:
            return frozenset(self._materialized)

    @property
    def workers(self) -> int:
        """Per-part fan-out pool size of the shared tuner (1 = serial)."""
        return self._tuner.workers

    def close(self) -> None:
        """Release execution resources: stop the drain thread (draining
        pending *foreground* work first — see :meth:`stop`) and shut down
        the tuner's worker pool. Statements still queued in the
        background class are dropped from memory; when a WAL is attached
        they remain durable and re-enter the queue on recovery."""
        self.stop(drain=True)
        self._tuner.close()

    @property
    def statements_processed(self) -> int:
        with self._pump_lock:
            return self._statements_processed

    @property
    def batches_processed(self) -> int:
        with self._pump_lock:
            return self._batches_processed

    @property
    def total_work(self) -> float:
        """Cumulative totWork under immediate adoption (§3.1).

        The *recommended* series: every recommendation is charged as if
        adopted the instant it was produced — autonomous WFIT. Compare
        :attr:`realized_total_work`.
        """
        with self._pump_lock:
            return self._total_work

    @property
    def realized_total_work(self) -> float:
        """Cumulative totWork under the *actually materialized* configs.

        Query costs are charged under the materialized set in effect at
        the subsequent statement's analysis (deferred finalization), so
        the one still-open statement is projected under the current set
        — reading this property never mutates accounting state.
        Transition costs are charged when the DBA materializes
        (:meth:`create_index` / :meth:`drop_index` / :meth:`adopt`). With
        a DBA who adopts after every statement this equals
        :attr:`total_work` exactly; with a lagging DBA the gap is the
        price of the lag (Figure 11, live).
        """
        with self._pump_lock:
            total = self._realized_work
            if self._pending_realized is not None:
                _, statement = self._pending_realized
                total += (
                    self._optimizer.cost(
                        statement, frozenset(self._materialized)
                    )
                    + self._pending_transition
                )
            return total

    @property
    def queue_depth(self) -> int:
        return self._scheduler.depth()

    @property
    def queue_depths(self) -> Dict[str, int]:
        """Current per-priority-class queue depths."""
        return self._scheduler.depths()

    @property
    def backpressure_rejections(self) -> int:
        """Cumulative submissions rejected by admission control."""
        return sum(self._scheduler.rejections().values())

    @property
    def session_ids(self) -> Tuple[str, ...]:
        with self._ingest_lock:
            return tuple(sorted(self._clients))

    # -- session management ----------------------------------------------------

    def _client(self, client_id: str) -> _ClientState:
        # The whole lookup runs under the ingest lock. The previous
        # lock-free fast path read the dict while concurrent submitters
        # could be inserting — safe-ish on CPython today, but exactly the
        # kind of convention R3 exists to make explicit rather than lucky.
        with self._ingest_lock:
            state = self._clients.get(client_id)
            if state is None:
                state = self._clients[client_id] = _ClientState(
                    client_id, self.latency_window
                )
        return state

    def session(
        self, client_id: str = "default", priority: Optional[str] = None
    ) -> "ClientSession":
        """A handle bound to ``client_id`` (created on first use).

        ``priority`` sets (or updates) the session's default class —
        every subsequent :meth:`submit` without an explicit priority
        inherits it. Omitted, an existing session keeps its class and a
        new one defaults to ``"normal"``.
        """
        state = self._client(client_id)
        if priority is not None:
            resolved = normalize_priority(priority)
            with self._ingest_lock:
                state.priority = resolved
        return ClientSession(self, client_id)

    def attach_wal(self, wal) -> None:
        """Attach a :class:`repro.service.wal.WriteAheadLog` to the ingest
        path (or detach with ``None``).

        Both locks are taken so neither an in-flight submit nor the
        single writer can observe a half-attached log; from the next
        ingest-path operation on, every mutation is logged before it is
        applied. Prefer :meth:`repro.service.wal.Durability.attach`,
        which also manages sequence continuation and torn-tail repair.
        """
        with self._pump_lock:
            with self._ingest_lock:
                self._wal = wal

    def _log(self, client: _ClientState, kind: str, detail: str) -> None:
        client.events.append(SessionEvent(kind, detail, client.processed))

    def history(self, client_id: str) -> Tuple[SessionEvent, ...]:
        return tuple(self._client(client_id).events)

    # -- ingest ---------------------------------------------------------------

    def submit(
        self,
        client_id: str,
        statement: Union[str, Statement],
        priority: Optional[str] = None,
    ) -> Statement:
        """Enqueue one statement for ``client_id``; returns the parsed AST.

        ``priority`` overrides the session's default class for this one
        statement. Admission control runs *first*: when the class's
        queue bound would be exceeded, :class:`QueueFull` is raised
        before anything is logged or enqueued — the WAL never records a
        submission the engine did not accept, so recovery replays
        exactly the admitted stream. The statement is analyzed at the
        next :meth:`pump` (or by the background drain thread when
        :meth:`start` is active).
        """
        parsed = (
            parse_statement(statement) if isinstance(statement, str) else statement
        )
        client = self._client(client_id)
        with self._ingest_lock:
            resolved = (
                normalize_priority(priority)
                if priority is not None
                else client.priority
            )
            self._scheduler.admit(resolved, 1)
            if self._wal is not None:
                payload: Dict[str, object] = {
                    "client_id": client_id, "sql": to_sql(parsed),
                }
                if resolved != DEFAULT_PRIORITY:
                    payload["priority"] = resolved
                self._wal.append("submit", payload)
            self._scheduler.push(resolved, client_id, parsed)
            client.submitted += 1
            self._wakeup.notify()
        return parsed

    def submit_many(
        self,
        entries: Iterable[
            Union[
                Tuple[str, Union[str, Statement]],
                Tuple[str, Union[str, Statement], Optional[str]],
            ]
        ],
    ) -> int:
        """Enqueue a batch of ``(client_id, statement[, priority])`` tuples.

        The whole batch is parsed first, then admitted and enqueued under
        a *single* queue-lock acquisition with one drain-thread
        ``notify`` — submission order is preserved, and an N-statement
        batch costs one lock round-trip instead of N (the per-statement
        locking showed up directly in ingest throughput under concurrent
        submitters). Admission is all-or-nothing: if any class's bound
        would be exceeded, :class:`QueueFull` is raised and *nothing* —
        no WAL record, no queue entry — happens for any element.
        """
        batch: List[Tuple[_ClientState, str, Statement, Optional[str]]] = []
        for entry in entries:
            if len(entry) == 3:
                client_id, statement, priority = entry  # type: ignore[misc]
            else:
                client_id, statement = entry  # type: ignore[misc]
                priority = None
            parsed = (
                parse_statement(statement)
                if isinstance(statement, str)
                else statement
            )
            if priority is not None:
                priority = normalize_priority(priority)
            # Resolve client states outside the queue lock: _client() takes
            # _ingest_lock itself on first sight of a client.
            batch.append((self._client(client_id), client_id, parsed, priority))
        if not batch:
            return 0
        with self._ingest_lock:
            resolved = [
                (
                    client,
                    client_id,
                    parsed,
                    priority if priority is not None else client.priority,
                )
                for client, client_id, parsed, priority in batch
            ]
            counts: Dict[str, int] = {}
            for _, _, _, priority in resolved:
                counts[priority] = counts.get(priority, 0) + 1
            for priority in sorted(counts):
                self._scheduler.admit(priority, counts[priority])
            if self._wal is not None:
                payload_entries: List[Dict[str, object]] = []
                for _, client_id, parsed, priority in resolved:
                    item: Dict[str, object] = {
                        "client_id": client_id, "sql": to_sql(parsed),
                    }
                    if priority != DEFAULT_PRIORITY:
                        item["priority"] = priority
                    payload_entries.append(item)
                self._wal.append("submit_many", {"entries": payload_entries})
            for client, client_id, parsed, priority in resolved:
                self._scheduler.push(priority, client_id, parsed)
                client.submitted += 1
            self._wakeup.notify()
        return len(batch)

    def defer(self, name: str, fn: Callable[[], object]) -> int:
        """Queue a maintenance callable on the background task lane.

        The task runs — FIFO among deferred tasks — only when every
        statement queue is idle: by the background drain thread between
        polls, or synchronously via :meth:`run_background_tasks`.
        Exceptions are contained and counted
        (``metrics()["background_tasks"]``), never propagated. Returns
        the task's lane sequence number.
        """
        seq = self._scheduler.defer(name, fn)
        with self._wakeup:
            self._wakeup.notify()
        return seq

    def _analyze(self, client_id: str, statement: Statement) -> None:  # holds: _pump_lock
        """Run one statement through the shared core (writer lock held)."""
        started = time.perf_counter()
        with obs.span("engine.analyze"):
            self._finalize_realized()
            recommendation = self._tuner.analyze_statement(statement)
            transition = 0.0
            if recommendation != self._accounting_config:
                transition = self._transitions.delta(
                    self._accounting_config, recommendation
                )
                self._accounting_config = recommendation
            cost = self._optimizer.cost(statement, recommendation)
            # One ``cost + transition`` sum per statement — the same
            # accumulation grouping as the realized series and
            # run_online, so cross-checks are bit-exact.
            self._total_work += cost + transition
            client = self._client(client_id)
            client.recommended_work += cost
            self._pending_realized = (client_id, statement)
        elapsed = time.perf_counter() - started
        self._statements_processed += 1
        client.processed += 1
        client.latencies.append(elapsed)
        if obs.state.enabled:
            _engine_instruments()["statements"].inc()  # type: ignore[union-attr]
            _latency_histogram(client_id).observe(elapsed)  # type: ignore[union-attr]
        self._log(client, "statement", to_sql(statement))

    def _finalize_realized(self) -> None:  # holds: _pump_lock
        """Charge the open statement's realized cost under the current
        materialized set (deferred so an adoption between two statements
        lands before the earlier one is priced — run_online's convention
        of charging the adoption-point statement post-adoption)."""
        pending = self._pending_realized
        if pending is None:
            return
        client_id, statement = pending
        self._pending_realized = None
        cost = self._optimizer.cost(statement, frozenset(self._materialized))
        self._realized_work += cost + self._pending_transition
        self._pending_transition = 0.0
        self._client(client_id).realized_work += cost

    def _charge_realized_transition(self, delta: float) -> None:  # holds: _pump_lock
        """Account a DBA-paid transition cost in the realized series.

        Folded into the open statement's finalization when one is
        pending (preserving run_online's per-statement sum grouping);
        charged directly when the DBA acts before any statement is open.
        """
        if self._pending_realized is None:
            self._realized_work += delta
        else:
            self._pending_transition += delta

    def _process_entries(self, entries: List[QueueEntry]) -> None:  # holds: _pump_lock
        """Analyze one formed micro-batch through the shared core."""
        before = self._tuner.parallel_stats()
        for entry in entries:
            self._analyze(entry.client_id, entry.statement)
        after = self._tuner.parallel_stats()
        wall = (
            after["parallel_wall_seconds"]
            - before["parallel_wall_seconds"]
        )
        if wall > 0.0:
            busy = (
                after["parallel_busy_seconds"]
                - before["parallel_busy_seconds"]
            )
            self._last_batch_parallel_efficiency = busy / (
                wall * self._tuner.workers
            )
        self._batches_processed += 1
        if obs.state.enabled:
            instruments = _engine_instruments()
            instruments["batches"].inc()  # type: ignore[union-attr]
            instruments["batch_size"].observe(len(entries))  # type: ignore[union-attr]

    def _drain_batch(self, budget: int, classes: Tuple[str, ...]) -> int:  # holds: _pump_lock
        """Form and analyze one micro-batch from ``classes``.

        Batch formation and the WAL ``drain`` record happen under the
        ingest lock, so no concurrent submit can land between the pop
        and the record — the log's drain order is exactly the effect
        order, which is what replay depends on. Drain records are only
        written once a non-default priority has ever been enqueued: an
        all-``normal`` history drains FIFO, replay can reproduce it from
        the submissions alone, and the log stays byte-identical to the
        pre-scheduler format.
        """
        with self._ingest_lock:
            entries = self._scheduler.take(budget, classes)
            if (
                entries
                and self._wal is not None
                and self._scheduler.priorities_seen
            ):
                self._wal.append(
                    "drain",
                    {
                        "position": self._statements_processed,
                        "count": len(entries),
                        "classes": list(classes),
                    },
                )
        if not entries:
            return 0
        self._process_entries(entries)
        return len(entries)

    def pump(
        self,
        limit: Optional[int] = None,
        classes: Optional[Sequence[str]] = None,
    ) -> int:
        """Drain pending submissions synchronously; returns the count.

        The single-writer micro-batching loop: forms batches of up to
        ``batch_size`` statements from the *foreground* classes
        (``interactive`` before ``normal``, FIFO within each), and only
        when no foreground work is queued forms batches of up to
        ``background_batch_size`` from the ``background`` class.
        ``classes`` restricts which priority classes are eligible at all
        (None = every class). With no ``limit`` it drains the whole
        (eligible) queue. Deterministic: batch formation is a pure
        function of queue content, so tests (and the replay CLI) can
        single-step the engine; with every submission in one class this
        is exact submission order.
        """
        if classes is None:
            eligible = PRIORITIES
        else:
            eligible = tuple(normalize_priority(c) for c in classes)
        foreground = tuple(c for c in FOREGROUND_CLASSES if c in eligible)
        background = tuple(c for c in BACKGROUND_CLASSES if c in eligible)
        processed = 0
        with self._pump_lock:
            while limit is None or processed < limit:
                budget = self.batch_size
                if limit is not None:
                    budget = min(budget, limit - processed)
                count = 0
                if foreground:
                    count = self._drain_batch(budget, foreground)
                if count == 0 and background:
                    count = self._drain_batch(
                        min(budget, self.background_batch_size), background
                    )
                if count == 0:
                    break
                processed += count
        return processed

    def _pump_fifo(self, limit: int) -> int:
        """Recovery catch-up drain: pure arrival order, no lane rules.

        WAL records written before any non-default priority existed
        carry no batch boundaries; at that point every queued entry was
        ``normal`` and drained FIFO. Replay must reproduce those pops by
        arrival order even though later (already re-enqueued)
        submissions with higher classes are now sitting in the queues —
        priority-order popping would steal their place. Only
        :meth:`repro.service.wal.Durability` calls this.
        """
        processed = 0
        with self._pump_lock:
            while processed < limit:
                budget = min(self.batch_size, limit - processed)
                with self._ingest_lock:
                    entries = self._scheduler.take_fifo(budget)
                if not entries:
                    break
                self._process_entries(entries)
                processed += len(entries)
        return processed

    def _replay_drain(self, count: int, classes: Sequence[str]) -> int:
        """Re-form one WAL-logged micro-batch during recovery.

        Pops exactly the entries the original ``drain`` record covered
        (same class filter, same deterministic order) and analyzes them.
        Returns how many were actually available — the caller
        (:meth:`repro.service.wal.Durability._apply_record`) refuses
        recovery on a shortfall.
        """
        eligible = tuple(normalize_priority(c) for c in classes) or PRIORITIES
        with self._pump_lock:
            with self._ingest_lock:
                entries = self._scheduler.take(count, eligible)
            if entries:
                self._process_entries(entries)
            return len(entries)

    # -- background drain ------------------------------------------------------

    def start(self, poll_interval: float = 0.05) -> None:
        """Start the background single-writer drain thread.

        The thread drains foreground micro-batches with :meth:`pump`;
        with no foreground queued it drains one *paced* background batch
        (see ``background_pacing``: after each background-only cycle it
        parks in the wakeup wait, so a foreground submit interrupts the
        pacing idle instantly — the lost-wakeup race is closed by
        re-checking the foreground depth under the wakeup condition's
        lock, the same lock every submit notifies under). When every
        statement queue is idle it runs at most one deferred background
        task (:meth:`defer`) per poll before sleeping, so maintenance
        work only ever uses idle windows. Lifecycle transitions are
        serialized by an internal lock: two threads racing into
        ``start()`` cannot both pass the already-running check (one
        starts the drain thread, the other raises), and a ``stop()``
        concurrent with a ``start()`` observes either the fully-started
        or the not-yet-started engine, never a half-built one.
        """
        with self._lifecycle_lock:
            if self._thread is not None:
                raise RuntimeError("engine is already running")
            self._stop_flag.clear()

            def _loop() -> None:
                while not self._stop_flag.is_set():
                    if self.pump(self.batch_size, classes=FOREGROUND_CLASSES):
                        continue
                    if self.pump(
                        self.background_batch_size,
                        classes=BACKGROUND_CLASSES,
                    ):
                        if self.background_pacing > 0.0:
                            with self._wakeup:
                                if (
                                    self._scheduler.depth(FOREGROUND_CLASSES)
                                    == 0
                                    and not self._stop_flag.is_set()
                                ):
                                    self._wakeup.wait(
                                        timeout=self.background_pacing
                                    )
                        continue
                    if self.run_background_tasks(limit=1) == 0:
                        with self._wakeup:
                            self._wakeup.wait(timeout=poll_interval)

            thread = threading.Thread(
                target=_loop, name="tuning-engine-drain", daemon=True
            )
            thread.start()
            # Publish only after a successful start so a failed Thread
            # construction can never leave a stale handle behind.
            self._thread = thread

    def stop(self, drain: bool = True) -> None:
        """Stop the background thread (idempotent); optionally drain.

        ``drain=True`` drains the **foreground classes only**
        (``interactive`` and ``normal``): shutdown must not be held
        hostage by a queued background flood. Background statements stay
        queued in memory (and durable in the WAL, when attached); drain
        them explicitly with ``pump(classes=("background",))`` — or
        ``pump()`` — before stopping if that is what you want.
        Safe to call concurrently with :meth:`start` (the lifecycle lock
        orders the two: stop-then-start leaves the engine running,
        start-then-stop leaves it stopped) and with other ``stop`` calls —
        exactly one caller joins the thread.
        """
        with self._lifecycle_lock:
            thread = self._thread
            if thread is not None:
                self._stop_flag.set()
                with self._wakeup:
                    self._wakeup.notify_all()
                thread.join()
                self._thread = None
        if drain:
            self.pump(classes=FOREGROUND_CLASSES)

    def run_background_tasks(self, limit: Optional[int] = None) -> int:
        """Run deferred tasks while every statement queue is idle.

        Stops early — returning how many tasks ran — as soon as a
        statement is queued (statement analysis always outranks
        maintenance), the lane is empty, or ``limit`` is reached. Task
        exceptions are contained: counted in
        ``metrics()["background_tasks"]["errors"]`` with the latest
        message retained, so one bad task cannot kill the drain thread.
        """
        run = 0
        with self._pump_lock:
            while limit is None or run < limit:
                if self._scheduler.depth() > 0:
                    break
                task = self._scheduler.take_task()
                if task is None:
                    break
                _, name, fn = task
                with obs.span("engine.background_task"):
                    try:
                        fn()
                    except Exception as exc:  # noqa: BLE001 — contained by design
                        self._background_task_errors += 1
                        self._last_background_error = f"{name}: {exc!r}"
                self._background_tasks_run += 1
                if obs.state.enabled:
                    _engine_instruments()["background_tasks"].inc()  # type: ignore[union-attr]
                run += 1
        return run

    @property
    def running(self) -> bool:
        with self._lifecycle_lock:
            return self._thread is not None

    # -- recommendations and feedback routing ---------------------------------

    def recommendation(self, client_id: str = "default") -> Recommendation:
        """The current shared recommendation, audited to ``client_id``."""
        with self._pump_lock:
            rec = Recommendation(
                recommended=self._tuner.recommend(),
                materialized=frozenset(self._materialized),
            )
        self._log(
            self._client(client_id),
            "recommendation",
            f"create={len(rec.to_create)} drop={len(rec.to_drop)}",
        )
        return rec

    def vote(
        self,
        client_id: str,
        f_plus: AbstractSet[Index],
        f_minus: AbstractSet[Index],
    ) -> FrozenSet[Index]:
        """Route explicit DBA votes from ``client_id`` to the shared core."""
        with self._pump_lock:
            # Validate before logging: a WAL record for a vote the core
            # then rejects would be replayed by every subsequent recovery
            # and fail there the same way — one bad client call must not
            # leave a durable poison pill (create/drop below follow the
            # same check-then-log order).
            if frozenset(f_plus) & frozenset(f_minus):
                raise ValueError("F+ and F- must be disjoint")
            if self._wal is not None:
                # The position pins the vote to the statement count it ran
                # at: recovery pumps exactly that far before re-applying,
                # so feedback lands on the same work-function state.
                self._wal.append(
                    "vote",
                    {
                        "client_id": client_id,
                        "position": self._statements_processed,
                        "plus": [ix.to_payload() for ix in sorted(f_plus)],
                        "minus": [ix.to_payload() for ix in sorted(f_minus)],
                    },
                )
            rec = self._tuner.feedback(frozenset(f_plus), frozenset(f_minus))
        self._log(
            self._client(client_id),
            "vote",
            "+{" + ", ".join(ix.name for ix in sorted(f_plus)) + "} "
            "-{" + ", ".join(ix.name for ix in sorted(f_minus)) + "}",
        )
        return rec

    def _note_adoption(self) -> None:  # holds: _pump_lock
        self._adoptions += 1
        self._last_adoption_position = self._statements_processed

    def create_index(self, client_id: str, index: Index) -> None:
        """``client_id`` materializes an index; WFIT learns via a +vote.

        The realized totWork series is charged the transition cost of
        building the index here — at the moment the DBA actually paid it.
        """
        with self._pump_lock:
            if index in self._materialized:
                raise ValueError(f"{index.name} is already materialized")
            if self._wal is not None:
                self._wal.append(
                    "materialize",
                    {
                        "client_id": client_id,
                        "position": self._statements_processed,
                        "action": "create",
                        "index": index.to_payload(),
                    },
                )
            before = frozenset(self._materialized)
            self._materialized.add(index)
            self._charge_realized_transition(
                self._transitions.delta(before, frozenset(self._materialized))
            )
            self._note_adoption()
            self._tuner.notify_materialized(
                created={index}, dropped=frozenset()
            )
        self._log(self._client(client_id), "create", index.name)

    def drop_index(self, client_id: str, index: Index) -> None:
        """``client_id`` drops an index; WFIT learns via a −vote."""
        with self._pump_lock:
            if index not in self._materialized:
                raise ValueError(f"{index.name} is not materialized")
            if self._wal is not None:
                self._wal.append(
                    "materialize",
                    {
                        "client_id": client_id,
                        "position": self._statements_processed,
                        "action": "drop",
                        "index": index.to_payload(),
                    },
                )
            before = frozenset(self._materialized)
            self._materialized.discard(index)
            self._charge_realized_transition(
                self._transitions.delta(before, frozenset(self._materialized))
            )
            self._note_adoption()
            self._tuner.notify_materialized(
                created=frozenset(), dropped={index}
            )
        self._log(self._client(client_id), "drop", index.name)

    def adopt(
        self, client_id: str = "default", *, lease: bool = True
    ) -> Tuple[Tuple[Index, ...], Tuple[Index, ...]]:
        """Adopt the current recommendation wholesale for ``client_id``.

        ``lease=True`` (the default, and the historical behavior) casts
        the lease-renewing implicit feedback of the Figure 11 DBA model:
        positive votes on the adopted set, negative on what it drops.
        ``lease=False`` adopts silently — the immediate-adoption
        (``adopt_period=1``) convention of
        :func:`repro.core.driver.run_online`, which casts no votes.
        The realized totWork series is charged the transition cost
        δ(materialized, recommended) here.
        """
        client = self._client(client_id)
        with self._pump_lock:
            if self._wal is not None:
                # Adoption is deterministic given the position: the replayed
                # engine recomputes the same recommendation there, so only
                # the action itself needs logging.
                payload: Dict[str, object] = {
                    "client_id": client_id,
                    "position": self._statements_processed,
                    "action": "adopt",
                }
                if not lease:
                    payload["lease"] = False
                self._wal.append("materialize", payload)
            rec = self._tuner.recommend()
            created = tuple(sorted(rec - self._materialized))
            dropped = tuple(sorted(self._materialized - rec))
            if created or dropped:
                self._charge_realized_transition(
                    self._transitions.delta(frozenset(self._materialized), rec)
                )
                self._note_adoption()
            self._materialized = set(rec)
            if lease:
                self._tuner.feedback(rec, frozenset(dropped))
        for index in created:
            self._log(client, "create", index.name)
        for index in dropped:
            self._log(client, "drop", index.name)
        return created, dropped

    # -- observability ---------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """Aggregate engine metrics plus per-session counters.

        Per-session ``latency_p50_ms`` / ``latency_p95_ms`` are
        *window-relative*: they summarize the client's last
        ``latency_window`` (constructor knob, default 4096) in-core
        statement latencies — analysis plus totWork accounting — not the
        full session history; 0.0 before any statement. Each session also
        reports its ``priority`` class and its finalized query-cost
        shares of the two totWork series (``recommended_work`` /
        ``realized_work``; shared transition costs appear only in the
        engine totals). ``workers`` is the per-part fan-out pool size;
        ``parallel`` reports the cumulative fan-out accounting of
        :meth:`~repro.core.wfit.WFIT.parallel_stats` plus
        ``last_batch_efficiency``, the busy/(wall × workers) ratio of
        the most recent micro-batch that ran a parallel section (None
        until one has; serial engines never do). ``uptime_s`` is seconds
        since construction (monotonic clock). ``queue_depth`` is the
        total submitted-but-unanalyzed backlog, ``queue_depths`` its
        per-priority-class split, and ``backpressure_rejections`` the
        cumulative admission-control rejections (``_by_class`` for the
        split). ``total_work`` / ``realized_total_work`` are the
        recommended (immediate-adoption) and realized (actual-adoption)
        §3.1 series; ``adoption`` summarizes DBA responsiveness —
        ``lag_statements`` is how many statements have been analyzed
        since the materialized set last changed (None before any
        change). ``background_tasks`` accounts the deferred-task lane.
        The numeric counters are also exported on the process-wide
        :mod:`repro.obs` registry as ``repro_engine_*`` series.
        """
        # The writer lock first: latency deques are appended to by the
        # single writer under _pump_lock, so snapshotting them requires it
        # (lock order matches pump(): _pump_lock, then _ingest_lock).
        with self._pump_lock:
            with self._ingest_lock:
                sessions = {}
                for client_id, state in sorted(self._clients.items()):
                    samples = list(state.latencies)
                    sessions[client_id] = {
                        "priority": state.priority,
                        "submitted": state.submitted,
                        "processed": state.processed,
                        "events": len(state.events),
                        "latency_p50_ms": _percentile(samples, 0.50) * 1000.0,
                        "latency_p95_ms": _percentile(samples, 0.95) * 1000.0,
                        "recommended_work": state.recommended_work,
                        "realized_work": state.realized_work,
                    }
                queue_depths = self._scheduler.depths()
                rejections = self._scheduler.rejections()
            parallel = dict(self._tuner.parallel_stats())
            parallel["last_batch_efficiency"] = (
                self._last_batch_parallel_efficiency
            )
            lag: Optional[int] = None
            if self._last_adoption_position is not None:
                lag = self._statements_processed - self._last_adoption_position
            return {
                "statements_processed": self._statements_processed,
                "batches_processed": self._batches_processed,
                "uptime_s": time.monotonic() - self._started_monotonic,
                "queue_depth": sum(queue_depths.values()),
                "queue_depths": queue_depths,
                "backpressure_rejections": sum(rejections.values()),
                "backpressure_rejections_by_class": rejections,
                "workers": self._tuner.workers,
                "parallel": parallel,
                "total_work": self._total_work,
                "realized_total_work": self.realized_total_work,
                "adoption": {
                    "changes": self._adoptions,
                    "last_position": self._last_adoption_position,
                    "lag_statements": lag,
                    "feedback_count": self._tuner.feedback_count,
                    "feedback_lag_statements": self._tuner.feedback_lag,
                },
                "background_tasks": {
                    "deferred": self._scheduler.tasks_deferred,
                    "queued": self._scheduler.task_depth(),
                    "run": self._background_tasks_run,
                    "errors": self._background_task_errors,
                    "last_error": self._last_background_error,
                },
                "materialized": [ix.name for ix in sorted(self._materialized)],
                "recommendation": [
                    ix.name for ix in sorted(self._tuner.recommend())
                ],
                "sessions": sessions,
                "cache": self._optimizer.cache_stats(),
            }

    # -- checkpoint / restore --------------------------------------------------

    def checkpoint(
        self,
        extra: Optional[Dict[str, object]] = None,
        drain: bool = True,
        *,
        snapshot_id: Optional[int] = None,
        base: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Serialize the full engine state to a versioned JSON document.

        The snapshot is taken between micro-batches, never inside one.
        With ``drain=True`` (the default) submissions pending at entry
        are analyzed first — **every class, background included**: a
        draining checkpoint is the "quiesce everything" operation, and
        leaving the background backlog queued would only move its bytes
        into the document. With ``drain=False`` the checkpoint returns
        without paying for any analysis — either way, whatever remains
        queued at the snapshot point (the whole backlog when not
        draining, or statements submitted concurrently with the drain)
        is serialized into the document's ``"pending"`` list — priority
        classes included — and replayed by :meth:`restore`, so no
        admitted statement is ever dropped from a checkpoint; the
        per-class admission bounds are what keep that list (and the
        document) bounded. ``extra`` is stored verbatim under the
        ``"extra"`` key (the replay CLI stashes trace parameters there).
        ``snapshot_id``/``base`` are the durability layer's chaining
        inputs (see :meth:`repro.service.wal.Durability.checkpoint`):
        with a ``base`` full document, unchanged parts are elided into a
        delta.
        """
        from .snapshot import checkpoint_engine

        with self._pump_lock:
            if drain:
                self.pump()
            return checkpoint_engine(
                self, extra=extra, snapshot_id=snapshot_id, base=base
            )

    @classmethod
    def restore(
        cls,
        document: Dict[str, object],
        optimizer: WhatIfOptimizer,
        transitions,
    ) -> "TuningEngine":
        """Rebuild an engine from a :meth:`checkpoint` document.

        The optimizer/δ provider must be built over equivalent statistics;
        the restored engine then produces step-identical recommendations
        and totWork from the checkpoint on.
        """
        from .snapshot import restore_engine

        return restore_engine(document, optimizer, transitions)

    @classmethod
    def recover(
        cls,
        directory,
        optimizer: WhatIfOptimizer,
        transitions,
        *,
        io=None,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> Tuple["TuningEngine", Dict[str, object]]:
        """Rebuild an engine from a durability directory (snapshot chain +
        WAL tail); returns ``(engine, report)``.

        The newest snapshot whose chain resolves is restored, then the
        WAL tail is replayed — submissions re-enter the queues (priority
        classes included), drained micro-batches re-form at their logged
        boundaries, votes and materializations re-apply at the statement
        positions they originally ran at; a torn final record is
        tolerated, mid-file corruption refuses with
        :class:`repro.service.wal.CorruptRecord`.
        Replayed submissions are left queued: pump (or attach a fresh
        WAL via :class:`repro.service.wal.Durability` first) to continue.
        """
        from ..ioutil import REAL_IO
        from .wal import Durability

        return Durability.recover(
            directory,
            optimizer,
            transitions,
            io=io if io is not None else REAL_IO,
            engine_options=engine_options,
        )


class ClientSession:
    """A client-facing handle over one engine session.

    Thin by construction: all state lives in the engine; the handle only
    binds a ``client_id``. ``execute`` is the synchronous convenience used
    by single-client callers (submit + drain); concurrent deployments
    submit and let the engine's drain loop do the work.
    """

    def __init__(self, engine: TuningEngine, client_id: str) -> None:
        self._engine = engine
        self._client_id = client_id

    @property
    def engine(self) -> TuningEngine:
        return self._engine

    @property
    def client_id(self) -> str:
        return self._client_id

    @property
    def priority(self) -> str:
        """The session's default priority class."""
        return self._engine._client(self._client_id).priority

    # -- workload --------------------------------------------------------------

    def submit(
        self,
        statement: Union[str, Statement],
        priority: Optional[str] = None,
    ) -> Statement:
        """Enqueue one statement (asynchronous ingest).

        ``priority`` overrides the session's default class for this one
        statement. Raises :class:`~repro.service.scheduler.QueueFull`
        when the class's admission bound is hit.
        """
        return self._engine.submit(self._client_id, statement, priority=priority)

    def execute(self, statement: Union[str, Statement]) -> Statement:
        """Intercept one statement synchronously; returns the AST.

        Equivalent to ``submit`` followed by a full drain — which is what a
        single-client deployment (the legacy ``AdvisorSession`` shape)
        wants. When the engine's background thread is running, this still
        guarantees the statement has been analyzed on return.
        """
        parsed = self._engine.submit(self._client_id, statement)
        self._engine.pump()
        return parsed

    def execute_many(
        self, statements: Iterable[Union[str, Statement]]
    ) -> int:
        """Intercept a batch; returns how many statements were analyzed."""
        count = 0
        for statement in statements:
            self.submit(statement)
            count += 1
        self._engine.pump()
        return count

    # -- recommendations / feedback / DBA actions ------------------------------

    def recommendation(self) -> Recommendation:
        return self._engine.recommendation(self._client_id)

    def vote(
        self, f_plus: AbstractSet[Index], f_minus: AbstractSet[Index]
    ) -> FrozenSet[Index]:
        return self._engine.vote(self._client_id, f_plus, f_minus)

    def vote_up(self, *indices: Index) -> FrozenSet[Index]:
        return self._engine.vote(self._client_id, frozenset(indices), frozenset())

    def vote_down(self, *indices: Index) -> FrozenSet[Index]:
        return self._engine.vote(self._client_id, frozenset(), frozenset(indices))

    def create_index(self, index: Index) -> None:
        self._engine.create_index(self._client_id, index)

    def drop_index(self, index: Index) -> None:
        self._engine.drop_index(self._client_id, index)

    def adopt(self, *, lease: bool = True) -> Tuple[Tuple[Index, ...], Tuple[Index, ...]]:
        return self._engine.adopt(self._client_id, lease=lease)

    # -- introspection ---------------------------------------------------------

    @property
    def materialized(self) -> FrozenSet[Index]:
        return self._engine.materialized

    @property
    def statements_submitted(self) -> int:
        return self._engine._client(self._client_id).submitted

    @property
    def statements_processed(self) -> int:
        return self._engine._client(self._client_id).processed

    def history(self) -> Tuple[SessionEvent, ...]:
        return self._engine.history(self._client_id)
