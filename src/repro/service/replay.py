"""Replay CLI: drive the tuning service over a generated multi-client trace.

Three subcommands::

    python -m repro.service replay  [trace options] \
        [--priority-map client-0=interactive,...] [--adopt-every T] \
        [--checkpoint-at K --checkpoint PATH] \
        [--durable-dir DIR [--checkpoint-every K] [--wal-fsync-ms MS]] \
        [--metrics-out PATH]
    python -m repro.service resume  --checkpoint PATH [--verify]
    python -m repro.service recover --dir DIR [--verify]

``replay`` deterministically generates the paper's phase-shifting workload,
deals it across N simulated clients, and streams it through a
:class:`~repro.service.engine.TuningEngine` (micro-batched ingest).
``--priority-map`` assigns per-session priority classes (drain order is
priority-aware; the map is stashed with the trace parameters so verify
references reproduce it), and ``--adopt-every T`` simulates the Figure 11
lagged DBA — every report carries a ``"lag"`` block with the recommended
vs. realized totWork series and adoption-lag counters. With
``--checkpoint-at K`` it serializes the engine after K statements; the
trace parameters are stashed inside the checkpoint document, so ``resume``
needs only the checkpoint file. With ``--durable-dir`` the run is durable:
every submission is write-ahead logged before it enters the queue, and
``--checkpoint-every K`` publishes a crash-atomic (delta-chained) snapshot
every K statements — kill the process at any instant and ``recover``
rebuilds the engine from the directory. ``resume --verify`` /
``recover --verify`` additionally run the uninterrupted engine over the
same trace and assert the restored engine's per-statement recommendation
sequence and final totWork match — the step-identical guarantee — exiting
1 on divergence; unreadable or chain-broken durable state exits 2.

All subcommands emit a JSON metrics report (stdout or ``--metrics-out``);
the report embeds a full :mod:`repro.obs` registry snapshot under ``"obs"``
(validate/pretty-print with ``python -m repro.obs``), and ``--trace-out``
writes the recent pipeline spans as a Chrome ``trace_event`` JSON loadable
in ``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..db import StatsTransitionCosts, build_catalog
from ..ioutil import atomic_write_json
from ..optimizer.whatif import WhatIfOptimizer
from ..workload import MultiClientTrace, generate_workload, scaled_phases
from .engine import TuningEngine
from .scheduler import normalize_priority
from .snapshot import SnapshotError, load_checkpoint, save_checkpoint
from .wal import Durability, WalError, latest_snapshot_document

__all__ = ["main"]

#: totWork comparison tolerance for ``resume --verify``.
_VERIFY_TOL = 1e-6


def _trace_params(args: argparse.Namespace) -> Dict[str, object]:
    return {
        "scale": args.scale,
        "per_phase": args.per_phase,
        "seed": args.seed,
        "clients": args.clients,
        "split": args.split,
        "limit": args.limit,
        # Session priority classes ride along with the trace parameters:
        # drain order (and so the recommendation sequence) depends on
        # them, so resume/recover verification must rebuild its reference
        # engine with the same classes.
        "priority_map": _parse_priority_map(args.priority_map),
    }


def _parse_priority_map(raw: Optional[str]) -> Dict[str, str]:
    """Parse ``client-0=interactive,client-1=background`` into a dict."""
    if not raw:
        return {}
    out: Dict[str, str] = {}
    for pair in raw.split(","):
        pair = pair.strip()
        if not pair:
            continue
        client, sep, priority = pair.partition("=")
        if not sep:
            raise ValueError(
                f"--priority-map entry {pair!r} is not CLIENT=PRIORITY"
            )
        out[client.strip()] = normalize_priority(priority.strip())
    return out


def _apply_priority_map(
    engine: TuningEngine, priority_map: Dict[str, str]
) -> None:
    for client, priority in sorted(priority_map.items()):
        engine.session(client, priority=priority)


def _lag_report(metrics: Dict[str, object]) -> Dict[str, object]:
    """The report's lagged-DBA accounting block (from engine metrics)."""
    return {
        "total_work_recommended": metrics["total_work"],
        "total_work_realized": metrics["realized_total_work"],
        "adoption": metrics["adoption"],
    }


def _build_trace(params: Dict[str, object]) -> Tuple[object, MultiClientTrace]:
    """Rebuild ``(stats, trace)`` deterministically from trace parameters."""
    catalog, stats = build_catalog(scale=float(params["scale"]))
    workload = generate_workload(
        catalog,
        stats,
        scaled_phases(int(params["per_phase"])),
        seed=int(params["seed"]),
    )
    statements = list(workload.statements)
    limit = params.get("limit")
    if limit is not None:
        statements = statements[: int(limit)]
    clients = [f"client-{i}" for i in range(int(params["clients"]))]
    trace = MultiClientTrace.split(
        statements, clients, mode=str(params["split"])
    )
    return stats, trace


def _build_engine(
    stats, batch_size: int, engine_options: Dict[str, object]
) -> TuningEngine:
    return TuningEngine(
        WhatIfOptimizer(stats),
        StatsTransitionCosts(stats),
        batch_size=batch_size,
        **engine_options,
    )


def _emit(report: Dict[str, object], metrics_out: Optional[str]) -> None:
    if metrics_out:
        atomic_write_json(metrics_out, report)
        print(f"metrics written to {metrics_out}")
    else:
        print(json.dumps(report, indent=2, sort_keys=True))


def _attach_obs(report: Dict[str, object], trace_out: Optional[str]) -> None:
    """Embed the registry snapshot; optionally write the Chrome trace."""
    report["obs"] = obs.default_registry().snapshot()
    if trace_out:
        document = obs.default_tracer().export_chrome()
        atomic_write_json(trace_out, document, indent=None)
        print(f"trace written to {trace_out}")


def _step_recommendations(
    engine: TuningEngine, trace: MultiClientTrace
) -> List[Tuple[str, ...]]:
    """Pump one statement at a time, recording each recommendation."""
    recs: List[Tuple[str, ...]] = []
    for client, statement in trace:
        engine.submit(client, statement)
        engine.pump(1)
        recs.append(tuple(ix.name for ix in sorted(engine.tuner.recommend())))
    return recs


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        params = _trace_params(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    stats, trace = _build_trace(params)
    engine_options = {"idx_cnt": args.idx_cnt, "state_cnt": args.state_cnt}
    # workers is a runtime execution knob (bit-identical at any value), so
    # it is passed to *this* engine but kept out of engine_options — the
    # checkpointed options must not pin a pool size on the restoring host.
    engine = _build_engine(
        stats, args.batch_size, {**engine_options, "workers": args.workers}
    )
    _apply_priority_map(engine, params["priority_map"])

    checkpoint_at = args.checkpoint_at
    if checkpoint_at is not None and not args.checkpoint:
        print("--checkpoint-at requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.checkpoint and checkpoint_at is None:
        print("--checkpoint requires --checkpoint-at K", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and not args.durable_dir:
        print("--checkpoint-every requires --durable-dir DIR", file=sys.stderr)
        return 2
    if args.adopt_every is not None and (
        checkpoint_at is not None or args.checkpoint_every is not None
    ):
        print(
            "--adopt-every cannot be combined with --checkpoint-at or "
            "--checkpoint-every (each imposes its own chunking)",
            file=sys.stderr,
        )
        return 2

    durability = None
    durable_extra = {"trace": params, "engine_options": engine_options}
    if args.durable_dir:
        durability = Durability(
            args.durable_dir,
            fsync_interval_ms=args.wal_fsync_ms,
            full_every=args.full_every,
        )
        durability.attach(engine)
        # An initial full snapshot pins the trace parameters in the
        # directory: `recover` can rebuild the workload even if the
        # process dies before the first periodic checkpoint.
        durability.checkpoint(full=True, extra=durable_extra)

    started = time.perf_counter()
    if checkpoint_at is not None:
        checkpoint_at = max(0, min(checkpoint_at, len(trace)))
        engine.submit_many(trace.prefix(checkpoint_at))
        engine.pump()
        document = engine.checkpoint(extra={
            "trace": params,
            "position": checkpoint_at,
            "engine_options": engine_options,
        })
        save_checkpoint(args.checkpoint, document)
        engine.submit_many(trace.suffix(checkpoint_at))
        engine.pump()
    elif durability is not None and args.checkpoint_every:
        every = max(1, args.checkpoint_every)
        for start in range(0, len(trace), every):
            engine.submit_many(trace[start : start + every])
            engine.pump()
            durability.checkpoint(extra=durable_extra)
    elif args.adopt_every is not None:
        # Figure 11's lagged DBA, live: adopt the recommendation every T
        # statements (T=1 grants full autonomy and casts no lease votes,
        # mirroring run_online). The report's "lag" block then shows the
        # realized-vs-recommended gap this lag cost.
        every = max(1, args.adopt_every)
        for start in range(0, len(trace), every):
            engine.submit_many(trace[start : start + every])
            engine.pump()
            engine.adopt("dba", lease=every > 1)
    else:
        engine.submit_many(trace)
        engine.pump()
    elapsed = time.perf_counter() - started

    metrics = engine.metrics()
    report = {
        "command": "replay",
        "trace": params,
        "statements": len(trace),
        "workers": engine.workers,
        "elapsed_seconds": elapsed,
        "statements_per_sec": len(trace) / elapsed if elapsed else 0.0,
        "checkpoint": str(args.checkpoint) if checkpoint_at is not None else None,
        "checkpoint_at": checkpoint_at,
        "adopt_every": args.adopt_every,
        "lag": _lag_report(metrics),
        "metrics": metrics,
    }
    if durability is not None:
        wal = durability.wal
        report["durability"] = {
            "directory": durability.directory,
            "wal_records": wal.records_appended,
            "wal_bytes": wal.bytes_appended,
            "wal_fsync_interval_ms": wal.fsync_interval_ms,
        }
        durability.close()
    _attach_obs(report, args.trace_out)
    _emit(report, args.metrics_out)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    try:
        document = load_checkpoint(args.checkpoint)
    except SnapshotError as exc:
        print(f"cannot load checkpoint: {exc}", file=sys.stderr)
        return 2
    extra = document.get("extra") or {}
    if "trace" not in extra:
        print(
            "checkpoint lacks trace parameters (was it written by "
            "`repro.service replay`?)",
            file=sys.stderr,
        )
        return 2
    params = dict(extra["trace"])
    position = int(extra["position"])
    engine_options = dict(extra.get("engine_options") or {})
    stats, trace = _build_trace(params)

    try:
        restored = TuningEngine.restore(
            document, WhatIfOptimizer(stats), StatsTransitionCosts(stats)
        )
    except SnapshotError as exc:
        print(f"cannot restore checkpoint: {exc}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    restored_recs = _step_recommendations(restored, trace.suffix(position))
    elapsed = time.perf_counter() - started

    metrics = restored.metrics()
    report: Dict[str, object] = {
        "command": "resume",
        "trace": params,
        "resumed_at": position,
        "statements_replayed": len(trace) - position,
        "elapsed_seconds": elapsed,
        "lag": _lag_report(metrics),
        "metrics": metrics,
    }

    exit_code = 0
    if args.verify:
        reference = _build_engine(
            stats, int(document["batch_size"]), engine_options
        )
        _apply_priority_map(reference, dict(params.get("priority_map") or {}))
        reference.submit_many(trace.prefix(position))
        reference.pump()
        reference_recs = _step_recommendations(
            reference, trace.suffix(position)
        )
        mismatches = [
            {"step": position + i, "restored": list(a), "reference": list(b)}
            for i, (a, b) in enumerate(zip(restored_recs, reference_recs))
            if a != b
        ]
        work_delta = abs(restored.total_work - reference.total_work)
        verified = not mismatches and work_delta <= _VERIFY_TOL * max(
            1.0, abs(reference.total_work)
        )
        report["verify"] = {
            "verified": verified,
            "recommendation_mismatches": mismatches,
            "total_work_restored": restored.total_work,
            "total_work_reference": reference.total_work,
            "total_work_delta": work_delta,
        }
        if not verified:
            exit_code = 1
    _attach_obs(report, args.trace_out)
    _emit(report, args.metrics_out)
    if exit_code:
        print("VERIFY FAILED: restored run diverged", file=sys.stderr)
    return exit_code


def _cmd_recover(args: argparse.Namespace) -> int:
    document = latest_snapshot_document(args.dir)
    if document is None:
        print(
            f"no loadable snapshot in {args.dir} (was the directory written "
            "by `repro.service replay --durable-dir`?)",
            file=sys.stderr,
        )
        return 2
    extra = document.get("extra") or {}
    if "trace" not in extra:
        print("durable snapshot lacks trace parameters", file=sys.stderr)
        return 2
    params = dict(extra["trace"])
    engine_options = dict(extra.get("engine_options") or {})
    stats, trace = _build_trace(params)

    started = time.perf_counter()
    try:
        engine, recovery = TuningEngine.recover(
            args.dir, WhatIfOptimizer(stats), StatsTransitionCosts(stats)
        )
    except (SnapshotError, WalError) as exc:
        print(f"recover failed: {exc}", file=sys.stderr)
        return 2
    start_position = engine.statements_processed
    # Step the recovered backlog (snapshot pending + replayed WAL tail)
    # one statement at a time, recording each recommendation — the same
    # single-step discipline the verify reference uses.
    recovered_recs: List[Tuple[str, ...]] = []
    while engine.queue_depth > 0:
        engine.pump(1)
        recovered_recs.append(
            tuple(ix.name for ix in sorted(engine.tuner.recommend()))
        )
    end_position = engine.statements_processed
    elapsed = time.perf_counter() - started

    metrics = engine.metrics()
    report: Dict[str, object] = {
        "command": "recover",
        "directory": str(args.dir),
        "trace": params,
        "recovery": recovery,
        "recovered_at": start_position,
        "statements_replayed": end_position - start_position,
        "elapsed_seconds": elapsed,
        "lag": _lag_report(metrics),
        "metrics": metrics,
    }

    exit_code = 0
    if args.verify:
        if end_position > len(trace):
            print(
                "recovered engine is ahead of the generated trace — "
                "durable directory does not match the trace parameters",
                file=sys.stderr,
            )
            return 2
        reference = _build_engine(stats, engine.batch_size, engine_options)
        _apply_priority_map(reference, dict(params.get("priority_map") or {}))
        reference.submit_many(trace.prefix(start_position))
        reference.pump()
        reference_recs = _step_recommendations(
            reference, trace[start_position:end_position]
        )
        mismatches = [
            {"step": start_position + i, "recovered": list(a), "reference": list(b)}
            for i, (a, b) in enumerate(zip(recovered_recs, reference_recs))
            if a != b
        ]
        work_delta = abs(engine.total_work - reference.total_work)
        verified = (
            len(recovered_recs) == len(reference_recs)
            and not mismatches
            and work_delta
            <= _VERIFY_TOL * max(1.0, abs(reference.total_work))
        )
        report["verify"] = {
            "verified": verified,
            "recommendation_mismatches": mismatches,
            "total_work_recovered": engine.total_work,
            "total_work_reference": reference.total_work,
            "total_work_delta": work_delta,
        }
        if not verified:
            exit_code = 1
    _attach_obs(report, args.trace_out)
    _emit(report, args.metrics_out)
    if exit_code:
        print("VERIFY FAILED: recovered run diverged", file=sys.stderr)
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    replay = sub.add_parser(
        "replay", help="generate a multi-client trace and stream it through "
        "a tuning engine",
    )
    replay.add_argument("--scale", type=float, default=0.02,
                        help="catalog scale factor (default 0.02)")
    replay.add_argument("--per-phase", type=int, default=4,
                        help="statements per workload phase (default 4)")
    replay.add_argument("--seed", type=int, default=7, help="workload seed")
    replay.add_argument("--clients", type=int, default=2,
                        help="number of simulated clients (default 2)")
    replay.add_argument("--split", choices=("round_robin", "random"),
                        default="round_robin",
                        help="statement-to-client assignment policy")
    replay.add_argument("--limit", type=int, default=None,
                        help="truncate the trace to this many statements")
    replay.add_argument("--batch-size", type=int, default=8,
                        help="ingest micro-batch size (default 8)")
    replay.add_argument("--workers", type=int, default=1,
                        help="per-part fan-out pool size (default 1, the "
                        "serial determinism oracle; any value is "
                        "bit-identical). resume --verify always replays "
                        "serially.")
    replay.add_argument("--idx-cnt", type=int, default=16,
                        help="WFIT monitored-index bound (default 16)")
    replay.add_argument("--state-cnt", type=int, default=128,
                        help="WFIT tracked-state bound (default 128)")
    replay.add_argument("--priority-map", type=str, default=None,
                        help="comma-separated CLIENT=PRIORITY session "
                        "classes (interactive/normal/background), e.g. "
                        "client-0=interactive,client-1=background")
    replay.add_argument("--adopt-every", type=int, default=None,
                        help="simulate a lagged DBA: adopt the current "
                        "recommendation every T statements (1 = full "
                        "autonomy); the report's \"lag\" block prices the "
                        "lag (realized vs recommended totWork)")
    replay.add_argument("--checkpoint-at", type=int, default=None,
                        help="serialize the engine after this many statements")
    replay.add_argument("--checkpoint", type=str, default=None,
                        help="checkpoint output path (JSON)")
    replay.add_argument("--durable-dir", type=str, default=None,
                        help="run durably: write-ahead log every submission "
                        "into DIR and publish crash-atomic snapshots there "
                        "(recover with `recover --dir DIR`)")
    replay.add_argument("--checkpoint-every", type=int, default=None,
                        help="with --durable-dir: publish a (delta-chained) "
                        "snapshot every K statements")
    replay.add_argument("--full-every", type=int, default=4,
                        help="with --durable-dir: every Nth snapshot is full "
                        "rather than a delta (default 4)")
    replay.add_argument("--wal-fsync-ms", type=float, default=None,
                        help="WAL group-commit interval in ms (default: the "
                        "REPRO_WAL_FSYNC_MS env var, else 0 = fsync every "
                        "record)")
    replay.add_argument("--metrics-out", type=str, default=None,
                        help="write the JSON report here instead of stdout")
    replay.add_argument("--trace-out", type=str, default=None,
                        help="write recent pipeline spans as Chrome "
                        "trace_event JSON (chrome://tracing / Perfetto)")
    replay.set_defaults(func=_cmd_replay)

    resume = sub.add_parser(
        "resume", help="restore an engine from a checkpoint and replay the "
        "rest of its trace",
    )
    resume.add_argument("--checkpoint", type=str, required=True,
                        help="checkpoint path written by `replay`")
    resume.add_argument("--verify", action="store_true",
                        help="also run the uninterrupted engine and assert "
                        "step-identical recommendations and totWork")
    resume.add_argument("--metrics-out", type=str, default=None,
                        help="write the JSON report here instead of stdout")
    resume.add_argument("--trace-out", type=str, default=None,
                        help="write recent pipeline spans as Chrome "
                        "trace_event JSON (chrome://tracing / Perfetto)")
    resume.set_defaults(func=_cmd_resume)

    recover = sub.add_parser(
        "recover", help="rebuild an engine from a durable directory "
        "(snapshot chain + WAL tail) and finish its backlog",
    )
    recover.add_argument("--dir", type=str, required=True,
                         help="durable directory written by "
                         "`replay --durable-dir`")
    recover.add_argument("--verify", action="store_true",
                         help="also run the uninterrupted engine and assert "
                         "step-identical recommendations and totWork")
    recover.add_argument("--metrics-out", type=str, default=None,
                         help="write the JSON report here instead of stdout")
    recover.add_argument("--trace-out", type=str, default=None,
                         help="write recent pipeline spans as Chrome "
                         "trace_event JSON (chrome://tracing / Perfetto)")
    recover.set_defaults(func=_cmd_recover)

    args = parser.parse_args(argv)
    return args.func(args)
