# reprolint: zone=deterministic
"""Priority-classed ingest scheduling for the tuning engine.

The engine's original ingest path treated every session uniformly: one
FIFO deque, unbounded, drained in submission order. That is the wrong
shape for the paper's own premise — a DBA *in the loop* next to
production traffic: an interactive DBA console competing with a bulk
backfill should not wait behind ten thousand queued background
statements, and an unbounded queue is a memory-growth liability under
any misbehaving client. This module factors scheduling out of
:mod:`repro.service.engine` into three pieces:

* **Priority classes** — every submission belongs to one of
  :data:`PRIORITIES` (``interactive`` < ``normal`` < ``background`` in
  drain order). Sessions carry a default class; individual submissions
  can override it.
* **Deterministic batch formation** — :meth:`IngestScheduler.take` pops
  entries in ``(priority rank, arrival seq)`` order, a *pure function*
  of queue content: no clocks, no randomness, no aging. A
  uniform-priority queue therefore drains in exact submission order —
  bit-identical to the pre-scheduler FIFO engine, which is the
  determinism oracle the property tests pin.
* **Admission control** — per-class depth bounds
  (:data:`DEFAULT_QUEUE_LIMIT` unless overridden) with typed
  backpressure: :meth:`IngestScheduler.admit` raises :class:`QueueFull`
  *before* anything durable happens, so a rejected submission leaves no
  WAL record and no queue growth — the client retries or sheds load.
* **Background task lane** — deferred maintenance callables
  (:meth:`IngestScheduler.defer`) that the engine runs only when the
  statement queues are idle, so repartitioning or candidate regeneration
  never competes with statement analysis.

The scheduler owns no threads and reads no clocks; all mutable state is
guarded by one internal lock, and the engine composes it under its own
ingest/pump locking (engine lock order: ``_pump_lock`` → ``_ingest_lock``
→ ``IngestScheduler._lock``; the scheduler never calls back into the
engine, so the lock graph stays acyclic).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "BACKGROUND_CLASSES",
    "DEFAULT_PRIORITY",
    "DEFAULT_QUEUE_LIMIT",
    "FOREGROUND_CLASSES",
    "PRIORITIES",
    "IngestScheduler",
    "QueueEntry",
    "QueueFull",
    "normalize_priority",
]

#: Priority classes in drain order: interactive statements always pop
#: before normal ones, normal before background. Within a class, strict
#: arrival order.
PRIORITIES: Tuple[str, ...] = ("interactive", "normal", "background")

#: The class submissions get when neither the session nor the call names
#: one — and the class every pre-scheduler WAL/snapshot record maps to.
DEFAULT_PRIORITY = "normal"

#: Classes drained by foreground micro-batches (and by
#: ``TuningEngine.stop(drain=True)``): a queued background flood must
#: not stall shutdown.
FOREGROUND_CLASSES: Tuple[str, ...] = ("interactive", "normal")

#: Classes drained only when no foreground work is queued.
BACKGROUND_CLASSES: Tuple[str, ...] = ("background",)

#: Default per-class queue bound. Deliberately generous — backpressure
#: exists to stop unbounded growth, not to shape healthy traffic; tune
#: it down per class via the engine's ``queue_limits`` knob.
DEFAULT_QUEUE_LIMIT = 100_000

_PRIORITY_RANK: Dict[str, int] = {
    priority: rank for rank, priority in enumerate(PRIORITIES)
}


def normalize_priority(priority: Optional[str]) -> str:
    """Validate ``priority`` (None means :data:`DEFAULT_PRIORITY`)."""
    if priority is None:
        return DEFAULT_PRIORITY
    if priority not in _PRIORITY_RANK:
        raise ValueError(
            f"unknown priority {priority!r} (expected one of {PRIORITIES})"
        )
    return priority


class QueueFull(RuntimeError):
    """Typed backpressure: a class's queue bound would be exceeded.

    Raised *before* the submission is logged or enqueued — nothing
    durable or in-memory changed, so the caller can retry later, shed
    the work, or resubmit under a different class.
    """

    def __init__(self, priority: str, limit: int, depth: int, requested: int) -> None:
        super().__init__(
            f"{priority} queue is full: depth {depth} + {requested} "
            f"submission(s) would exceed the class limit of {limit}"
        )
        self.priority = priority
        self.limit = limit
        self.depth = depth
        self.requested = requested


@dataclass(frozen=True)
class QueueEntry:
    """One admitted submission.

    ``seq`` is the scheduler-wide arrival number (monotone across all
    classes); the drain order ``(rank(priority), seq)`` is total, so
    batch formation is deterministic given queue content.
    """

    seq: int
    priority: str
    client_id: str
    statement: object


class IngestScheduler:
    """Bounded, priority-classed submission queues + a deferred-task lane.

    Thread-safe; every method is O(class count) outside the entries it
    moves. Not a thread pool: the engine's single writer calls
    :meth:`take`, concurrent submitters call :meth:`admit`/:meth:`push`.
    """

    def __init__(
        self, limits: Optional[Mapping[str, Optional[int]]] = None
    ) -> None:
        self._lock = threading.Lock()
        self._queues: Dict[str, Deque[QueueEntry]] = {  # guarded-by: _lock
            priority: deque() for priority in PRIORITIES
        }
        resolved: Dict[str, Optional[int]] = {
            priority: DEFAULT_QUEUE_LIMIT for priority in PRIORITIES
        }
        for priority, limit in (limits or {}).items():
            key = normalize_priority(priority)
            if limit is not None and limit < 1:
                raise ValueError(
                    f"queue limit for {key!r} must be >= 1 or None, got {limit}"
                )
            resolved[key] = limit
        self._limits = resolved  # immutable after construction
        self._next_seq = 0  # guarded-by: _lock
        self._rejections: Dict[str, int] = {  # guarded-by: _lock
            priority: 0 for priority in PRIORITIES
        }
        # Sticky: flips on the first non-default push and never resets.
        # The engine keys WAL drain-record logging off it — an engine
        # that has only ever seen the default class drains in pure FIFO
        # order, so its log needs no batch-boundary records and stays
        # byte-identical to the pre-scheduler format.
        self._priorities_seen = False  # guarded-by: _lock
        self._tasks: Deque[Tuple[int, str, Callable[[], object]]] = deque()  # guarded-by: _lock
        self._next_task_seq = 0  # guarded-by: _lock
        self._tasks_deferred = 0  # guarded-by: _lock

    # -- admission -----------------------------------------------------------

    def limit(self, priority: str) -> Optional[int]:
        """The class's depth bound (None = unbounded)."""
        return self._limits[normalize_priority(priority)]

    def admit(self, priority: str, count: int = 1) -> None:
        """Check that ``count`` submissions fit the class bound.

        Raises :class:`QueueFull` (and counts the rejection) when they do
        not. Callers that must pair the check atomically with an enqueue
        serialize externally (the engine holds its ingest lock across
        admit → WAL append → push); :meth:`push` re-enforces the bound
        regardless, so an unserialized caller can never oversubscribe.
        """
        priority = normalize_priority(priority)
        with self._lock:
            self._admit_locked(priority, count)

    def _admit_locked(self, priority: str, count: int) -> None:  # holds: _lock
        limit = self._limits[priority]
        if limit is None:
            return
        depth = len(self._queues[priority])
        if depth + count > limit:
            self._rejections[priority] += count
            raise QueueFull(priority, limit, depth, count)

    # -- enqueue / dequeue ---------------------------------------------------

    def push(self, priority: str, client_id: str, statement: object) -> QueueEntry:
        """Admit and enqueue one submission; returns its entry."""
        priority = normalize_priority(priority)
        with self._lock:
            self._admit_locked(priority, 1)
            return self._push_locked(priority, client_id, statement)

    def push_many(
        self, entries: Sequence[Tuple[str, str, object]]
    ) -> List[QueueEntry]:
        """Admit and enqueue ``(priority, client_id, statement)`` triples.

        Admission is all-or-nothing: when any class's bound would be
        exceeded, :class:`QueueFull` is raised and *no* entry of the
        batch is enqueued — a half-admitted batch would reorder the
        client's stream relative to what its WAL record promises.
        """
        counts: Dict[str, int] = {}
        normalized = [
            (normalize_priority(priority), client_id, statement)
            for priority, client_id, statement in entries
        ]
        for priority, _, _ in normalized:
            counts[priority] = counts.get(priority, 0) + 1
        with self._lock:
            for priority in sorted(counts):
                self._admit_locked(priority, counts[priority])
            return [
                self._push_locked(priority, client_id, statement)
                for priority, client_id, statement in normalized
            ]

    def _push_locked(  # holds: _lock
        self, priority: str, client_id: str, statement: object
    ) -> QueueEntry:
        entry = QueueEntry(self._next_seq, priority, client_id, statement)
        self._next_seq += 1
        self._queues[priority].append(entry)
        if priority != DEFAULT_PRIORITY:
            self._priorities_seen = True
        return entry

    def take(
        self, limit: int, classes: Optional[Sequence[str]] = None
    ) -> List[QueueEntry]:
        """Pop up to ``limit`` entries in ``(priority rank, seq)`` order.

        ``classes`` restricts which queues are eligible (None = all).
        Deterministic: the result is a pure function of queue content —
        every eligible interactive entry pops before any normal one,
        and so on, FIFO within a class.
        """
        if limit < 1:
            return []
        eligible = self._normalize_classes(classes)
        out: List[QueueEntry] = []
        with self._lock:
            for priority in eligible:
                queue = self._queues[priority]
                while queue and len(out) < limit:
                    out.append(queue.popleft())
                if len(out) >= limit:
                    break
        return out

    def take_fifo(self, limit: int) -> List[QueueEntry]:
        """Pop up to ``limit`` entries in pure arrival (``seq``) order.

        Recovery's catch-up mode: WAL records written *before* the first
        non-default-priority submission carry no batch boundaries —
        legitimately, because a queue that has only ever held the
        default class drains FIFO. Replaying that prefix must therefore
        pop by arrival order even if higher-priority entries (submitted
        later in the log, already re-enqueued) are now present.
        """
        if limit < 1:
            return []
        out: List[QueueEntry] = []
        with self._lock:
            queues = [q for q in self._queues.values() if q]
            while queues and len(out) < limit:
                head = min(queues, key=lambda q: q[0].seq)
                out.append(head.popleft())
                queues = [q for q in queues if q]
        return out

    def _normalize_classes(
        self, classes: Optional[Sequence[str]]
    ) -> Tuple[str, ...]:
        if classes is None:
            return PRIORITIES
        seen = tuple(normalize_priority(priority) for priority in classes)
        # Drain order is by rank regardless of the order callers name
        # the classes in.
        return tuple(sorted(set(seen), key=_PRIORITY_RANK.__getitem__))

    # -- introspection -------------------------------------------------------

    def depth(self, classes: Optional[Sequence[str]] = None) -> int:
        eligible = self._normalize_classes(classes)
        with self._lock:
            return sum(len(self._queues[priority]) for priority in eligible)

    def depths(self) -> Dict[str, int]:
        """Current per-class queue depths (all classes, fixed key order)."""
        with self._lock:
            return {
                priority: len(self._queues[priority])
                for priority in PRIORITIES
            }

    def rejections(self) -> Dict[str, int]:
        """Cumulative per-class admission rejections."""
        with self._lock:
            return dict(self._rejections)

    @property
    def priorities_seen(self) -> bool:
        """Whether any non-default-priority entry was ever pushed."""
        with self._lock:
            return self._priorities_seen

    def entries(self) -> List[QueueEntry]:
        """Every queued entry in arrival (``seq``) order, not popped.

        Checkpoints serialize this: arrival order is what re-submission
        on restore must preserve — per-class relative order survives,
        so the restored scheduler forms the same batches.
        """
        with self._lock:
            merged = [
                entry
                for priority in PRIORITIES
                for entry in self._queues[priority]
            ]
        merged.sort(key=lambda entry: entry.seq)
        return merged

    # -- background task lane ------------------------------------------------

    def defer(self, name: str, fn: Callable[[], object]) -> int:
        """Queue a maintenance callable for idle-time execution.

        Returns the task's sequence number. The engine runs deferred
        tasks (FIFO) only when every statement queue is empty — see
        ``TuningEngine.run_background_tasks``.
        """
        with self._lock:
            seq = self._next_task_seq
            self._next_task_seq += 1
            self._tasks.append((seq, str(name), fn))
            self._tasks_deferred += 1
            return seq

    def take_task(self) -> Optional[Tuple[int, str, Callable[[], object]]]:
        """Pop the oldest deferred task, or None when the lane is empty."""
        with self._lock:
            if not self._tasks:
                return None
            return self._tasks.popleft()

    def task_depth(self) -> int:
        with self._lock:
            return len(self._tasks)

    @property
    def tasks_deferred(self) -> int:
        """Cumulative count of tasks ever deferred."""
        with self._lock:
            return self._tasks_deferred
