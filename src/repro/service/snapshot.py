# reprolint: zone=deterministic
"""Checkpoint/restore for the tuning engine: versioned JSON documents.

The design goal (motivated by the consistent-snapshot literature for
main-memory systems) is that a checkpoint is taken *between* micro-batches
— never inside one — and captures everything needed to continue
step-identically:

* the WFIT core (partition, per-part work-function values, candidate
  statistics, universe U, partitioner RNG state) via
  :meth:`repro.core.wfit.WFIT.export_state`;
* the what-if optimizer's universe bit-assignment order
  (:meth:`repro.core.bitset.IndexUniverse.export_order`), so restored
  masks and cache layouts reproduce the original run exactly;
* the engine's materialized set, totWork accounting, and per-session
  audit logs;
* the *pending queue* — statements submitted but not yet pumped at the
  snapshot point (version 2). They are serialized as SQL and re-submitted
  on restore, so a crash between submit and pump no longer loses work;
* the WAL high-water mark and delta chaining (version 3): a document
  records the highest WAL sequence number it covers (``wal_seq``), and a
  **delta** document re-serializes only the parts whose work-function
  state changed since a **base** full snapshot, replacing unchanged parts
  with ``{"indices": ..., "same_as_base": true}`` and naming the base by
  ``base_id``. :func:`resolve_chain` overlays a delta back onto its base;
  :func:`restore_engine` only accepts resolved (full-equivalent)
  documents. Change detection uses the per-part ``w_version`` mutation
  counter (see :class:`repro.core.wfa.WFA`) plus the tuner's
  ``repartition_count`` as an epoch guard — a repartition rebuilds every
  instance, so counters from different epochs are never compared.

Costs themselves are *not* serialized: they are deterministic functions of
``(statement, configuration)`` under the analytical cost model, so a fresh
optimizer over equivalent statistics re-derives them on demand — restore
needs statistics, not gigabytes of memoized plans.

Documents are plain JSON (floats round-trip exactly through Python's
``json``) with a top-level ``version``; :func:`restore_engine` rejects
unknown versions up front with a typed :class:`SnapshotError` (still a
``ValueError``, so pre-existing callers keep working).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

from ..core.wfit import WFIT
from ..db.index import Index
from ..ioutil import REAL_IO, FileIO, atomic_write_json
from ..optimizer.whatif import WhatIfOptimizer

__all__ = [
    "SNAPSHOT_VERSION",
    "BrokenChain",
    "CorruptSnapshot",
    "SnapshotError",
    "UnsupportedVersion",
    "checkpoint_engine",
    "load_checkpoint",
    "resolve_chain",
    "restore_engine",
    "save_checkpoint",
]

#: Format version of engine checkpoint documents. Version 2 added the
#: ``"pending"`` list (submitted-but-unpumped statements); version 3 added
#: durability metadata (``kind``/``snapshot_id``/``base_id``/``wal_seq``)
#: and delta documents. Older documents still restore.
SNAPSHOT_VERSION = 3

#: Versions :func:`restore_engine` accepts.
_SUPPORTED_VERSIONS = (1, 2, 3)


class SnapshotError(ValueError):
    """Base class for checkpoint load/restore failures.

    Subclasses ``ValueError`` so callers predating the hierarchy (which
    caught ``ValueError`` around :func:`restore_engine`) keep working.
    """


class UnsupportedVersion(SnapshotError):
    """The document's ``version`` is not one this build can restore."""


class CorruptSnapshot(SnapshotError):
    """The document is unreadable (bad JSON / not an object)."""


class BrokenChain(SnapshotError):
    """A delta document cannot be resolved against its base snapshot."""


def checkpoint_engine(
    engine,
    extra: Optional[Dict[str, object]] = None,
    *,
    snapshot_id: Optional[int] = None,
    base: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Serialize ``engine`` between micro-batches.

    Prefer ``TuningEngine.checkpoint()``, which manages the writer lock
    and (by default) drains first. Statements still queued at the
    snapshot point — submitted concurrently with a draining checkpoint,
    or deliberately left queued by ``checkpoint(drain=False)`` — are
    serialized under ``"pending"`` in submission order and re-submitted
    by :func:`restore_engine`, so the restored engine analyzes exactly
    the statements the original would have. Each session's serialized
    ``submitted`` counter equals its ``processed`` count; replaying the
    pending list restores the original submission counts.

    With ``base`` (a version-3 *full* document), the result is converted
    to a delta when at least one part's work-function state is unchanged
    since the base; otherwise (including whenever the partition changed)
    the full document is returned as-is.
    """
    from ..query.parser import to_sql

    with engine._pump_lock:
        # Client registration and the queue mutate under the ingest lock
        # (a concurrent first-ever submit inserts into the table);
        # snapshot both before iterating. Per-client processed counts and
        # events only mutate under the pump lock we already hold. The WAL
        # checkpoint mark is captured in the same region as the queue: a
        # record is appended and its statement enqueued under one ingest-
        # lock acquisition, so ``wal_seq`` covers exactly the submissions
        # the ``pending`` list (plus processed history) accounts for —
        # and the mark's byte offset lets the later ``reset()`` rotate
        # out only this prefix, so a submit landing between this capture
        # and the rotation (its record has seq > wal_seq and sits past
        # the marked offset) survives in the log instead of being
        # truncated away unreplayed.
        with engine._ingest_lock:
            clients = sorted(engine._clients.items())
            pending = []
            for entry in engine._scheduler.entries():
                item: Dict[str, object] = {
                    "client_id": entry.client_id,
                    "sql": to_sql(entry.statement),
                }
                if entry.priority != "normal":
                    item["priority"] = entry.priority
                pending.append(item)
            wal = engine._wal
            wal_seq = wal.checkpoint_mark() if wal is not None else 0
        document: Dict[str, object] = {
            "version": SNAPSHOT_VERSION,
            "kind": "full",
            "snapshot_id": snapshot_id,
            "base_id": None,
            "wal_seq": wal_seq,
            "batch_size": engine.batch_size,
            "background_batch_size": engine.background_batch_size,
            "background_pacing": engine.background_pacing,
            "tuner": engine.tuner.export_state(),
            "universe_order": [
                ix.to_payload()
                for ix in engine.optimizer.mask_universe.export_order()
            ],
            "materialized": [
                ix.to_payload() for ix in sorted(engine.materialized)
            ],
            "accounting": {
                "total_work": engine.total_work,
                "config": [
                    ix.to_payload() for ix in sorted(engine._accounting_config)
                ],
                "statements_processed": engine.statements_processed,
                "batches_processed": engine.batches_processed,
                # The realized (actual-adoption) totWork series. The
                # charged prefix and the one statement whose realized
                # cost is still open (deferred finalization — see
                # TuningEngine.realized_total_work) are serialized
                # separately so the restored engine finalizes it under
                # whatever the materialized set is *then*, exactly as the
                # uninterrupted run would have.
                "realized_work": engine._realized_work,
                "pending_realized_transition": engine._pending_transition,
                "pending_realized": (
                    None
                    if engine._pending_realized is None
                    else {
                        "client_id": engine._pending_realized[0],
                        "sql": to_sql(engine._pending_realized[1]),
                    }
                ),
                "adoption_changes": engine._adoptions,
                "last_adoption_position": engine._last_adoption_position,
            },
            "sessions": [
                {
                    "client_id": state.client_id,
                    "priority": state.priority,
                    "submitted": state.processed,
                    "processed": state.processed,
                    "events": [
                        [event.kind, event.detail, event.position]
                        for event in state.events
                    ],
                    "recommended_work": state.recommended_work,
                    "realized_work": state.realized_work,
                }
                for _, state in clients
            ],
            "pending": pending,
        }
    if base is not None:
        delta = _delta_against(document, base)
        if delta is not None:
            document = delta
    if extra is not None:
        document["extra"] = extra
    return document


def _state_unchanged(
    base_state: Dict[str, object], state: Dict[str, object]
) -> bool:
    """Whether a part's work-function state is identical to the base's.

    Equal ``w_version`` counters prove no kernel mutation happened since
    the base (same partition epoch, same instance — the caller checked
    ``repartition_count``), so the expensive comparison is skipped. A
    differing counter is only *suspicion*: a feedback whose votes did not
    move this part bumps the counter without changing any value, so the
    exact per-field comparison (w vector, recommendation mask, statement
    count) decides.
    """
    if base_state.get("w_version") == state.get("w_version"):
        return True
    keys = (set(base_state) | set(state)) - {"w_version"}
    return all(base_state.get(key) == state.get(key) for key in keys)


def _delta_against(
    document: Dict[str, object], base: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """``document`` as a delta chained to ``base``, or None when a delta
    is impossible (pre-v3 base, repartition since the base, no shared
    parts) — the caller then publishes the full document."""
    if base.get("version") != SNAPSHOT_VERSION or base.get("kind") != "full":
        return None
    if base.get("snapshot_id") is None:
        return None
    base_tuner = base["tuner"]
    tuner = document["tuner"]
    # A repartition rebuilds every WFA instance, resetting its w_version
    # counter: counters are only comparable within one partition epoch.
    if base_tuner.get("repartition_count") != tuner.get("repartition_count"):
        return None
    base_parts = base_tuner["parts"]
    parts = tuner["parts"]
    if len(base_parts) != len(parts):
        return None
    shared = 0
    delta_parts = []
    for base_part, part in zip(base_parts, parts):
        if base_part["indices"] == part["indices"] and _state_unchanged(
            base_part["state"], part["state"]
        ):
            delta_parts.append({"indices": part["indices"], "same_as_base": True})
            shared += 1
        else:
            delta_parts.append(part)
    if shared == 0:
        return None
    delta = dict(document)
    delta["kind"] = "delta"
    delta["base_id"] = base["snapshot_id"]
    delta_tuner = dict(tuner)
    delta_tuner["parts"] = delta_parts
    delta["tuner"] = delta_tuner
    return delta


def resolve_chain(
    document: Dict[str, object], base: Dict[str, object]
) -> Dict[str, object]:
    """Overlay a delta ``document`` onto its ``base`` full snapshot.

    Full documents pass through untouched. Raises :class:`BrokenChain`
    when the chain does not validate: wrong base id, a base that is not a
    full snapshot, or per-part index sets that diverge from what the
    delta recorded.
    """
    if document.get("kind") != "delta":
        return document
    if base.get("kind") != "full":
        raise BrokenChain(
            f"delta snapshot {document.get('snapshot_id')!r} chained to "
            f"snapshot {base.get('snapshot_id')!r}, which is not a full snapshot"
        )
    if base.get("snapshot_id") is None or document.get("base_id") != base.get("snapshot_id"):
        raise BrokenChain(
            f"delta snapshot {document.get('snapshot_id')!r} names base "
            f"{document.get('base_id')!r} but was resolved against "
            f"{base.get('snapshot_id')!r}"
        )
    base_parts = base["tuner"]["parts"]
    parts = document["tuner"]["parts"]
    if len(parts) != len(base_parts):
        raise BrokenChain(
            f"delta snapshot {document.get('snapshot_id')!r} has "
            f"{len(parts)} parts; its base has {len(base_parts)}"
        )
    resolved_parts = []
    for position, part in enumerate(parts):
        if part.get("same_as_base"):
            base_part = base_parts[position]
            if base_part["indices"] != part["indices"]:
                raise BrokenChain(
                    f"delta snapshot {document.get('snapshot_id')!r} part "
                    f"{position} indices diverge from its base"
                )
            resolved_parts.append(base_part)
        else:
            resolved_parts.append(part)
    resolved = dict(document)
    resolved_tuner = dict(document["tuner"])
    resolved_tuner["parts"] = resolved_parts
    resolved["tuner"] = resolved_tuner
    resolved["kind"] = "full"
    return resolved


def restore_engine(
    document: Dict[str, object],
    optimizer: WhatIfOptimizer,
    transitions,
):
    """Rebuild a ``TuningEngine`` from a :func:`checkpoint_engine` document.

    ``optimizer`` must be freshly built over statistics equivalent to the
    original's; its mask universe is seeded with the checkpointed bit
    order before any statement flows through it. Delta documents must be
    resolved first (:func:`resolve_chain`); passing one raises
    :class:`BrokenChain`.
    """
    from .engine import SessionEvent, TuningEngine

    version = document.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise UnsupportedVersion(
            f"unsupported engine checkpoint version {version!r} "
            f"(supported: {_SUPPORTED_VERSIONS})"
        )
    if document.get("kind") == "delta":
        raise BrokenChain(
            "delta checkpoint cannot restore on its own; overlay it onto "
            "its base snapshot with resolve_chain() first"
        )
    optimizer.mask_universe.extend_order(
        Index.from_payload(payload) for payload in document["universe_order"]
    )

    # Construct over an empty materialized set so the constructor's interim
    # tuner is trivial (zero parts) — it is replaced by the restored WFIT
    # on the next line, and the materialized set is reinstated from the
    # document below.
    engine = TuningEngine(
        optimizer,
        transitions,
        batch_size=int(document["batch_size"]),
        background_batch_size=int(document.get("background_batch_size", 1)),
        background_pacing=float(document.get("background_pacing", 0.008)),
    )
    engine._tuner = WFIT.restore_state(
        optimizer, transitions, document["tuner"]
    )
    engine._materialized = {
        Index.from_payload(p) for p in document["materialized"]
    }
    accounting = document["accounting"]
    engine._total_work = float(accounting["total_work"])
    engine._accounting_config = frozenset(
        Index.from_payload(p) for p in accounting["config"]
    )
    engine._statements_processed = int(accounting["statements_processed"])
    engine._batches_processed = int(accounting["batches_processed"])
    # Realized (actual-adoption) totWork. Documents written before the
    # series existed assumed immediate adoption throughout, under which
    # the realized and recommended series coincide — seed from the
    # recommended total.
    engine._realized_work = float(
        accounting.get("realized_work", accounting["total_work"])
    )
    engine._pending_transition = float(
        accounting.get("pending_realized_transition", 0.0)
    )
    pending_realized = accounting.get("pending_realized")
    if pending_realized is not None:
        from ..query.parser import parse_statement

        engine._pending_realized = (
            str(pending_realized["client_id"]),
            parse_statement(str(pending_realized["sql"])),
        )
    engine._adoptions = int(accounting.get("adoption_changes", 0))
    last_adoption = accounting.get("last_adoption_position")
    engine._last_adoption_position = (
        None if last_adoption is None else int(last_adoption)
    )
    for item in document["sessions"]:
        state = engine._client(str(item["client_id"]))
        if item.get("priority") is not None:
            state.priority = str(item["priority"])
        state.submitted = int(item["submitted"])
        state.processed = int(item["processed"])
        state.events = [
            SessionEvent(str(kind), str(detail), int(position))
            for kind, detail, position in item["events"]
        ]
        state.recommended_work = float(item.get("recommended_work", 0.0))
        state.realized_work = float(item.get("realized_work", 0.0))
    # Replay the pending queue (version ≥ 2; absent in version-1
    # documents) in submission order: the statements re-enter the queue
    # un-analyzed — priority classes included — exactly as they stood at
    # the snapshot point, and the next pump processes them. submit()
    # re-increments the per-session submitted counters past the
    # serialized processed counts. Priorities are passed explicitly (an
    # absent key means the entry was queued as "normal"), never left to
    # the session default, which the lines above may have restored to a
    # different class than the entry was admitted under.
    for item in document.get("pending", ()):
        engine.submit(
            str(item["client_id"]),
            str(item["sql"]),
            priority=str(item.get("priority", "normal")),
        )
    return engine


def save_checkpoint(
    path: Union[str, pathlib.Path],
    document: Dict[str, object],
    *,
    io: FileIO = REAL_IO,
) -> pathlib.Path:
    """Crash-atomically write a checkpoint document as JSON; returns the
    path (temp file + fsync + rename + parent-dir fsync — a reader sees
    either the previous document or the complete new one, never a tear)."""
    return atomic_write_json(path, document, io=io)


def load_checkpoint(
    path: Union[str, pathlib.Path], *, io: FileIO = REAL_IO
) -> Dict[str, object]:
    """Read a checkpoint document written by :func:`save_checkpoint`.

    Raises :class:`CorruptSnapshot` when the file is not a JSON object
    (torn legacy writes, bit rot); missing files propagate ``OSError``.
    """
    raw = io.read_bytes(path)
    try:
        document = json.loads(raw)
    except ValueError as exc:
        raise CorruptSnapshot(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise CorruptSnapshot(f"{path}: snapshot document must be a JSON object")
    return document
