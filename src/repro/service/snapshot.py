# reprolint: zone=deterministic
"""Checkpoint/restore for the tuning engine: versioned JSON documents.

The design goal (motivated by the consistent-snapshot literature for
main-memory systems) is that a checkpoint is taken *between* micro-batches
— never inside one — and captures everything needed to continue
step-identically:

* the WFIT core (partition, per-part work-function values, candidate
  statistics, universe U, partitioner RNG state) via
  :meth:`repro.core.wfit.WFIT.export_state`;
* the what-if optimizer's universe bit-assignment order
  (:meth:`repro.core.bitset.IndexUniverse.export_order`), so restored
  masks and cache layouts reproduce the original run exactly;
* the engine's materialized set, totWork accounting, and per-session
  audit logs;
* the *pending queue* — statements submitted but not yet pumped at the
  snapshot point (version 2). They are serialized as SQL and re-submitted
  on restore, so a crash between submit and pump no longer loses work
  (the ROADMAP's WAL gap, closed at the checkpoint layer).

Costs themselves are *not* serialized: they are deterministic functions of
``(statement, configuration)`` under the analytical cost model, so a fresh
optimizer over equivalent statistics re-derives them on demand — restore
needs statistics, not gigabytes of memoized plans.

Documents are plain JSON (floats round-trip exactly through Python's
``json``) with a top-level ``version``; :func:`restore_engine` rejects
unknown versions up front.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

from ..core.wfit import WFIT
from ..db.index import Index
from ..optimizer.whatif import WhatIfOptimizer

__all__ = [
    "SNAPSHOT_VERSION",
    "checkpoint_engine",
    "load_checkpoint",
    "restore_engine",
    "save_checkpoint",
]

#: Format version of engine checkpoint documents. Version 2 added the
#: ``"pending"`` list (submitted-but-unpumped statements); version-1
#: documents — which could not carry a queue — still restore.
SNAPSHOT_VERSION = 2

#: Versions :func:`restore_engine` accepts.
_SUPPORTED_VERSIONS = (1, 2)


def checkpoint_engine(engine, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Serialize ``engine`` between micro-batches.

    Prefer ``TuningEngine.checkpoint()``, which manages the writer lock
    and (by default) drains first. Statements still queued at the
    snapshot point — submitted concurrently with a draining checkpoint,
    or deliberately left queued by ``checkpoint(drain=False)`` — are
    serialized under ``"pending"`` in submission order and re-submitted
    by :func:`restore_engine`, so the restored engine analyzes exactly
    the statements the original would have. Each session's serialized
    ``submitted`` counter equals its ``processed`` count; replaying the
    pending list restores the original submission counts.
    """
    from ..query.parser import to_sql

    with engine._pump_lock:
        # Client registration and the queue mutate under the ingest lock
        # (a concurrent first-ever submit inserts into the table);
        # snapshot both before iterating. Per-client processed counts and
        # events only mutate under the pump lock we already hold.
        with engine._ingest_lock:
            clients = sorted(engine._clients.items())
            pending = [
                {"client_id": client_id, "sql": to_sql(statement)}
                for client_id, statement in engine._queue
            ]
        document: Dict[str, object] = {
            "version": SNAPSHOT_VERSION,
            "batch_size": engine.batch_size,
            "tuner": engine.tuner.export_state(),
            "universe_order": [
                ix.to_payload()
                for ix in engine.optimizer.mask_universe.export_order()
            ],
            "materialized": [
                ix.to_payload() for ix in sorted(engine.materialized)
            ],
            "accounting": {
                "total_work": engine.total_work,
                "config": [
                    ix.to_payload() for ix in sorted(engine._accounting_config)
                ],
                "statements_processed": engine.statements_processed,
                "batches_processed": engine.batches_processed,
            },
            "sessions": [
                {
                    "client_id": state.client_id,
                    "submitted": state.processed,
                    "processed": state.processed,
                    "events": [
                        [event.kind, event.detail, event.position]
                        for event in state.events
                    ],
                }
                for _, state in clients
            ],
            "pending": pending,
        }
    if extra is not None:
        document["extra"] = extra
    return document


def restore_engine(
    document: Dict[str, object],
    optimizer: WhatIfOptimizer,
    transitions,
):
    """Rebuild a ``TuningEngine`` from a :func:`checkpoint_engine` document.

    ``optimizer`` must be freshly built over statistics equivalent to the
    original's; its mask universe is seeded with the checkpointed bit
    order before any statement flows through it.
    """
    from .engine import SessionEvent, TuningEngine

    version = document.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported engine checkpoint version {version!r} "
            f"(supported: {_SUPPORTED_VERSIONS})"
        )
    optimizer.mask_universe.extend_order(
        Index.from_payload(payload) for payload in document["universe_order"]
    )

    # Construct over an empty materialized set so the constructor's interim
    # tuner is trivial (zero parts) — it is replaced by the restored WFIT
    # on the next line, and the materialized set is reinstated from the
    # document below.
    engine = TuningEngine(
        optimizer,
        transitions,
        batch_size=int(document["batch_size"]),
    )
    engine._tuner = WFIT.restore_state(
        optimizer, transitions, document["tuner"]
    )
    engine._materialized = {
        Index.from_payload(p) for p in document["materialized"]
    }
    accounting = document["accounting"]
    engine._total_work = float(accounting["total_work"])
    engine._accounting_config = frozenset(
        Index.from_payload(p) for p in accounting["config"]
    )
    engine._statements_processed = int(accounting["statements_processed"])
    engine._batches_processed = int(accounting["batches_processed"])
    for item in document["sessions"]:
        state = engine._client(str(item["client_id"]))
        state.submitted = int(item["submitted"])
        state.processed = int(item["processed"])
        state.events = [
            SessionEvent(str(kind), str(detail), int(position))
            for kind, detail, position in item["events"]
        ]
    # Replay the pending queue (version ≥ 2; absent in version-1
    # documents) in submission order: the statements re-enter the queue
    # un-analyzed, exactly as they stood at the snapshot point, and the
    # next pump processes them. submit() re-increments the per-session
    # submitted counters past the serialized processed counts.
    for item in document.get("pending", ()):
        engine.submit(str(item["client_id"]), str(item["sql"]))
    return engine


def save_checkpoint(
    path: Union[str, pathlib.Path], document: Dict[str, object]
) -> pathlib.Path:
    """Write a checkpoint document as JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_checkpoint(path: Union[str, pathlib.Path]) -> Dict[str, object]:
    """Read a checkpoint document written by :func:`save_checkpoint`."""
    return json.loads(pathlib.Path(path).read_text())
