# reprolint: zone=deterministic
"""Write-ahead logging + durable snapshot chains for the tuning engine.

The gap this closes (ROADMAP "Durable ingest"): checkpoints alone lose
every statement submitted between the last checkpoint and a crash, which
for an *online* tuner corrupts the very state the algorithm reasons
about. The classic fix is the classic database one:

* every ingest-path mutation (``submit`` / ``submit_many`` / ``vote`` /
  ``materialize``) appends a record to an append-only log **before** the
  in-memory mutation, under the same lock acquisition, so log order
  equals effect order. Submissions carry their priority class when it is
  not the default, and once any non-default class has been enqueued the
  single writer also logs ``drain`` records — batch boundaries naming
  the position, count, and eligible classes of each micro-batch — so
  replay re-forms priority-interleaved batches exactly (an all-default
  history needs none: it drains FIFO and the log format stays identical
  to the pre-scheduler one);
* records are length-prefixed and CRC32-checksummed — the header's
  length field carries its own CRC, so a torn final record (the expected
  artifact of crashing mid-append) is detected and tolerated, while
  mid-file corruption — including a damaged length field — is detected
  and **refused**;
* fsyncs are group-committed: with ``fsync_interval_ms > 0`` an append
  only pays for an fsync when the interval has elapsed, batching
  many records per flush (the durability point is the fsync — records
  appended after the last fsync may be lost on crash, which is the knob's
  explicit trade);
* each successful checkpoint — published crash-atomically by
  :func:`repro.ioutil.atomic_write_json` — captures an atomic *mark*
  (highest covered sequence number + the log length holding exactly the
  records up to it) in the same ingest-lock region that snapshots the
  pending queue, then **rotates** the log: a ``floor`` record naming the
  covered sequence plus every record appended after the mark is written
  to a temp file, fsynced, and renamed over the log. Records appended
  concurrently between the mark and the rotation — fsync-acknowledged
  mutations the snapshot does not cover — therefore survive. Monotone
  sequence numbers make replay idempotent: a crash *between* the
  checkpoint rename and the rotation leaves covered records in the log,
  and recovery skips every record with ``seq <= wal_seq``; the floor
  record lets recovery detect (and refuse) a log whose covered prefix
  was rotated away when the covering snapshot is itself unusable.

Recovery (:meth:`Durability.recover`) loads the newest snapshot whose
chain resolves (delta snapshots are overlaid onto their base — see
:mod:`repro.service.snapshot`), replays the WAL tail, and hands back an
engine that is *step-identical* to the uninterrupted run — the property
the crash/fault-injection suite (``tests/service/test_crash_recovery.py``)
asserts at every kill point.

All filesystem access goes through a :class:`repro.ioutil.FileIO`
backend so the fault harness can substitute an in-memory
crash-consistency model.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..ioutil import REAL_IO, FileIO, atomic_write_json

__all__ = [
    "CorruptRecord",
    "Durability",
    "WAL_FSYNC_ENV",
    "WalError",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "encode_record",
    "latest_snapshot_document",
    "read_wal",
    "scan_wal",
]

# Group-commit pacing and fsync-latency reporting read the monotonic clock.
# Neither feeds tuning state: recommendations and totWork are identical for
# any fsync schedule (the property tests drive the same engine with and
# without a WAL attached).
_monotonic = time.monotonic  # reprolint: disable=R1(group-commit pacing and fsync-latency reporting only; never feeds tuning decisions)

#: Environment knob: default group-commit interval in milliseconds.
#: ``0`` (the default) fsyncs every append — maximum durability; larger
#: values batch appends per flush and bound the post-fsync loss window.
WAL_FSYNC_ENV = "REPRO_WAL_FSYNC_MS"

#: On-disk record framing: little-endian payload length, CRC32 of the
#: length field's own four bytes, CRC32(payload) — followed by the
#: compact-JSON payload itself. The header CRC is what lets a scanner
#: distinguish a *corrupted* length field (refused) from a genuinely
#: torn final record (tolerated): once the length verifies, "fewer
#: bytes than it promises" can only mean a tear.
_HEADER = struct.Struct("<III")
_LENGTH = struct.Struct("<I")

_WAL_FILENAME = "wal.log"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


class WalError(Exception):
    """Base class for WAL failures."""


class CorruptRecord(WalError):
    """A complete record whose checksum (or JSON body) does not verify.

    Unlike a torn tail — which is the expected artifact of crashing
    mid-append and is silently tolerated — mid-file corruption means the
    log cannot be trusted at all, so readers refuse and report where.
    """

    def __init__(self, message: str, offset: int) -> None:
        super().__init__(f"{message} (at byte offset {offset})")
        self.offset = offset


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    seq: int
    kind: str            # "submit" | "submit_many" | "drain" | "vote" | "materialize" | "floor"
    payload: Dict[str, object]
    offset: int          # byte offset of the record header in the log


@dataclass(frozen=True)
class WalScan:
    """Result of scanning a log image."""

    records: Tuple[WalRecord, ...]
    valid_length: int    # bytes of complete, verified records (clean prefix)
    torn: bool           # True when trailing bytes form an incomplete record


def encode_record(seq: int, kind: str, payload: Dict[str, object]) -> bytes:
    """Frame one record: ``<length><crc32(length)><crc32(body)>`` header
    + compact JSON body."""
    body = json.dumps(
        {"seq": seq, "kind": kind, "data": payload},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    length = _LENGTH.pack(len(body))
    return _HEADER.pack(len(body), zlib.crc32(length), zlib.crc32(body)) + body


def scan_wal(data: bytes) -> WalScan:
    """Decode a log image, tolerating a torn final record.

    Raises :class:`CorruptRecord` when a *complete* record fails its CRC
    or does not decode — that is corruption, not a crash artifact, and
    replaying past it could silently diverge the recovered state.
    """
    records: List[WalRecord] = []
    offset = 0
    total = len(data)
    while offset < total:
        remaining = total - offset
        if remaining < _HEADER.size:
            return WalScan(tuple(records), offset, True)
        length, header_crc, crc = _HEADER.unpack_from(data, offset)
        # Verify the length field *before* trusting it: a corrupted
        # length would otherwise make every subsequent valid record look
        # like a torn tail — exactly the silent data loss this scanner
        # exists to refuse.
        if zlib.crc32(data[offset : offset + _LENGTH.size]) != header_crc:
            raise CorruptRecord("WAL record header checksum mismatch", offset)
        if remaining - _HEADER.size < length:
            return WalScan(tuple(records), offset, True)
        body = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if zlib.crc32(body) != crc:
            raise CorruptRecord("WAL record checksum mismatch", offset)
        try:
            decoded = json.loads(body)
        except ValueError as exc:
            raise CorruptRecord(f"WAL record is not valid JSON: {exc}", offset) from exc
        if not isinstance(decoded, dict) or "seq" not in decoded or "kind" not in decoded:
            raise CorruptRecord("WAL record missing seq/kind", offset)
        records.append(
            WalRecord(
                seq=int(decoded["seq"]),
                kind=str(decoded["kind"]),
                payload=dict(decoded.get("data", {})),
                offset=offset,
            )
        )
        offset += _HEADER.size + length
    return WalScan(tuple(records), offset, False)


def read_wal(path, *, io: FileIO = REAL_IO) -> WalScan:
    """Scan the log at ``path`` (see :func:`scan_wal`)."""
    return scan_wal(io.read_bytes(path))


def resolve_fsync_interval(fsync_interval_ms: Optional[float]) -> float:
    """The effective group-commit interval: explicit arg, else the
    ``REPRO_WAL_FSYNC_MS`` environment knob, else 0 (fsync every append)."""
    if fsync_interval_ms is not None:
        return float(fsync_interval_ms)
    raw = os.environ.get(WAL_FSYNC_ENV, "").strip()
    if not raw:
        return 0.0
    return float(raw)


# Process-wide WAL instruments on the default obs registry, built lazily so
# importing the module registers nothing (same pattern as the engine's).
_WAL_INSTRUMENTS: Dict[str, object] = {}


def _wal_instruments() -> Dict[str, object]:
    if not _WAL_INSTRUMENTS:
        registry = obs.default_registry()
        _WAL_INSTRUMENTS["records"] = registry.counter(
            "repro_wal_records_total",
            help="Records appended to submission write-ahead logs.",
        )
        _WAL_INSTRUMENTS["bytes"] = registry.counter(
            "repro_wal_bytes_total",
            help="Bytes appended to submission write-ahead logs.",
        )
        _WAL_INSTRUMENTS["fsync"] = registry.histogram(
            "repro_wal_fsync_seconds",
            help="Latency of WAL fsync calls (group commits included).",
        )
    return _WAL_INSTRUMENTS


class WriteAheadLog:
    """Append-only, CRC-framed, fsync-batched record log.

    Thread-safe: appends from concurrent submitters serialize on an
    internal lock, and the engine calls :meth:`append` while already
    holding the lock that orders the corresponding in-memory mutation, so
    sequence order equals effect order. Sequence numbers are monotone
    across :meth:`reset` (checkpoint truncation) — that is what makes
    replay after a crash *during* truncation idempotent.
    """

    def __init__(
        self,
        path,
        *,
        fsync_interval_ms: Optional[float] = None,
        next_seq: int = 1,
        truncate_to: Optional[int] = None,
        io: FileIO = REAL_IO,
    ) -> None:
        if next_seq < 1:
            raise ValueError("next_seq must be >= 1")
        self._io = io
        self._path = os.fspath(path)
        self.fsync_interval_ms = resolve_fsync_interval(fsync_interval_ms)
        self._lock = threading.Lock()
        self._handle = self._io.open_append(self._path)  # guarded-by: _lock
        if truncate_to is not None:
            # A torn tail from a previous crash: cut back to the clean
            # prefix so new appends extend verified records, not garbage.
            self._io.truncate(self._handle, truncate_to)
            self._io.fsync(self._handle)
            end_offset = truncate_to
        else:
            end_offset = self._io.file_size(self._path)
        self._end_offset = end_offset  # guarded-by: _lock
        # Checkpoint boundary captured by checkpoint_mark(): (seq, byte
        # offset) of the prefix the in-flight snapshot covers. reset()
        # rotates out exactly this prefix, so records appended after the
        # mark survive.
        self._mark: Optional[Tuple[int, int]] = None  # guarded-by: _lock
        self._next_seq = next_seq  # guarded-by: _lock
        self._appended_seq = next_seq - 1  # guarded-by: _lock
        self._synced_seq = next_seq - 1  # guarded-by: _lock
        self._last_fsync_monotonic: Optional[float] = None  # guarded-by: _lock
        self._records_appended = 0  # guarded-by: _lock
        self._bytes_appended = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    @property
    def path(self) -> str:
        return self._path

    @property
    def appended_seq(self) -> int:
        """Sequence number of the last appended record (0 when none)."""
        with self._lock:
            return self._appended_seq

    @property
    def synced_seq(self) -> int:
        """Sequence number of the last record known durable."""
        with self._lock:
            return self._synced_seq

    @property
    def records_appended(self) -> int:
        with self._lock:
            return self._records_appended

    @property
    def bytes_appended(self) -> int:
        with self._lock:
            return self._bytes_appended

    def append(self, kind: str, payload: Dict[str, object]) -> int:
        """Append one record; returns its sequence number.

        With ``fsync_interval_ms == 0`` the record is durable on return.
        Otherwise durability lags by at most the interval (group commit);
        :meth:`sync` forces it.
        """
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            seq = self._next_seq
            record = encode_record(seq, kind, payload)
            # No per-append flush: records sit in the user-space buffer
            # until the next group commit (fsync flushes first), which is
            # fine — unflushed and unfsynced bytes are equally volatile,
            # and the durability contract only covers fsynced records.
            self._io.write(self._handle, record)
            self._end_offset += len(record)
            self._next_seq = seq + 1
            self._appended_seq = seq
            self._records_appended += 1
            self._bytes_appended += len(record)
            if self.fsync_interval_ms <= 0.0:
                self._fsync_locked()
            else:
                now = _monotonic()
                last = self._last_fsync_monotonic
                if last is None or (now - last) * 1000.0 >= self.fsync_interval_ms:
                    self._fsync_locked()
            if obs.state.enabled:
                instruments = _wal_instruments()
                instruments["records"].inc()  # type: ignore[union-attr]
                instruments["bytes"].inc(len(record))  # type: ignore[union-attr]
        return seq

    def _fsync_locked(self) -> None:  # holds: _lock
        started = _monotonic()
        self._io.fsync(self._handle)
        ended = _monotonic()
        self._last_fsync_monotonic = ended
        self._synced_seq = self._appended_seq
        if obs.state.enabled:
            _wal_instruments()["fsync"].observe(ended - started)  # type: ignore[union-attr]

    def sync(self) -> None:
        """Force all appended records durable (group-commit flush)."""
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            if self._synced_seq < self._appended_seq or self._last_fsync_monotonic is None:
                self._fsync_locked()

    def checkpoint_mark(self) -> int:
        """Atomically capture the checkpoint boundary; returns its seq.

        The mark is the pair (last appended sequence number, log length
        holding exactly the records up to it). A later :meth:`reset`
        rotates out only this marked prefix, so records appended
        concurrently *after* the mark — acknowledged mutations the
        in-flight snapshot does not cover — survive the rotation. The
        caller must take the mark in the same critical section that
        captures the state the snapshot serializes (the engine does so
        under its ingest lock, see ``checkpoint_engine``); the returned
        seq becomes the snapshot's ``wal_seq``.
        """
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            self._mark = (self._appended_seq, self._end_offset)
            return self._appended_seq

    def reset(self, note: Optional[Dict[str, object]] = None) -> None:
        """Rotate out the checkpoint-covered prefix of the log.

        The prefix is whatever :meth:`checkpoint_mark` captured (with no
        mark outstanding: everything currently appended). Rotation is
        crash-atomic: the survivors — a ``floor`` record naming the
        covered sequence number (``note`` is stored in its payload for
        diagnostics), plus every record appended after the mark — are
        written to a temp file, fsynced, and renamed over the log, so a
        crash at any instant leaves either the full old log (covered
        records replay as a no-op via sequence numbers) or the new log,
        whose floor record declares what was rotated away. Sequence
        numbering continues where it left off, so records appended after
        the reset are distinguishable from (and ordered after)
        everything the checkpoint covered.
        """
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            marked_seq, marked_offset = (
                self._mark
                if self._mark is not None
                else (self._appended_seq, self._end_offset)
            )
            self._mark = None
            tail = b""
            if marked_offset < self._end_offset:
                # Acknowledged records landed after the mark: carry them
                # into the rotated log verbatim. Flush first — they may
                # still sit in the append handle's user-space buffer.
                self._io.flush(self._handle)
                tail = self._io.read_bytes(self._path)[marked_offset:]
            floor = encode_record(marked_seq, "floor", dict(note or {}))
            tmp = self._path + ".rotate"
            handle = self._io.open_write(tmp)
            try:
                self._io.write(handle, floor + tail)
                self._io.fsync(handle)
            finally:
                self._io.close(handle)
            self._io.close(self._handle)
            self._io.replace(tmp, self._path)
            self._io.fsync_dir(os.path.dirname(self._path) or ".")
            self._handle = self._io.open_append(self._path)
            self._end_offset = len(floor) + len(tail)
            self._synced_seq = self._appended_seq

    def close(self) -> None:
        """Flush outstanding records and release the file handle."""
        with self._lock:
            if self._closed:
                return
            if self._synced_seq < self._appended_seq:
                self._fsync_locked()
            self._io.close(self._handle)
            self._closed = True


def _snapshot_filename(snapshot_id: int) -> str:
    return f"{_SNAPSHOT_PREFIX}{snapshot_id:06d}{_SNAPSHOT_SUFFIX}"


def _parse_snapshot_id(name: str) -> Optional[int]:
    if not (name.startswith(_SNAPSHOT_PREFIX) and name.endswith(_SNAPSHOT_SUFFIX)):
        return None
    stem = name[len(_SNAPSHOT_PREFIX) : -len(_SNAPSHOT_SUFFIX)]
    if not stem.isdigit():
        return None
    return int(stem)


def _load_document(path, io: FileIO) -> Dict[str, object]:
    from .snapshot import CorruptSnapshot

    raw = io.read_bytes(path)
    try:
        document = json.loads(raw)
    except ValueError as exc:
        raise CorruptSnapshot(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise CorruptSnapshot(f"{path}: snapshot document must be a JSON object")
    return document


def latest_snapshot_document(directory, *, io: FileIO = REAL_IO):
    """The newest *loadable* snapshot document in ``directory`` (still
    unresolved — a delta comes back as a delta), or None when no snapshot
    loads. Used by tooling that needs snapshot metadata (the replay CLI
    reads the stashed trace parameters) without paying for a restore."""
    from .snapshot import SnapshotError

    if not io.exists(directory):
        return None
    ids = []
    for name in io.listdir(directory):
        snapshot_id = _parse_snapshot_id(name)
        if snapshot_id is not None:
            ids.append(snapshot_id)
    for snapshot_id in sorted(ids, reverse=True):
        path = os.path.join(os.fspath(directory), _snapshot_filename(snapshot_id))
        try:
            return _load_document(path, io)
        except SnapshotError:
            continue
    return None


class Durability:
    """One directory of durable engine state: ``wal.log`` + snapshot chain.

    Layout::

        <dir>/wal.log             append-only record log (rotated at checkpoint)
        <dir>/snapshot-000001.json  full snapshot (crash-atomically published)
        <dir>/snapshot-000002.json  delta, chained to 000001 by base_id
        ...

    Not thread-safe itself: :meth:`checkpoint` is an administrative
    operation driven by one coordinator (the replay CLI, a maintenance
    thread), while the WAL it owns is internally locked and fed by the
    engine's concurrent ingest path.
    """

    def __init__(
        self,
        directory,
        *,
        fsync_interval_ms: Optional[float] = None,
        full_every: int = 4,
        io: FileIO = REAL_IO,
    ) -> None:
        if full_every < 1:
            raise ValueError("full_every must be >= 1")
        self._io = io
        self._dir = os.fspath(directory)
        self._fsync_interval_ms = fsync_interval_ms
        self._full_every = full_every
        self._io.makedirs(self._dir)
        self._engine = None
        self._wal: Optional[WriteAheadLog] = None
        self._base_document: Optional[Dict[str, object]] = None
        self._deltas_since_full = 0
        ids = self._snapshot_ids()
        self._next_snapshot_id = (ids[-1] + 1) if ids else 1

    @property
    def directory(self) -> str:
        return self._dir

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        return self._wal

    def _snapshot_ids(self) -> List[int]:
        if not self._io.exists(self._dir):
            return []
        ids = []
        for name in self._io.listdir(self._dir):
            snapshot_id = _parse_snapshot_id(name)
            if snapshot_id is not None:
                ids.append(snapshot_id)
        return sorted(ids)

    def _wal_file(self) -> str:
        return os.path.join(self._dir, _WAL_FILENAME)

    def snapshot_path(self, snapshot_id: int) -> str:
        return os.path.join(self._dir, _snapshot_filename(snapshot_id))

    def attach(self, engine) -> WriteAheadLog:
        """Open (or continue) the WAL and hook it into ``engine``'s ingest.

        An existing log is scanned first: sequence numbering continues
        after its last record, and a torn tail from a previous crash is
        cut back to the clean prefix before new appends land.
        """
        from .snapshot import SnapshotError

        if self._wal is not None:
            raise WalError("a WAL is already attached to this directory")
        path = self._wal_file()
        # A crash between a rotation's temp-file write and its rename can
        # leave the temp behind; it is dead weight (the rename never
        # happened, so the real log is authoritative).
        stale = path + ".rotate"
        if self._io.exists(stale):
            self._io.remove(stale)
        next_seq = 1
        truncate_to: Optional[int] = None
        if self._io.exists(path):
            scan = read_wal(path, io=self._io)
            if scan.records:
                next_seq = scan.records[-1].seq + 1
            if scan.torn:
                truncate_to = scan.valid_length
        # Sequence numbers must also clear the newest snapshot's wal_seq
        # floor: after a checkpoint truncates the log, a freshly scanned
        # (empty) WAL would otherwise restart at 1 — below the floor, and
        # recovery would wrongly skip the new records as already covered.
        for snapshot_id in reversed(self._snapshot_ids()):
            try:
                doc = _load_document(self.snapshot_path(snapshot_id), self._io)
            except SnapshotError:
                continue
            next_seq = max(next_seq, int(doc.get("wal_seq", 0)) + 1)
            break
        self._wal = WriteAheadLog(
            path,
            fsync_interval_ms=self._fsync_interval_ms,
            next_seq=next_seq,
            truncate_to=truncate_to,
            io=self._io,
        )
        # Make the log's directory entry itself durable: a file whose
        # name was never fsynced can vanish wholesale in a crash.
        self._io.fsync_dir(self._dir)
        self._load_base_document()
        self._engine = engine
        engine.attach_wal(self._wal)
        return self._wal

    def _load_base_document(self) -> None:
        """Seed delta chaining from the newest existing full snapshot."""
        from .snapshot import SNAPSHOT_VERSION, SnapshotError

        for snapshot_id in reversed(self._snapshot_ids()):
            try:
                document = _load_document(self.snapshot_path(snapshot_id), self._io)
            except SnapshotError:
                continue
            if (
                document.get("version") == SNAPSHOT_VERSION
                and document.get("kind") == "full"
            ):
                self._base_document = document
                self._deltas_since_full = len(
                    [i for i in self._snapshot_ids() if i > snapshot_id]
                )
                return

    def checkpoint(
        self,
        *,
        full: bool = False,
        extra: Optional[Dict[str, object]] = None,
        drain: bool = True,
    ) -> str:
        """Publish a crash-atomic snapshot, then rotate the WAL.

        Every ``full_every``-th checkpoint (and the first, and any with
        ``full=True``) is a full snapshot; the rest are deltas chained to
        the latest full one — they re-serialize only the parts whose work
        functions changed since the base. The WAL is rotated only *after*
        the snapshot rename is durable, and only up to the mark the
        snapshot captured — records appended concurrently with the
        publish survive the rotation. A crash between publish and
        rotation replays records the snapshot already covers, which
        sequence numbers make a no-op.
        """
        if self._engine is None or self._wal is None:
            raise WalError("no engine attached; call attach() first")
        snapshot_id = self._next_snapshot_id
        base = None
        if (
            not full
            and self._base_document is not None
            and self._deltas_since_full < self._full_every - 1
        ):
            base = self._base_document
        document = self._engine.checkpoint(
            extra=extra, drain=drain, snapshot_id=snapshot_id, base=base
        )
        path = self.snapshot_path(snapshot_id)
        atomic_write_json(path, document, io=self._io)
        self._next_snapshot_id = snapshot_id + 1
        if document.get("kind") == "full":
            self._base_document = document
            self._deltas_since_full = 0
        else:
            self._deltas_since_full += 1
        self._wal.reset(note={"snapshot_id": snapshot_id})
        return path

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        self._engine = None

    # -- recovery --------------------------------------------------------------

    @staticmethod
    def recover(
        directory,
        optimizer,
        transitions,
        *,
        io: FileIO = REAL_IO,
        engine_options: Optional[Dict[str, object]] = None,
    ):
        """Rebuild an engine from ``directory``; returns ``(engine, report)``.

        Walks snapshots newest-first until one loads and its chain
        resolves (corrupt or chain-broken snapshots are skipped and
        reported), then replays the WAL tail: records covered by the
        snapshot (``seq <= wal_seq``) are skipped, submissions re-enter
        the queue, and votes/materializations are applied at exactly the
        statement position they originally happened at. A torn final
        record is tolerated; mid-file corruption raises
        :class:`CorruptRecord`. Statements replayed into the queue are
        left for the caller to pump — recovery restores state, it does
        not advance it.

        Falling back past a newer-but-unusable checkpoint is refused
        (:class:`repro.service.snapshot.BrokenChain`) whenever the WAL
        provably does not cover the gap: the log's ``floor`` record (or
        the first surviving sequence number, or a skipped snapshot's own
        ``wal_seq``) shows mutations beyond the restored snapshot were
        checkpointed and rotated away — replaying would silently diverge
        from the acknowledged history, the one outcome durable ingest
        exists to prevent.
        """
        from .engine import TuningEngine
        from .snapshot import SnapshotError, restore_engine

        directory = os.fspath(directory)
        with obs.span("wal.recover"):
            document: Optional[Dict[str, object]] = None
            skipped_snapshots: List[Dict[str, object]] = []
            ids = []
            if io.exists(directory):
                for name in io.listdir(directory):
                    snapshot_id = _parse_snapshot_id(name)
                    if snapshot_id is not None:
                        ids.append(snapshot_id)
            stored_kind = None
            # Highest wal_seq declared by a skipped-but-parseable newer
            # snapshot: evidence of how far the acknowledged history
            # reached even when that snapshot cannot be restored.
            skipped_wal_floor = 0
            for snapshot_id in sorted(ids, reverse=True):
                path = os.path.join(directory, _snapshot_filename(snapshot_id))
                try:
                    raw = _load_document(path, io)
                except SnapshotError as exc:
                    skipped_snapshots.append(
                        {"snapshot_id": snapshot_id, "error": str(exc)}
                    )
                    continue
                try:
                    kind = raw.get("kind", "full")
                    candidate = Durability._resolve_document(raw, directory, io)
                    engine = restore_engine(candidate, optimizer, transitions)
                except SnapshotError as exc:
                    skipped_snapshots.append(
                        {"snapshot_id": snapshot_id, "error": str(exc)}
                    )
                    raw_seq = raw.get("wal_seq", 0)
                    if isinstance(raw_seq, int):
                        skipped_wal_floor = max(skipped_wal_floor, raw_seq)
                    continue
                document = candidate
                stored_kind = kind
                break
            else:
                engine = TuningEngine(
                    optimizer, transitions, **(engine_options or {})
                )
            wal_floor = int(document.get("wal_seq", 0)) if document else 0
            wal_path = os.path.join(directory, _WAL_FILENAME)
            records: Tuple[WalRecord, ...] = ()
            torn = False
            if io.exists(wal_path):
                scan = read_wal(wal_path, io=io)
                records = scan.records
                torn = scan.torn
            Durability._refuse_gaps(records, wal_floor, skipped_wal_floor)
            replayed = 0
            covered = 0
            for record in records:
                if record.kind == "floor" or record.seq <= wal_floor:
                    covered += 1
                    continue
                Durability._apply_record(engine, record)
                replayed += 1
            report = {
                "snapshot_id": document.get("snapshot_id") if document else None,
                "snapshot_kind": stored_kind,
                "skipped_snapshots": skipped_snapshots,
                "wal_seq_floor": wal_floor,
                "wal_records": len(records),
                "wal_replayed": replayed,
                "wal_covered": covered,
                "wal_torn_tail": torn,
                "statements_processed": engine.statements_processed,
                "queue_depth": engine.queue_depth,
            }
        return engine, report

    @staticmethod
    def _refuse_gaps(
        records: Tuple[WalRecord, ...], wal_floor: int, skipped_wal_floor: int
    ) -> None:
        """Refuse recovery that would silently drop acknowledged mutations.

        ``wal_floor`` is what the restored snapshot covers; anything
        beyond it must come out of the WAL. Three independent witnesses
        prove a hole: the log's ``floor`` record declares a higher
        rotated-away prefix than the snapshot covers; the surviving
        records do not form a contiguous ``wal_floor + 1, ...`` run; or a
        skipped newer snapshot's own ``wal_seq`` reaches past everything
        recoverable. Each means mutations between the restored snapshot
        and a later durably-published checkpoint were truncated on the
        strength of a snapshot that can no longer be restored.
        """
        from .snapshot import BrokenChain

        problems: List[str] = []
        max_floor = max(
            (r.seq for r in records if r.kind == "floor"), default=0
        )
        if max_floor > wal_floor:
            problems.append(
                f"the log's floor record says sequences <= {max_floor} were "
                f"rotated away at a checkpoint, but the restored snapshot "
                f"covers only sequences <= {wal_floor}"
            )
        fresh = [
            r for r in records if r.kind != "floor" and r.seq > wal_floor
        ]
        if fresh and fresh[0].seq != wal_floor + 1:
            problems.append(
                f"replay should resume at sequence {wal_floor + 1} but the "
                f"first surviving record is sequence {fresh[0].seq}"
            )
        for prev, nxt in zip(fresh, fresh[1:]):
            if nxt.seq != prev.seq + 1:
                problems.append(
                    f"the log jumps from sequence {prev.seq} to {nxt.seq}"
                )
                break
        highest = max(
            [wal_floor, max_floor] + [r.seq for r in records]
        )
        if skipped_wal_floor > highest:
            problems.append(
                f"a newer (skipped) snapshot covered WAL sequences <= "
                f"{skipped_wal_floor}, beyond everything recoverable "
                f"(<= {highest})"
            )
        if problems:
            raise BrokenChain(
                "refusing recovery — acknowledged mutations are missing "
                "from the snapshot chain and WAL: " + "; ".join(problems)
            )

    @staticmethod
    def _resolve_document(document: Dict[str, object], directory: str, io: FileIO):
        """Overlay a delta snapshot onto its base; full docs pass through."""
        from .snapshot import BrokenChain, resolve_chain

        if document.get("kind") != "delta":
            return document
        base_id = document.get("base_id")
        if not isinstance(base_id, int):
            raise BrokenChain(
                f"delta snapshot {document.get('snapshot_id')!r} has no base_id"
            )
        base_path = os.path.join(directory, _snapshot_filename(base_id))
        if not io.exists(base_path):
            raise BrokenChain(
                f"delta snapshot {document.get('snapshot_id')!r} references "
                f"missing base snapshot {base_id}"
            )
        base = _load_document(base_path, io)
        return resolve_chain(document, base)

    @staticmethod
    def _apply_record(engine, record: WalRecord) -> None:
        """Replay one WAL record against a recovering engine.

        The engine has no WAL attached during recovery, so replay does
        not re-log. Votes and materializations are position-gated: the
        record carries the global statement count at which the action
        originally ran, and the queue is pumped exactly that far first,
        so feedback lands on the same work-function state it mutated in
        the original run.
        """
        from ..db.index import Index

        data = record.payload
        if record.kind == "submit":
            # Records written before the priority scheduler carry no
            # "priority" key; so do new records whose resolved class was
            # the default. Either way the entry was enqueued as "normal"
            # — the session's *current* default must not apply, because
            # by replay time it may have changed.
            engine.submit(
                str(data["client_id"]),
                str(data["sql"]),
                priority=str(data.get("priority", "normal")),
            )
        elif record.kind == "submit_many":
            engine.submit_many(
                (
                    str(entry["client_id"]),
                    str(entry["sql"]),
                    str(entry.get("priority", "normal")),
                )
                for entry in data["entries"]
            )
        elif record.kind == "drain":
            # A drain record is a logged batch boundary: the single
            # writer popped `count` entries from the priority queues of
            # `classes` at statement position `position`. Re-forming the
            # batch with the same class filter and the same deterministic
            # (priority, seq) order reproduces the original analysis
            # order exactly, even when classes interleave.
            Durability._pump_to(engine, int(data["position"]), record)
            count = int(data["count"])
            classes = tuple(str(c) for c in data.get("classes") or ())
            processed = engine._replay_drain(count, classes)
            if processed < count:
                raise WalError(
                    f"WAL drain record seq {record.seq} covers {count} "
                    f"statements but only {processed} were queued in "
                    f"classes {classes!r} — the log is missing submissions"
                )
        elif record.kind == "vote":
            Durability._pump_to(engine, int(data["position"]), record)
            engine.vote(
                str(data["client_id"]),
                frozenset(Index.from_payload(p) for p in data["plus"]),
                frozenset(Index.from_payload(p) for p in data["minus"]),
            )
        elif record.kind == "materialize":
            Durability._pump_to(engine, int(data["position"]), record)
            action = data["action"]
            if action == "create":
                engine.create_index(
                    str(data["client_id"]), Index.from_payload(data["index"])
                )
            elif action == "drop":
                engine.drop_index(
                    str(data["client_id"]), Index.from_payload(data["index"])
                )
            elif action == "adopt":
                engine.adopt(
                    str(data["client_id"]),
                    lease=bool(data.get("lease", True)),
                )
            else:
                raise WalError(
                    f"unknown materialize action {action!r} (seq {record.seq})"
                )
        else:
            raise WalError(
                f"unknown WAL record kind {record.kind!r} (seq {record.seq})"
            )

    @staticmethod
    def _pump_to(engine, position: int, record: WalRecord) -> None:
        deficit = position - engine.statements_processed
        if deficit < 0:
            raise WalError(
                f"WAL record seq {record.seq} expects statement position "
                f"{position} but the engine is already past it "
                f"({engine.statements_processed})"
            )
        if deficit:
            # Catch up in pure arrival (FIFO) order, not priority order:
            # this deficit covers pre-scheduler history or an all-default
            # prefix with no drain records, where every entry was
            # "normal" and drained FIFO. Priority-order popping here
            # could steal later re-enqueued higher-class submissions
            # that did not exist at the original drain time.
            pumped = engine._pump_fifo(deficit)
            if pumped < deficit:
                raise WalError(
                    f"WAL record seq {record.seq} expects statement position "
                    f"{position} but only {engine.statements_processed} "
                    "statements are recoverable — the log is missing "
                    "submissions (was an fsync dropped?)"
                )
