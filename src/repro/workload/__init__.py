"""The online index-tuning benchmark workload (after [15])."""

from .generator import WorkloadGenerator, generate_workload
from .multiclient import MultiClientTrace
from .phases import DEFAULT_PHASES, PhaseSpec, scaled_phases
from .profiles import DATASET_JOINS, DatasetProfile, JoinEdge, build_profile
from .trace import Workload

__all__ = [
    "DATASET_JOINS",
    "DEFAULT_PHASES",
    "DatasetProfile",
    "JoinEdge",
    "MultiClientTrace",
    "PhaseSpec",
    "Workload",
    "WorkloadGenerator",
    "build_profile",
    "generate_workload",
    "scaled_phases",
]
