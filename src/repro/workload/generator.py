"""Deterministic generator for the 8-phase online tuning benchmark.

Each phase draws statements from a small pool of *templates* — parameterized
query/update shapes whose literals jitter per instance. Repeated templates
are what make indices worth building (benefit accumulates across statements)
while the phase schedule shifts which indices matter, and intervening
updates make some indices transiently expensive — the stress properties the
paper relies on (§6.1).

Everything is seeded: the same ``(catalog, phases, seed)`` triple yields the
identical workload, which the experiments require for comparability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..db.schema import Catalog
from ..db.stats import StatsRepository
from ..query.ast import (
    ColumnRef,
    DeleteStatement,
    EqualityPredicate,
    InsertStatement,
    JoinPredicate,
    OrderBy,
    RangePredicate,
    SelectQuery,
    Statement,
    TablePredicate,
    UpdateStatement,
)
from .phases import DEFAULT_PHASES, PhaseSpec
from .profiles import DatasetProfile, JoinEdge, build_profile
from .trace import Workload

__all__ = ["WorkloadGenerator", "generate_workload"]

# Selectivity ranges (log-uniform) for generated predicates.
_QUERY_SEL_RANGE = (0.002, 0.35)
_UPDATE_SEL_RANGE = (0.0005, 0.02)
_DELETE_SEL_RANGE = (0.001, 0.01)
#: Bulk-insert size as a fraction of the table's rows. Inserts maintain
#: every index on the table, which is what makes indices "beneficial only
#: for short windows" across phases (§6.2, the lag experiment's rationale).
_INSERT_FRACTION_RANGE = (0.001, 0.006)
#: Relative mix of write-statement kinds within a phase's update budget.
_WRITE_KIND_WEIGHTS = {"update": 0.4, "insert": 0.45, "delete": 0.15}


@dataclass(frozen=True)
class _RangeSpec:
    table: str
    column: str
    target_selectivity: float


@dataclass(frozen=True)
class _EqSpec:
    table: str
    column: str


@dataclass(frozen=True)
class _QueryTemplate:
    dataset: str
    tables: Tuple[str, ...]
    joins: Tuple[JoinEdge, ...]
    ranges: Tuple[_RangeSpec, ...]
    equalities: Tuple[_EqSpec, ...]
    projection: Tuple[ColumnRef, ...]
    order_by: Optional[OrderBy]


@dataclass(frozen=True)
class _UpdateTemplate:
    table: str
    set_column: str
    where: Optional[_RangeSpec]


@dataclass(frozen=True)
class _InsertTemplate:
    table: str
    fraction: float  # rows inserted as a fraction of the table's row count


@dataclass(frozen=True)
class _DeleteTemplate:
    table: str
    where: _RangeSpec


_WriteTemplate = object  # union of the three write template kinds


class WorkloadGenerator:
    """Generates benchmark workloads over a catalog's datasets."""

    def __init__(
        self,
        catalog: Catalog,
        stats: StatsRepository,
        seed: int = 42,
    ) -> None:
        self._catalog = catalog
        self._stats = stats
        self._seed = seed
        self._profiles: Dict[str, DatasetProfile] = {}

    def _profile(self, dataset: str) -> DatasetProfile:
        profile = self._profiles.get(dataset)
        if profile is None:
            profile = build_profile(dataset, self._catalog, self._stats)
            self._profiles[dataset] = profile
        return profile

    # -- template construction ------------------------------------------------

    def _pick_tables(
        self, rng: random.Random, profile: DatasetProfile
    ) -> Tuple[Tuple[str, ...], Tuple[JoinEdge, ...]]:
        """Random connected table chain of length 1–3 over the join graph."""
        start = rng.choice(sorted(profile.tables))
        tables: List[str] = [start]
        joins: List[JoinEdge] = []
        target_len = rng.choices([1, 2, 3], weights=[0.35, 0.4, 0.25])[0]
        while len(tables) < target_len:
            frontier: List[Tuple[str, JoinEdge]] = []
            for table in tables:
                for neighbor, edge in profile.neighbors(table):
                    if neighbor not in tables:
                        frontier.append((neighbor, edge))
            if not frontier:
                break
            frontier.sort(key=lambda item: (item[0], item[1].left_column))
            neighbor, edge = rng.choice(frontier)
            tables.append(neighbor)
            joins.append(edge)
        return tuple(tables), tuple(joins)

    def _log_uniform(
        self, rng: random.Random, bounds: Tuple[float, float]
    ) -> float:
        import math
        lo, hi = bounds
        return math.exp(rng.uniform(math.log(lo), math.log(hi)))

    def _make_query_template(
        self, rng: random.Random, profile: DatasetProfile
    ) -> Optional[_QueryTemplate]:
        tables, joins = self._pick_tables(rng, profile)
        ranges: List[_RangeSpec] = []
        equalities: List[_EqSpec] = []
        for table in tables:
            available = list(profile.range_columns.get(table, ()))
            rng.shuffle(available)
            picks = available[: rng.choices([0, 1, 2], weights=[0.2, 0.55, 0.25])[0]]
            for column in picks:
                ranges.append(_RangeSpec(
                    table, column, self._log_uniform(rng, _QUERY_SEL_RANGE)
                ))
            eq_pool = [
                c for c in profile.eq_columns.get(table, ()) if c not in picks
            ]
            if eq_pool and rng.random() < 0.25:
                equalities.append(_EqSpec(table, rng.choice(sorted(eq_pool))))
        if not ranges and not equalities:
            # A predicate-free template exercises nothing; retry cheaply with
            # a forced range on the first table that has one.
            for table in tables:
                pool = profile.range_columns.get(table, ())
                if pool:
                    ranges.append(_RangeSpec(
                        table,
                        rng.choice(sorted(pool)),
                        self._log_uniform(rng, _QUERY_SEL_RANGE),
                    ))
                    break
            if not ranges:
                return None

        projection: Tuple[ColumnRef, ...] = ()
        if rng.random() < 0.2 and ranges:
            spec = rng.choice(sorted(ranges, key=lambda r: (r.table, r.column)))
            projection = (ColumnRef(spec.table, spec.column),)

        order_by: Optional[OrderBy] = None
        if len(tables) == 1 and rng.random() < 0.15:
            pool = profile.range_columns.get(tables[0], ())
            if pool:
                order_by = OrderBy((ColumnRef(tables[0], rng.choice(sorted(pool))),))

        return _QueryTemplate(
            dataset=profile.dataset,
            tables=tables,
            joins=joins,
            ranges=tuple(ranges),
            equalities=tuple(equalities),
            projection=projection,
            order_by=order_by,
        )

    def _make_write_template(
        self, rng: random.Random, profile: DatasetProfile
    ) -> Optional[_WriteTemplate]:
        kinds = sorted(_WRITE_KIND_WEIGHTS)
        kind = rng.choices(
            kinds, weights=[_WRITE_KIND_WEIGHTS[k] for k in kinds]
        )[0]
        if kind == "insert":
            pool = [t for t in sorted(profile.tables) if profile.range_columns.get(t)]
            if not pool:
                return None
            return _InsertTemplate(
                table=rng.choice(pool),
                fraction=self._log_uniform(rng, _INSERT_FRACTION_RANGE),
            )
        if kind == "delete":
            pool = [t for t in sorted(profile.tables) if profile.range_columns.get(t)]
            if not pool:
                return None
            table = rng.choice(pool)
            column = rng.choice(sorted(profile.range_columns[table]))
            return _DeleteTemplate(
                table=table,
                where=_RangeSpec(
                    table, column, self._log_uniform(rng, _DELETE_SEL_RANGE)
                ),
            )
        candidates = [
            t for t in sorted(profile.tables) if profile.set_columns.get(t)
        ]
        if not candidates:
            return None
        table = rng.choice(candidates)
        set_column = rng.choice(sorted(profile.set_columns[table]))
        where: Optional[_RangeSpec] = None
        where_pool = [
            c for c in profile.range_columns.get(table, ()) if c != set_column
        ]
        if where_pool:
            where = _RangeSpec(
                table,
                rng.choice(sorted(where_pool)),
                self._log_uniform(rng, _UPDATE_SEL_RANGE),
            )
        return _UpdateTemplate(table=table, set_column=set_column, where=where)

    # -- template instantiation -----------------------------------------------

    def _instantiate_range(
        self, rng: random.Random, spec: _RangeSpec
    ) -> RangePredicate:
        col_stats = self._stats.column_stats(spec.table, spec.column)
        domain = col_stats.domain_width
        selectivity = spec.target_selectivity * rng.uniform(0.8, 1.25)
        selectivity = min(selectivity, 0.9)
        width = max(domain * selectivity, 0.0)
        lo_min = col_stats.min_value
        hi_max = col_stats.max_value
        if width >= domain:
            lo, hi = lo_min, hi_max
        else:
            lo = rng.uniform(lo_min, hi_max - width)
            hi = lo + width
        return RangePredicate(ColumnRef(spec.table, spec.column), lo=lo, hi=hi)

    def _instantiate_query(
        self, rng: random.Random, template: _QueryTemplate
    ) -> SelectQuery:
        predicates: List[TablePredicate] = [
            self._instantiate_range(rng, spec) for spec in template.ranges
        ]
        for spec in template.equalities:
            col_stats = self._stats.column_stats(spec.table, spec.column)
            value = float(rng.randrange(int(max(col_stats.n_distinct, 1))))
            predicates.append(
                EqualityPredicate(ColumnRef(spec.table, spec.column), value)
            )
        joins = tuple(
            JoinPredicate(
                ColumnRef(edge.left_table, edge.left_column),
                ColumnRef(edge.right_table, edge.right_column),
            )
            for edge in template.joins
        )
        return SelectQuery(
            tables=template.tables,
            predicates=tuple(predicates),
            joins=joins,
            projection=template.projection,
            order_by=template.order_by,
        )

    def _instantiate_write(
        self, rng: random.Random, template: _WriteTemplate
    ) -> Statement:
        if isinstance(template, _InsertTemplate):
            rows = self._stats.row_count(template.table)
            count = max(1, int(rows * template.fraction * rng.uniform(0.8, 1.25)))
            return InsertStatement(table=template.table, row_count=count)
        if isinstance(template, _DeleteTemplate):
            return DeleteStatement(
                table=template.table,
                predicates=(self._instantiate_range(rng, template.where),),
            )
        assert isinstance(template, _UpdateTemplate)
        predicates: Tuple[TablePredicate, ...] = ()
        if template.where is not None:
            predicates = (self._instantiate_range(rng, template.where),)
        return UpdateStatement(
            table=template.table,
            set_columns=(template.set_column,),
            predicates=predicates,
        )

    # -- phase/workload generation ----------------------------------------------

    def _phase_templates(
        self, rng: random.Random, phase: PhaseSpec
    ) -> Tuple[List[_QueryTemplate], List[_WriteTemplate]]:
        datasets = sorted(phase.dataset_weights)
        weights = [phase.dataset_weights[d] for d in datasets]
        update_templates_wanted = (
            max(1, round(phase.template_count * phase.update_fraction))
            if phase.update_fraction > 0
            else 0
        )
        query_templates_wanted = max(
            1, phase.template_count - update_templates_wanted
        )
        queries: List[_QueryTemplate] = []
        updates: List[_WriteTemplate] = []
        attempts = 0
        while len(queries) < query_templates_wanted and attempts < 200:
            attempts += 1
            dataset = rng.choices(datasets, weights=weights)[0]
            template = self._make_query_template(rng, self._profile(dataset))
            if template is not None:
                queries.append(template)
        attempts = 0
        while len(updates) < update_templates_wanted and attempts < 200:
            attempts += 1
            dataset = rng.choices(datasets, weights=weights)[0]
            template = self._make_write_template(rng, self._profile(dataset))
            if template is not None:
                updates.append(template)
        return queries, updates

    def generate(
        self, phases: Sequence[PhaseSpec] = DEFAULT_PHASES
    ) -> Workload:
        """Generate the full workload for the given phase schedule."""
        statements: List[Statement] = []
        boundaries: List[Tuple[str, int]] = []
        for phase_index, phase in enumerate(phases):
            rng = random.Random(f"{self._seed}:{phase_index}:{phase.name}")
            queries, updates = self._phase_templates(rng, phase)
            if not queries and not updates:
                raise RuntimeError(
                    f"phase {phase.name!r}: no templates could be generated"
                )
            boundaries.append((phase.name, len(statements)))
            for _ in range(phase.statement_count):
                use_update = updates and rng.random() < phase.update_fraction
                if use_update or not queries:
                    template_u = rng.choice(updates)
                    statements.append(self._instantiate_write(rng, template_u))
                else:
                    template_q = rng.choice(queries)
                    statements.append(self._instantiate_query(rng, template_q))
        return Workload(statements, boundaries)


def generate_workload(
    catalog: Catalog,
    stats: StatsRepository,
    phases: Sequence[PhaseSpec] = DEFAULT_PHASES,
    seed: int = 42,
) -> Workload:
    """Convenience wrapper: build a generator and produce the workload."""
    return WorkloadGenerator(catalog, stats, seed).generate(phases)
