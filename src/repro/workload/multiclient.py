"""Interleaved multi-client traces: statement streams tagged by client.

The tuning service multiplexes many clients over one shared WFIT core, so
its replay/benchmark inputs are sequences of ``(client_id, statement)``
pairs rather than bare statement streams. :class:`MultiClientTrace` is
that container, with deterministic constructors:

* :meth:`MultiClientTrace.split` deals one workload's statements across N
  clients (round-robin or seeded-random assignment) *preserving the global
  statement order* — the shape of one traffic stream observed at a proxy.
* :meth:`MultiClientTrace.round_robin` / :meth:`MultiClientTrace.shuffled`
  merge independent per-client streams into one interleaving, preserving
  each client's internal order (the shape of N independent connections).

Because the shared engine analyzes statements in arrival order, feeding a
trace through ``TuningEngine.pump()`` is equivalent to feeding
``merged_statements()`` to a single WFIT — the determinism property the
service tests pin down.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from ..query.ast import Statement

__all__ = ["MultiClientTrace"]


class MultiClientTrace:
    """An immutable ordered sequence of ``(client_id, statement)`` pairs."""

    def __init__(self, entries: Iterable[Tuple[str, Statement]]) -> None:
        self._entries: Tuple[Tuple[str, Statement], ...] = tuple(
            (str(client), statement) for client, statement in entries
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def split(
        cls,
        statements: Sequence[Statement],
        clients: Sequence[str],
        mode: str = "round_robin",
        seed: int = 0,
    ) -> "MultiClientTrace":
        """Assign each statement (in order) to a client.

        ``mode="round_robin"`` deals statements cyclically;
        ``mode="random"`` draws the client per statement from
        ``random.Random(seed)``. Either way the global statement order is
        the input order.
        """
        if not clients:
            raise ValueError("need at least one client")
        ordered = list(clients)
        if mode == "round_robin":
            return cls(
                (ordered[i % len(ordered)], statement)
                for i, statement in enumerate(statements)
            )
        if mode == "random":
            rng = random.Random(seed)
            return cls(
                (rng.choice(ordered), statement) for statement in statements
            )
        raise ValueError(f"unknown split mode {mode!r}")

    @classmethod
    def round_robin(
        cls, streams: Mapping[str, Sequence[Statement]]
    ) -> "MultiClientTrace":
        """Merge per-client streams by cycling clients in sorted order."""
        remaining = {
            client: list(stream) for client, stream in streams.items()
        }
        order = sorted(remaining)
        entries: List[Tuple[str, Statement]] = []
        position = 0
        while remaining:
            client = order[position % len(order)]
            stream = remaining.get(client)
            if stream:
                entries.append((client, stream.pop(0)))
            if stream is not None and not stream:
                del remaining[client]
                order.remove(client)
                position -= 1  # keep the cycle aligned after removal
            position += 1
        return cls(entries)

    @classmethod
    def shuffled(
        cls, streams: Mapping[str, Sequence[Statement]], seed: int = 0
    ) -> "MultiClientTrace":
        """Deterministic random interleave preserving per-client order.

        At each step the next client is drawn weighted by its remaining
        statement count, so long streams do not starve short ones.
        """
        rng = random.Random(seed)
        remaining = {
            client: list(stream)
            for client, stream in sorted(streams.items())
            if stream
        }
        entries: List[Tuple[str, Statement]] = []
        while remaining:
            clients = sorted(remaining)
            weights = [len(remaining[c]) for c in clients]
            client = rng.choices(clients, weights=weights)[0]
            entries.append((client, remaining[client].pop(0)))
            if not remaining[client]:
                del remaining[client]
        return cls(entries)

    # -- views ---------------------------------------------------------------

    @property
    def entries(self) -> Tuple[Tuple[str, Statement], ...]:
        return self._entries

    @property
    def clients(self) -> Tuple[str, ...]:
        return tuple(sorted({client for client, _ in self._entries}))

    def merged_statements(self) -> Tuple[Statement, ...]:
        """The trace's statements in arrival order, without client tags."""
        return tuple(statement for _, statement in self._entries)

    def per_client(self) -> Dict[str, List[Statement]]:
        """Each client's stream in its own order."""
        out: Dict[str, List[Statement]] = {}
        for client, statement in self._entries:
            out.setdefault(client, []).append(statement)
        return out

    def prefix(self, n: int) -> "MultiClientTrace":
        return MultiClientTrace(self._entries[:n])

    def suffix(self, n: int) -> "MultiClientTrace":
        """The entries from position ``n`` on (for checkpoint resume)."""
        return MultiClientTrace(self._entries[n:])

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[str, Statement]]:
        return iter(self._entries)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return MultiClientTrace(self._entries[item])
        return self._entries[item]
