"""Phase schedule of the online index-tuning benchmark (after [15]).

The benchmark workload is "separated in eight consecutive phases. Each phase
comprises 200 statements and favors statements on specific data sets ...
Adjacent phases overlap in the focused data sets and also differ in the
relative frequency of updates and queries." (§6.1)

:data:`DEFAULT_PHASES` encodes that schedule: a rolling focus across the four
datasets with overlapping adjacent phases and an alternating update mix,
including the read-mostly opening stretch the paper points out in Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Tuple

__all__ = ["PhaseSpec", "DEFAULT_PHASES", "scaled_phases"]


@dataclass(frozen=True)
class PhaseSpec:
    """One workload phase.

    Attributes
    ----------
    name:
        Display label.
    dataset_weights:
        Relative probability of drawing a statement from each dataset.
    update_fraction:
        Probability that a statement is an update (vs a query).
    statement_count:
        Number of statements in the phase.
    template_count:
        Number of distinct statement templates the phase draws from;
        templates repeat with jittered literals, which is what lets index
        benefits accumulate within a phase.
    """

    name: str
    dataset_weights: Mapping[str, float]
    update_fraction: float
    statement_count: int = 200
    template_count: int = 8

    def __post_init__(self) -> None:
        if not self.dataset_weights:
            raise ValueError("phase needs at least one dataset")
        if any(w <= 0 for w in self.dataset_weights.values()):
            raise ValueError("dataset weights must be positive")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")
        if self.statement_count < 1:
            raise ValueError("statement_count must be >= 1")
        if self.template_count < 1:
            raise ValueError("template_count must be >= 1")

    def with_statement_count(self, count: int) -> "PhaseSpec":
        return PhaseSpec(
            name=self.name,
            dataset_weights=dict(self.dataset_weights),
            update_fraction=self.update_fraction,
            statement_count=count,
            template_count=self.template_count,
        )


#: The paper's 8-phase schedule: rolling dataset focus with adjacent-phase
#: overlap, mixed read/update intensity (read-mostly early, per Figure 12).
DEFAULT_PHASES: Tuple[PhaseSpec, ...] = (
    PhaseSpec("P1 tpch-heavy", {"tpch": 0.8, "tpce": 0.2}, update_fraction=0.05),
    PhaseSpec("P2 tpch/tpce", {"tpch": 0.45, "tpce": 0.55}, update_fraction=0.10),
    PhaseSpec("P3 tpce/tpcc", {"tpce": 0.7, "tpcc": 0.3}, update_fraction=0.30),
    PhaseSpec("P4 tpcc-heavy", {"tpcc": 0.8, "tpce": 0.2}, update_fraction=0.40),
    PhaseSpec("P5 tpcc/nref", {"tpcc": 0.5, "nref": 0.5}, update_fraction=0.25),
    PhaseSpec("P6 nref-heavy", {"nref": 0.8, "tpcc": 0.2}, update_fraction=0.10),
    PhaseSpec("P7 nref/tpch", {"nref": 0.45, "tpch": 0.55}, update_fraction=0.35),
    PhaseSpec("P8 tpch mix", {"tpch": 0.7, "nref": 0.3}, update_fraction=0.20),
)


def scaled_phases(
    statements_per_phase: int,
    phases: Sequence[PhaseSpec] = DEFAULT_PHASES,
) -> Tuple[PhaseSpec, ...]:
    """The same schedule with a different per-phase statement count.

    Used to run paper-shaped experiments at reduced scale (e.g. CI).
    """
    return tuple(p.with_statement_count(statements_per_phase) for p in phases)
