"""Dataset profiles: what the workload generator knows about each dataset.

A profile lists the join edges (foreign-key-shaped equi-join pairs) and
classifies columns by how they may appear in generated statements:

* ``range_columns`` — numeric/date columns with enough distinct values for
  meaningful range predicates;
* ``eq_columns`` — lower-cardinality columns suitable for equality;
* ``set_columns`` — mutable measure columns an UPDATE may assign (never join
  columns, mirroring how the benchmark's updates touch measures like
  ``l_tax``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from ..db.schema import Catalog, ColumnType
from ..db.stats import StatsRepository

__all__ = ["JoinEdge", "DatasetProfile", "build_profile", "DATASET_JOINS"]


@dataclass(frozen=True)
class JoinEdge:
    """An equi-joinable column pair between two tables of one dataset."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str


# Foreign-key-shaped join edges per dataset (tables unqualified here; the
# profile qualifies them). These mirror the reference schemas in datagen.
DATASET_JOINS: Mapping[str, Sequence[Tuple[str, str, str, str]]] = {
    "tpcc": (
        ("district", "d_w_id", "warehouse", "w_id"),
        ("customer", "c_w_id", "warehouse", "w_id"),
        ("orders", "o_c_id", "customer", "c_id"),
        ("order_line", "ol_o_id", "orders", "o_id"),
        ("order_line", "ol_i_id", "item", "i_id"),
        ("stock", "s_i_id", "item", "i_id"),
        ("new_order", "no_o_id", "orders", "o_id"),
        ("history", "h_c_id", "customer", "c_id"),
    ),
    "tpch": (
        ("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ("lineitem", "l_partkey", "part", "p_partkey"),
        ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
        ("orders", "o_custkey", "customer", "c_custkey"),
        ("partsupp", "ps_partkey", "part", "p_partkey"),
        ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
        ("customer", "c_nationkey", "nation", "n_nationkey"),
        ("supplier", "s_nationkey", "nation", "n_nationkey"),
        ("nation", "n_regionkey", "region", "r_regionkey"),
    ),
    "tpce": (
        ("security", "s_co_id", "company", "co_id"),
        ("daily_market", "dm_s_symb", "security", "s_symb"),
        ("trade", "t_s_symb", "security", "s_symb"),
        ("holding", "h_s_symb", "security", "s_symb"),
        ("holding", "h_t_id", "trade", "t_id"),
    ),
    "nref": (
        ("neighboring_seq", "protein_id", "protein", "protein_id"),
        ("source", "protein_id", "protein", "protein_id"),
        ("protein", "taxon_id", "taxonomy", "taxon_id"),
        ("source", "organism_id", "taxonomy", "taxon_id"),
    ),
}

#: Range predicates need at least this many distinct values to vary width.
_MIN_RANGE_DISTINCT = 50
#: Equality predicates target columns with cardinality in this band.
_EQ_DISTINCT_BAND = (2, 20_000)


@dataclass(frozen=True)
class DatasetProfile:
    """Generator-facing view of one dataset."""

    dataset: str
    tables: Tuple[str, ...]                      # qualified names
    join_edges: Tuple[JoinEdge, ...]
    range_columns: Mapping[str, Tuple[str, ...]]  # qualified table -> columns
    eq_columns: Mapping[str, Tuple[str, ...]]
    set_columns: Mapping[str, Tuple[str, ...]]

    def neighbors(self, table: str) -> List[Tuple[str, JoinEdge]]:
        """Tables joinable with ``table`` and the edge to use."""
        out: List[Tuple[str, JoinEdge]] = []
        for edge in self.join_edges:
            if edge.left_table == table:
                out.append((edge.right_table, edge))
            elif edge.right_table == table:
                out.append((edge.left_table, edge))
        return out


def build_profile(
    dataset: str, catalog: Catalog, stats: StatsRepository
) -> DatasetProfile:
    """Derive a :class:`DatasetProfile` from the catalog and statistics."""
    database = catalog.database(dataset)
    tables = tuple(t.qualified_name for t in database.tables)

    join_columns: Set[Tuple[str, str]] = set()
    edges: List[JoinEdge] = []
    for left, left_col, right, right_col in DATASET_JOINS.get(dataset, ()):
        left_q = f"{dataset}.{left}"
        right_q = f"{dataset}.{right}"
        if not (catalog.has_table(left_q) and catalog.has_table(right_q)):
            continue
        edges.append(JoinEdge(left_q, left_col, right_q, right_col))
        join_columns.add((left_q, left_col))
        join_columns.add((right_q, right_col))

    range_columns: Dict[str, Tuple[str, ...]] = {}
    eq_columns: Dict[str, Tuple[str, ...]] = {}
    set_columns: Dict[str, Tuple[str, ...]] = {}
    for table in database.tables:
        qualified = table.qualified_name
        ranges: List[str] = []
        eqs: List[str] = []
        sets: List[str] = []
        for column in table.columns:
            col_stats = stats.column_stats(qualified, column.name)
            is_join = (qualified, column.name) in join_columns
            if column.ctype.is_numeric or column.ctype is ColumnType.DATE:
                if col_stats.n_distinct >= _MIN_RANGE_DISTINCT:
                    ranges.append(column.name)
                if (
                    not is_join
                    and column.ctype in (ColumnType.FLOAT, ColumnType.DECIMAL)
                ):
                    sets.append(column.name)
            lo, hi = _EQ_DISTINCT_BAND
            if lo <= col_stats.n_distinct <= hi and not is_join:
                eqs.append(column.name)
        range_columns[qualified] = tuple(ranges)
        eq_columns[qualified] = tuple(eqs)
        set_columns[qualified] = tuple(sets)

    return DatasetProfile(
        dataset=dataset,
        tables=tables,
        join_edges=tuple(edges),
        range_columns=range_columns,
        eq_columns=eq_columns,
        set_columns=set_columns,
    )
