"""Workload containers: an ordered statement stream with phase annotations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..query.ast import Statement
from ..query.parser import to_sql

__all__ = ["Workload"]


@dataclass(frozen=True)
class _PhaseBoundary:
    name: str
    start: int  # index of first statement in the phase


class Workload:
    """An immutable statement stream ``Q`` with phase metadata.

    Supports the operations the experiments need: iteration, slicing into
    prefixes ``Q_n``, phase lookup, and a human-readable summary.
    """

    def __init__(
        self,
        statements: Sequence[Statement],
        phase_boundaries: Sequence[Tuple[str, int]] = (),
    ) -> None:
        self._statements: Tuple[Statement, ...] = tuple(statements)
        boundaries = [_PhaseBoundary(name, start) for name, start in phase_boundaries]
        boundaries.sort(key=lambda b: b.start)
        for boundary in boundaries:
            if not 0 <= boundary.start <= len(self._statements):
                raise ValueError(
                    f"phase {boundary.name!r} starts at {boundary.start}, "
                    f"outside the workload of length {len(self._statements)}"
                )
        self._boundaries: Tuple[_PhaseBoundary, ...] = tuple(boundaries)

    def __len__(self) -> int:
        return len(self._statements)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self._statements)

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self._statements))
            if step != 1:
                raise ValueError("workload slices must be contiguous")
            kept = [
                (b.name, max(0, b.start - start))
                for b in self._boundaries
                if b.start < stop
            ]
            return Workload(self._statements[item], kept)
        return self._statements[item]

    @property
    def statements(self) -> Tuple[Statement, ...]:
        return self._statements

    @property
    def phase_boundaries(self) -> Tuple[Tuple[str, int], ...]:
        return tuple((b.name, b.start) for b in self._boundaries)

    def phase_of(self, position: int) -> Optional[str]:
        """Name of the phase containing the statement at ``position``."""
        if not 0 <= position < len(self._statements):
            raise IndexError(position)
        current: Optional[str] = None
        for boundary in self._boundaries:
            if boundary.start <= position:
                current = boundary.name
            else:
                break
        return current

    def prefix(self, n: int) -> "Workload":
        """The prefix ``Q_n`` of the first ``n`` statements."""
        return self[:n]

    @property
    def update_count(self) -> int:
        return sum(1 for s in self._statements if s.is_update)

    @property
    def query_count(self) -> int:
        return len(self._statements) - self.update_count

    def summary(self) -> str:
        """Per-phase statement and update counts, for logging."""
        lines = [
            f"workload: {len(self)} statements "
            f"({self.query_count} queries, {self.update_count} updates)"
        ]
        boundaries = list(self._boundaries)
        for i, boundary in enumerate(boundaries):
            end = (
                boundaries[i + 1].start
                if i + 1 < len(boundaries)
                else len(self._statements)
            )
            chunk = self._statements[boundary.start:end]
            updates = sum(1 for s in chunk if s.is_update)
            lines.append(
                f"  {boundary.name}: statements {boundary.start}..{end - 1}, "
                f"{len(chunk) - updates} queries / {updates} updates"
            )
        return "\n".join(lines)

    def to_sql_lines(self) -> List[str]:
        """Render every statement as SQL (lossy for SET expressions)."""
        return [to_sql(s) for s in self._statements]
