"""Golden regression test for the paper experiments.

Runs the Figure 8 (baseline) and Figure 9 (feedback) drivers at reduced
scale with a fixed seed and asserts the cumulative totWork ratio curves
match the checked-in golden JSON to 1e-6. This pins the end-to-end
numerical behavior of the whole stack — workload generation, the what-if
cost model, the bitset WFA/IBG kernel, OPT, and the feedback machinery —
so a perf-motivated refactor cannot silently shift the science.

Regenerate (after an *intentional* behavior change) with:

    PYTHONPATH=src REPRO_REGEN_GOLDEN=1 python -m pytest tests/bench/test_golden_regression.py

and commit the diff of ``tests/golden/figures_small.json`` alongside an
explanation of why the curves moved.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.bench import figure8_baseline, figure9_feedback, get_context

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "golden" / "figures_small.json"

#: Reduced-scale, fixed-seed experiment parameters (shared with the harness
#: tests' tiny context so the session-scoped context cache is reused).
PARAMS = dict(per_phase=6, scale=0.02, seed=5, idx_cnt=10, state_counts=(64, 32))

_TOL = 1e-6


@pytest.fixture(scope="module")
def golden_context():
    return get_context(**PARAMS)


def _curves_as_json(result):
    """FigureResult curves with string checkpoint keys (JSON round-trip safe)."""
    return {
        label: {str(n): value for n, value in series.items()}
        for label, series in result.curves.items()
    }


def _run_figures(context):
    return {
        "figure8": _curves_as_json(figure8_baseline(context)),
        "figure9": _curves_as_json(figure9_feedback(context)),
    }


def test_totwork_curves_match_golden(golden_context):
    actual = _run_figures(golden_context)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden regenerated at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"golden file missing; run with REPRO_REGEN_GOLDEN=1 to create {GOLDEN_PATH}"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert set(actual) == set(golden)
    for figure, curves in golden.items():
        assert set(actual[figure]) == set(curves), f"{figure} curve labels changed"
        for label, series in curves.items():
            actual_series = actual[figure][label]
            assert set(actual_series) == set(series), (
                f"{figure}/{label} checkpoints changed"
            )
            for checkpoint, value in series.items():
                assert actual_series[checkpoint] == pytest.approx(
                    value, abs=_TOL
                ), f"{figure}/{label} at q={checkpoint}"
