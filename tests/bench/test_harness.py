"""Tests for the experiment harness (context construction, figure drivers)."""

from __future__ import annotations

import pytest

from repro.bench import (
    FigureResult,
    figure11_lag,
    figure11_lag_engine,
    figure8_baseline,
    get_context,
)
from repro.bench.context import ExperimentContext


@pytest.fixture(scope="module")
def tiny_context() -> ExperimentContext:
    """A deliberately tiny context so harness tests stay fast."""
    return get_context(
        per_phase=6, scale=0.02, seed=5, idx_cnt=10, state_counts=(64, 32)
    )


class TestContext:
    def test_checkpoints_cover_phases(self, tiny_context):
        assert tiny_context.checkpoints == tuple(6 * k for k in range(1, 9))

    def test_partitions_for_each_state_count(self, tiny_context):
        for state_cnt in (64, 32):
            parts = tiny_context.partition_for(state_cnt)
            assert sum(2 ** len(p) for p in parts) <= state_cnt

    def test_reference_partition_is_largest(self, tiny_context):
        assert tiny_context.fixed.partition == tiny_context.partition_for(64)

    def test_context_cached(self):
        first = get_context(per_phase=6, scale=0.02, seed=5, idx_cnt=10,
                            state_counts=(64, 32))
        second = get_context(per_phase=6, scale=0.02, seed=5, idx_cnt=10,
                             state_counts=(64, 32))
        assert first is second

    def test_opt_prefix_values_at_checkpoints(self, tiny_context):
        for n in tiny_context.checkpoints:
            assert tiny_context.opt_schedule.optimum_at(n) > 0

    def test_ratio_series(self, tiny_context):
        n = len(tiny_context.statements)
        fake_series = [float(i + 1) * 1000.0 for i in range(n)]
        ratios = tiny_context.ratio_series(fake_series)
        assert set(ratios) == set(tiny_context.checkpoints)


class TestFigureResult:
    def test_format_table(self):
        result = FigureResult("Figure X", "demo")
        result.add_curve("A", {10: 0.5, 20: 0.75})
        result.add_curve("B", {10: 0.4, 20: 0.6})
        text = result.format_table()
        assert "Figure X" in text
        assert "q=10" in text and "q=20" in text
        assert "0.750" in text

    def test_final_ratio(self):
        result = FigureResult("f", "d")
        result.add_curve("A", {10: 0.5, 20: 0.9})
        assert result.final_ratio("A") == 0.9


class TestFigureDrivers:
    def test_figure8_curves_present(self, tiny_context):
        result = figure8_baseline(tiny_context)
        assert {"WFIT-64", "WFIT-32", "WFIT-IND", "BC"} <= set(result.curves)
        for series in result.curves.values():
            assert set(series) == set(tiny_context.checkpoints)
            assert all(v > 0 for v in series.values())

    def test_figure11_lag_labels(self, tiny_context):
        result = figure11_lag(tiny_context, lags=(1, 6))
        assert "WFIT" in result.curves
        assert "LAG 6" in result.curves

    def test_figure11_engine_accounting_is_bit_identical(self, tiny_context):
        """The service engine's realized-totWork accounting reproduces the
        offline Figure 11 experiment exactly — same curves, bit for bit
        (the ISSUE 10 cross-check: both series accumulate one
        ``cost + transition`` sum per statement, so there is no float
        grouping to diverge)."""
        offline = figure11_lag(tiny_context, lags=(1, 6))
        engine = figure11_lag_engine(tiny_context, lags=(1, 6))
        assert set(engine.curves) == set(offline.curves)
        for label, series in offline.curves.items():
            assert engine.curves[label] == series, f"{label} diverged"
