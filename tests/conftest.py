"""Shared fixtures and synthetic-instance helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.db import (
    Index,
    StatsRepository,
    StatsTransitionCosts,
    build_catalog,
    build_toy_catalog,
)
from repro.optimizer import WhatIfOptimizer


# ---------------------------------------------------------------------------
# Catalog / optimizer fixtures (session-scoped: they are immutable).
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def toy_catalog():
    return build_toy_catalog(rows=100_000)


@pytest.fixture(scope="session")
def toy_stats(toy_catalog) -> StatsRepository:
    return toy_catalog[1]


@pytest.fixture(scope="session")
def bench_catalog():
    return build_catalog(scale=0.02)


@pytest.fixture(scope="session")
def bench_stats(bench_catalog) -> StatsRepository:
    return bench_catalog[1]


@pytest.fixture()
def toy_optimizer(toy_stats) -> WhatIfOptimizer:
    return WhatIfOptimizer(toy_stats)


@pytest.fixture()
def bench_optimizer(bench_stats) -> WhatIfOptimizer:
    return WhatIfOptimizer(bench_stats)


@pytest.fixture()
def toy_transitions(toy_stats) -> StatsTransitionCosts:
    return StatsTransitionCosts(toy_stats)


@pytest.fixture()
def bench_transitions(bench_stats) -> StatsTransitionCosts:
    return StatsTransitionCosts(bench_stats)
