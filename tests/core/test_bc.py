"""Tests for the BC online tuner adaptation."""

from __future__ import annotations

import pytest

from repro.core.bc import BC
from repro.core.wfa import TransitionCosts
from repro.db import Index

from synth import make_indices


class _TableStatement:
    """Minimal statement stub exposing tables_referenced()."""

    def __init__(self, *tables: str) -> None:
        self._tables = tables
        self.is_update = False

    def tables_referenced(self):
        return self._tables


def single_index_world(benefit: float, create: float = 30.0, drop: float = 3.0):
    a = make_indices(1)[0]
    costs = {
        frozenset(): 100.0,
        frozenset({a}): 100.0 - benefit,
    }
    transitions = TransitionCosts(create={a: create}, drop={a: drop})
    bc = BC({a}, frozenset(), lambda q, X: costs[frozenset(X)], transitions)
    return a, bc


class TestThresholds:
    def test_creates_after_accumulated_benefit(self):
        a, bc = single_index_world(benefit=10.0, create=30.0, drop=3.0)
        stmt = _TableStatement("syn.t")
        for _ in range(3):
            assert a not in bc.recommend()
            bc.analyze_statement(stmt)
        # 4th statement pushes the accumulator past δ+ + δ- = 33.
        bc.analyze_statement(stmt)
        assert a in bc.recommend()

    def test_never_creates_for_weak_benefit(self):
        a, bc = single_index_world(benefit=0.0)
        stmt = _TableStatement("syn.t")
        for _ in range(50):
            bc.analyze_statement(stmt)
        assert a not in bc.recommend()

    def test_drops_after_accumulated_penalty(self):
        a = make_indices(1)[0]
        costs = {frozenset(): 100.0, frozenset({a}): 112.0}  # maintenance
        transitions = TransitionCosts(create={a: 30.0}, drop={a: 3.0})
        bc = BC({a}, {a}, lambda q, X: costs[frozenset(X)], transitions)
        stmt = _TableStatement("syn.t")
        for _ in range(2):
            bc.analyze_statement(stmt)
            assert a in bc.recommend()  # -24 has not reached -33 yet
        bc.analyze_statement(stmt)
        assert a not in bc.recommend()

    def test_benefit_pays_down_pain(self):
        a = make_indices(1)[0]
        costs = [
            {frozenset(): 100.0, frozenset({a}): 112.0},  # pain 12
            {frozenset(): 100.0, frozenset({a}): 80.0},   # benefit 20 -> reset
            {frozenset(): 100.0, frozenset({a}): 112.0},  # pain 12 again
        ]
        transitions = TransitionCosts(create={a: 30.0}, drop={a: 3.0})
        sequence = iter(costs + costs)
        table = {}
        def cost(q, X):
            return table[frozenset(X)]
        bc = BC({a}, {a}, cost, transitions)
        stmt = _TableStatement("syn.t")
        for step in costs:
            table.clear()
            table.update(step)
            bc.analyze_statement(stmt)
        # Pain never accumulated past the threshold thanks to the payback.
        assert a in bc.recommend()

    def test_threshold_factor(self):
        a, bc_low = single_index_world(benefit=10.0)
        transitions = TransitionCosts(create={a: 30.0}, drop={a: 3.0})
        costs = {frozenset(): 100.0, frozenset({a}): 90.0}
        bc_high = BC(
            {a}, frozenset(), lambda q, X: costs[frozenset(X)],
            transitions, threshold_factor=3.0,
        )
        stmt = _TableStatement("syn.t")
        for _ in range(4):
            bc_low.analyze_statement(stmt)
            bc_high.analyze_statement(stmt)
        assert a in bc_low.recommend()
        assert a not in bc_high.recommend()


class TestInteractionAdjustment:
    def test_same_table_credit_is_split(self):
        a, b = make_indices(2)
        # Both indices individually halve the cost (mutually redundant).
        costs = {
            frozenset(): 100.0,
            frozenset({a}): 50.0,
            frozenset({b}): 50.0,
            frozenset({a, b}): 50.0,
        }
        transitions = TransitionCosts(
            create={a: 80.0, b: 80.0}, drop={a: 1.0, b: 1.0}
        )
        bc = BC({a, b}, frozenset(), lambda q, X: costs[frozenset(X)], transitions)
        stmt = _TableStatement("syn.t")
        bc.analyze_statement(stmt)
        # Raw credit would be 50 each; split credit is 25 each.
        assert bc._delta[a] == pytest.approx(25.0)
        assert bc._delta[b] == pytest.approx(25.0)

    def test_irrelevant_table_skipped(self):
        a = make_indices(1)[0]
        other = Index("other.t", ("x",))
        costs = {frozenset(): 10.0}
        transitions = TransitionCosts(default_create=5.0)
        bc = BC(
            {a, other}, frozenset(),
            lambda q, X: 10.0, transitions,
        )
        stmt = _TableStatement("syn.t")
        bc.analyze_statement(stmt)
        assert bc._delta[other] == 0.0


class TestValidation:
    def test_initial_config_must_be_candidates(self):
        a, b = make_indices(2)
        with pytest.raises(ValueError):
            BC({a}, {b}, lambda q, X: 0.0, TransitionCosts())

    def test_statement_counter(self):
        a, bc = single_index_world(benefit=1.0)
        stmt = _TableStatement("syn.t")
        bc.analyze_statement(stmt)
        bc.analyze_statement(stmt)
        assert bc.statements_analyzed == 2
