"""Unit tests for the bitset configuration kernel (repro.core.bitset)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.bitset import (
    IndexUniverse,
    MaskDeltaTable,
    delta_cost,
    iter_bits,
    iter_submasks,
    popcount,
)
from repro.core.wfa import TransitionCosts
from repro.db import Index


def make_indices(count: int, table: str = "syn.t"):
    return [Index(table, (f"c{i:02d}",)) for i in range(count)]


class TestIndexUniverse:
    def test_constructor_assigns_sorted_positions(self):
        indices = make_indices(5)
        universe = IndexUniverse(reversed(indices))
        assert universe.indices == tuple(sorted(indices))
        for pos, index in enumerate(sorted(indices)):
            assert universe.bit_of(index) == 1 << pos

    def test_encode_decode_roundtrip(self):
        indices = make_indices(8)
        universe = IndexUniverse(indices)
        rng = random.Random(11)
        for _ in range(50):
            subset = frozenset(rng.sample(indices, rng.randint(0, len(indices))))
            mask = universe.encode(subset)
            assert universe.decode(mask) == subset
            assert popcount(mask) == len(subset)
            assert universe.decode_sorted(mask) == tuple(sorted(subset))

    def test_positions_are_append_only(self):
        indices = make_indices(4)
        universe = IndexUniverse(indices[:2])
        before = {ix: universe.bit_of(ix) for ix in indices[:2]}
        universe.ensure(indices[3])
        universe.ensure(indices[2])
        # Earlier bits are untouched; later registrations append.
        for ix, bit in before.items():
            assert universe.bit_of(ix) == bit
        assert universe.bit_of(indices[3]) == 1 << 2
        assert universe.bit_of(indices[2]) == 1 << 3

    def test_encode_registers_project_ignores(self):
        known, unknown = make_indices(2)
        universe = IndexUniverse([known])
        assert universe.project({known, unknown}) == universe.bit_of(known)
        assert unknown not in universe
        mask = universe.encode({known, unknown})
        assert unknown in universe
        assert popcount(mask) == 2

    def test_table_masks(self):
        a = Index("db.t1", ("x",))
        b = Index("db.t1", ("y",))
        c = Index("db.t2", ("z",))
        universe = IndexUniverse([a, b, c])
        assert universe.table_mask("db.t1") == universe.encode({a, b})
        assert universe.table_mask("db.t2") == universe.encode({c})
        assert universe.table_mask("db.absent") == 0
        assert universe.tables_mask(["db.t1", "db.t2"]) == universe.full_mask

    def test_subset_predicates_match_set_semantics(self):
        indices = make_indices(4)
        universe = IndexUniverse(indices)
        for r_a in range(len(indices) + 1):
            for combo_a in itertools.combinations(indices, r_a):
                for r_b in range(len(indices) + 1):
                    for combo_b in itertools.combinations(indices, r_b):
                        set_a, set_b = set(combo_a), set(combo_b)
                        mask_a = universe.encode(set_a)
                        mask_b = universe.encode(set_b)
                        assert IndexUniverse.is_subset(mask_a, mask_b) == (
                            set_a <= set_b
                        )
                        assert IndexUniverse.is_superset(mask_a, mask_b) == (
                            set_a >= set_b
                        )


class TestMaskIteration:
    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b10110)) == [0b10, 0b100, 0b10000]

    def test_iter_submasks_enumerates_power_set(self):
        mask = 0b1101
        subs = list(iter_submasks(mask))
        assert len(subs) == 1 << popcount(mask)
        assert len(set(subs)) == len(subs)
        assert all(sub & ~mask == 0 for sub in subs)
        assert 0 in subs and mask in subs

    def test_iter_submasks_of_zero(self):
        assert list(iter_submasks(0)) == [0]


class TestMaskDeltaTable:
    def test_matches_naive_per_bit_sum(self):
        rng = random.Random(3)
        create = [float(rng.randint(1, 50)) for _ in range(5)]
        drop = [float(rng.randint(0, 5)) for _ in range(5)]
        table = MaskDeltaTable(create, drop)
        for old in range(32):
            for new in range(32):
                expected = sum(
                    create[i] for i in range(5) if new & ~old & (1 << i)
                ) + sum(drop[i] for i in range(5) if old & ~new & (1 << i))
                assert table.delta(old, new) == pytest.approx(expected)

    def test_round_trip(self):
        table = MaskDeltaTable([10.0, 20.0], [1.0, 2.0])
        assert table.round_trip(0b11) == pytest.approx(33.0)
        assert table.round_trip(0b01) == pytest.approx(11.0)

    def test_mismatched_vectors_rejected(self):
        with pytest.raises(ValueError):
            MaskDeltaTable([1.0], [])


class TestCreateDropAsymmetry:
    """δ is not symmetric: creating pays δ⁺, dropping pays δ⁻ (footnote 4).

    Every δ implementation routes through the kernel, so asymmetry must be
    respected by all of them consistently.
    """

    def test_delta_cost_direction(self):
        a, b = make_indices(2)
        transitions = TransitionCosts(
            create={a: 50.0, b: 70.0}, drop={a: 2.0, b: 3.0}
        )
        assert delta_cost(transitions, set(), {a}) == pytest.approx(50.0)
        assert delta_cost(transitions, {a}, set()) == pytest.approx(2.0)
        # Mixed move: create b, drop a.
        assert delta_cost(transitions, {a}, {b}) == pytest.approx(72.0)
        # Asymmetric in general.
        assert delta_cost(transitions, set(), {a, b}) != pytest.approx(
            delta_cost(transitions, {a, b}, set())
        )

    def test_transition_costs_delegate_to_kernel(self):
        a, b = make_indices(2)
        transitions = TransitionCosts(create={a: 9.0, b: 4.0}, drop={b: 1.5})
        assert transitions.delta({b}, {a}) == pytest.approx(9.0 + 1.5)
        assert transitions.delta({a}, {b}) == pytest.approx(4.0 + 0.0)

    def test_mask_table_matches_set_level_kernel(self):
        indices = make_indices(4)
        rng = random.Random(7)
        transitions = TransitionCosts(
            create={ix: float(rng.randint(1, 60)) for ix in indices},
            drop={ix: float(rng.randint(0, 4)) for ix in indices},
        )
        universe = IndexUniverse(indices)
        table = MaskDeltaTable(
            [transitions.create_cost(ix) for ix in universe.indices],
            [transitions.drop_cost(ix) for ix in universe.indices],
        )
        for old_mask in range(16):
            for new_mask in range(16):
                assert table.delta(old_mask, new_mask) == pytest.approx(
                    delta_cost(
                        transitions,
                        universe.decode(old_mask),
                        universe.decode(new_mask),
                    )
                )

    def test_stats_transitions_route_through_kernel(self, toy_transitions):
        ix = Index("shop.sales", ("amount",))
        create = toy_transitions.create_cost(ix)
        drop = toy_transitions.drop_cost(ix)
        assert create > drop  # the paper's asymmetry: builds dwarf drops
        assert toy_transitions.delta(set(), {ix}) == pytest.approx(create)
        assert toy_transitions.delta({ix}, set()) == pytest.approx(drop)


class TestEncodeDeterminism:
    def test_unseen_batch_registers_sorted_regardless_of_iteration_order(self):
        indices = make_indices(6)
        a = IndexUniverse()
        a.encode(indices)           # list order (already sorted)
        b = IndexUniverse()
        b.encode(reversed(indices))  # reversed iteration order
        c = IndexUniverse()
        c.encode(frozenset(indices))  # hash iteration order
        for ix in indices:
            assert a.bit_of(ix) == b.bit_of(ix) == c.bit_of(ix)
