"""Tests for benefit/interaction statistics and topIndices."""

from __future__ import annotations

import pytest

from repro.core.candidates import IndexStatistics, RecencyStatistic, top_indices
from repro.core.wfa import TransitionCosts

from synth import make_indices


class TestRecencyStatistic:
    def test_empty_is_zero(self):
        stat = RecencyStatistic(hist_size=5)
        assert stat.current(10) == 0.0

    def test_single_entry(self):
        stat = RecencyStatistic(hist_size=5)
        stat.record(10, 6.0)
        # window = N - n + 1 = 10 - 10 + 1 = 1
        assert stat.current(10) == pytest.approx(6.0)
        # window grows as time passes without new benefit
        assert stat.current(12) == pytest.approx(6.0 / 3)

    def test_lru_k_max_over_windows(self):
        stat = RecencyStatistic(hist_size=5)
        stat.record(1, 10.0)
        stat.record(10, 2.0)
        # at N=10: window ℓ=1 → 2/1 = 2; window ℓ=2 → 12/10 = 1.2
        assert stat.current(10) == pytest.approx(2.0)

    def test_old_burst_can_dominate(self):
        stat = RecencyStatistic(hist_size=5)
        stat.record(8, 50.0)
        stat.record(10, 1.0)
        # ℓ=1 → 1.0; ℓ=2 → 51/3 = 17 → burst dominates
        assert stat.current(10) == pytest.approx(51.0 / 3.0)

    def test_hist_size_evicts_oldest(self):
        stat = RecencyStatistic(hist_size=2)
        stat.record(1, 100.0)
        stat.record(2, 1.0)
        stat.record(3, 1.0)
        # the (1, 100) entry fell off: best window is (2+... ) at most
        assert stat.current(3) == pytest.approx(1.0)

    def test_non_positive_ignored(self):
        stat = RecencyStatistic(hist_size=3)
        stat.record(1, 0.0)
        stat.record(2, -5.0)
        assert len(stat) == 0

    def test_out_of_order_rejected(self):
        stat = RecencyStatistic(hist_size=3)
        stat.record(5, 1.0)
        with pytest.raises(ValueError):
            stat.record(5, 1.0)

    def test_future_entry_rejected(self):
        stat = RecencyStatistic(hist_size=3)
        stat.record(5, 1.0)
        with pytest.raises(ValueError):
            stat.current(3)

    def test_invalid_hist_size(self):
        with pytest.raises(ValueError):
            RecencyStatistic(0)


class TestIndexStatistics:
    def test_benefit_roundtrip(self):
        a, b = make_indices(2)
        stats = IndexStatistics(hist_size=10)
        stats.record_benefit(a, 1, 5.0)
        assert stats.current_benefit(a, 1) == pytest.approx(5.0)
        assert stats.current_benefit(b, 1) == 0.0

    def test_interaction_symmetric_storage(self):
        a, b = make_indices(2)
        stats = IndexStatistics(hist_size=10)
        stats.record_interaction(b, a, 3, 2.0)
        assert stats.current_doi(a, b, 3) == pytest.approx(2.0)
        assert stats.current_doi(b, a, 3) == pytest.approx(2.0)

    def test_doi_lookup_binding(self):
        a, b = make_indices(2)
        stats = IndexStatistics(hist_size=10)
        stats.record_interaction(a, b, 2, 4.0)
        lookup = stats.doi_lookup(2)
        assert lookup(a, b) == pytest.approx(4.0)

    def test_tracked_indices(self):
        a, b = make_indices(2)
        stats = IndexStatistics()
        stats.record_benefit(a, 1, 1.0)
        assert stats.tracked_indices() == frozenset({a})


class TestTopIndices:
    def _stats_with(self, pairs, hist_size=10):
        stats = IndexStatistics(hist_size=hist_size)
        for index, benefit in pairs:
            stats.record_benefit(index, 1, benefit)
        return stats

    def test_orders_by_benefit(self):
        a, b, c = make_indices(3)
        stats = self._stats_with([(a, 1.0), (b, 9.0), (c, 5.0)])
        transitions = TransitionCosts(default_create=0.0)
        top = top_indices({a, b, c}, 2, frozenset(), stats, 1, transitions)
        assert top == [b, c]

    def test_limit_zero(self):
        a = make_indices(1)[0]
        stats = self._stats_with([(a, 1.0)])
        assert top_indices({a}, 0, frozenset(), stats, 1, TransitionCosts()) == []

    def test_monitored_index_wins_ties(self):
        a, b = make_indices(2)
        stats = self._stats_with([(a, 5.0), (b, 5.0)])
        transitions = TransitionCosts(default_create=10.0)
        top = top_indices({a, b}, 1, frozenset({b}), stats, 1, transitions)
        assert top == [b], "the unmonitored index pays the creation charge"

    def test_amortized_creation_charge(self):
        """The creation penalty is δ⁺/hist_size, not raw δ⁺ — a valuable
        index must be able to displace a stale incumbent."""
        stale, hot = make_indices(2)
        stats = IndexStatistics(hist_size=100)
        stats.record_benefit(stale, 1, 0.5)
        stats.record_benefit(hot, 200, 400.0)
        transitions = TransitionCosts(default_create=5000.0)
        top = top_indices(
            {stale, hot}, 1, frozenset({stale}), stats, 200, transitions
        )
        assert top == [hot]

    def test_explicit_penalty_factor(self):
        a, b = make_indices(2)
        stats = self._stats_with([(a, 5.0), (b, 6.0)])
        transitions = TransitionCosts(default_create=10.0)
        # With the raw (factor=1) charge, b's benefit cannot pay for creation.
        top = top_indices(
            {a, b}, 1, frozenset({a}), stats, 1, transitions,
            create_penalty_factor=1.0,
        )
        assert top == [a]

    def test_deterministic_tiebreak(self):
        a, b = make_indices(2)
        stats = self._stats_with([(a, 5.0), (b, 5.0)])
        transitions = TransitionCosts(default_create=0.0)
        top = top_indices({a, b}, 1, frozenset(), stats, 1, transitions)
        assert top == [min(a, b)]
