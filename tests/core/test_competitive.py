"""Competitive-ratio sanity checks for Theorems 4.1 and 4.3.

The theorems bound worst-case behaviour:
``totWork(WFA) ≤ (2^{|C|+1} − 1) · totWork(OPT) + α`` with α independent of
the workload. We cannot test α directly, but on random instances we verify a
concrete bound with α instantiated from the proof's ingredients (a small
multiple of the maximum transition cost µ), and we verify the ratio is
rarely anywhere near the bound — matching the paper's observation that
average-case performance is far better than worst case.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import run_online
from repro.core.opt import brute_force_opt
from repro.core.wfa import WFA
from repro.core.wfa_plus import WFAPlus

from synth import make_synthetic_instance


def _max_transition(workload, transitions) -> float:
    full = frozenset(workload.indices)
    return max(
        transitions.delta(frozenset(), full),
        transitions.delta(full, frozenset()),
    )


def _run_wfa(workload, transitions) -> float:
    wfa = WFA(workload.indices, frozenset(), workload.cost, transitions)
    result = run_online(wfa, workload.statements, workload.cost, transitions)
    return result.total_work


class TestTheorem41Bound:
    @pytest.mark.parametrize("seed", range(12))
    def test_bound_on_random_instances(self, seed):
        rng = random.Random(seed)
        workload, transitions = make_synthetic_instance(rng, [2], 10)
        total = _run_wfa(workload, transitions)
        opt = brute_force_opt(
            workload.statements,
            set(workload.indices),
            frozenset(),
            workload.cost,
            transitions,
        ).total_work
        c = len(workload.indices)
        ratio_bound = 2 ** (c + 1) - 1
        alpha = 2 ** (c + 2) * _max_transition(workload, transitions)
        assert total <= ratio_bound * opt + alpha

    @given(seed=st.integers(min_value=0, max_value=99_999))
    @settings(max_examples=30, deadline=None)
    def test_bound_property(self, seed):
        rng = random.Random(seed)
        workload, transitions = make_synthetic_instance(rng, [3], 8)
        total = _run_wfa(workload, transitions)
        opt = brute_force_opt(
            workload.statements,
            set(workload.indices),
            frozenset(),
            workload.cost,
            transitions,
        ).total_work
        c = len(workload.indices)
        assert total <= (2 ** (c + 1) - 1) * opt + 2 ** (c + 2) * _max_transition(
            workload, transitions
        )


class TestTheorem43Bound:
    """WFA⁺'s bound uses c_max, not |C| — much tighter for partitioned sets."""

    @pytest.mark.parametrize("seed", range(8))
    def test_partitioned_bound(self, seed):
        rng = random.Random(1000 + seed)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 10)
        plus = WFAPlus(workload.partition, frozenset(), workload.cost, transitions)
        result = run_online(plus, workload.statements, workload.cost, transitions)
        opt = brute_force_opt(
            workload.statements,
            set(workload.indices),
            frozenset(),
            workload.cost,
            transitions,
        ).total_work
        c_max = max(len(p) for p in workload.partition)
        alpha = len(workload.partition) * 2 ** (c_max + 2) * _max_transition(
            workload, transitions
        )
        assert result.total_work <= (2 ** (c_max + 1) - 1) * opt + alpha

    def test_average_case_much_better_than_bound(self):
        """§6.2: empirical performance is far from the worst-case bound."""
        ratios = []
        for seed in range(10):
            rng = random.Random(2000 + seed)
            workload, transitions = make_synthetic_instance(rng, [2, 2], 20)
            plus = WFAPlus(
                workload.partition, frozenset(), workload.cost, transitions
            )
            result = run_online(
                plus, workload.statements, workload.cost, transitions
            )
            opt = brute_force_opt(
                workload.statements,
                set(workload.indices),
                frozenset(),
                workload.cost,
                transitions,
            ).total_work
            if opt > 0:
                ratios.append(result.total_work / opt)
        c_max = 2
        bound = 2 ** (c_max + 1) - 1  # = 7
        assert sum(ratios) / len(ratios) < bound / 2
