"""Tests for the online tuning driver and its DBA models."""

from __future__ import annotations

import random

import pytest

from repro.core.driver import run_online
from repro.core.opt import FeedbackEvent
from repro.core.wfa import TransitionCosts
from repro.core.wfa_plus import WFAPlus

from synth import make_indices, make_synthetic_instance


class _ScriptedAlgorithm:
    """Recommends a fixed script of configurations; records feedback calls."""

    def __init__(self, script):
        self._script = list(script)
        self._step = -1
        self.feedback_calls = []

    def analyze_statement(self, statement):
        self._step += 1

    def recommend(self):
        return self._script[min(self._step, len(self._script) - 1)]

    def feedback(self, f_plus, f_minus):
        self.feedback_calls.append((frozenset(f_plus), frozenset(f_minus)))


class TestTotalWorkAccounting:
    def test_immediate_adoption_accounting(self):
        a = make_indices(1)[0]
        costs = {frozenset(): 10.0, frozenset({a}): 4.0}
        transitions = TransitionCosts(create={a: 7.0}, drop={a: 2.0})
        script = [frozenset(), frozenset({a}), frozenset({a})]
        algorithm = _ScriptedAlgorithm(script)
        result = run_online(
            algorithm, ["q1", "q2", "q3"],
            lambda q, X: costs[frozenset(X)], transitions,
        )
        # totWork = 10 + (7 + 4) + 4
        assert result.total_work == pytest.approx(25.0)
        assert result.points[1].transition_cost == pytest.approx(7.0)
        assert result.configuration_changes() == 1

    def test_series_monotone_nondecreasing(self):
        rng = random.Random(1)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 15)
        plus = WFAPlus(workload.partition, frozenset(), workload.cost, transitions)
        result = run_online(plus, workload.statements, workload.cost, transitions)
        series = result.total_work_series
        assert all(series[i] <= series[i + 1] + 1e-9 for i in range(len(series) - 1))

    def test_cost_uses_post_analysis_recommendation(self):
        """The task-system convention: S_n is chosen after q_n is revealed."""
        a = make_indices(1)[0]
        costs = {frozenset(): 10.0, frozenset({a}): 0.0}
        transitions = TransitionCosts(create={a: 1.0}, drop={a: 0.0})
        algorithm = _ScriptedAlgorithm([frozenset({a})])
        result = run_online(
            algorithm, ["q1"], lambda q, X: costs[frozenset(X)], transitions
        )
        assert result.points[0].query_cost == 0.0


class TestFeedbackDelivery:
    def test_events_applied_at_their_position(self):
        a, b = make_indices(2)
        algorithm = _ScriptedAlgorithm([frozenset()] * 3)
        events = [
            FeedbackEvent(-1, frozenset({a}), frozenset()),
            FeedbackEvent(1, frozenset(), frozenset({b})),
        ]
        run_online(
            algorithm, ["q1", "q2", "q3"], lambda q, X: 1.0,
            TransitionCosts(), feedback_events=events,
        )
        assert algorithm.feedback_calls == [
            (frozenset({a}), frozenset()),
            (frozenset(), frozenset({b})),
        ]

    def test_multiple_events_same_position(self):
        a, b = make_indices(2)
        algorithm = _ScriptedAlgorithm([frozenset()])
        events = [
            FeedbackEvent(0, frozenset({a}), frozenset()),
            FeedbackEvent(0, frozenset({b}), frozenset()),
        ]
        run_online(
            algorithm, ["q1"], lambda q, X: 1.0,
            TransitionCosts(), feedback_events=events,
        )
        assert len(algorithm.feedback_calls) == 2


class TestLaggedAdoption:
    def test_configuration_changes_only_at_period(self):
        rng = random.Random(2)
        workload, transitions = make_synthetic_instance(rng, [2], 12)
        plus = WFAPlus(workload.partition, frozenset(), workload.cost, transitions)
        result = run_online(
            plus, workload.statements, workload.cost, transitions, adopt_period=4
        )
        for point in result.points:
            if (point.position + 1) % 4 != 0:
                assert point.transition_cost == 0.0

    def test_lag_one_equals_immediate(self):
        rng = random.Random(3)
        workload, transitions = make_synthetic_instance(rng, [2, 1], 12)

        def fresh():
            return WFAPlus(
                workload.partition, frozenset(), workload.cost, transitions
            )

        immediate = run_online(fresh(), workload.statements, workload.cost, transitions)
        lag_one = run_online(
            fresh(), workload.statements, workload.cost, transitions, adopt_period=1
        )
        assert immediate.total_work == pytest.approx(lag_one.total_work)

    def test_lease_feedback_toggle(self):
        a, b = make_indices(2)
        algorithm = _ScriptedAlgorithm([frozenset({a})] * 4)
        run_online(
            algorithm, ["q"] * 4, lambda q, X: 1.0,
            TransitionCosts(), adopt_period=2, lease_feedback=True,
        )
        assert algorithm.feedback_calls, "acceptance must cast implicit votes"
        silent = _ScriptedAlgorithm([frozenset({a})] * 4)
        run_online(
            silent, ["q"] * 4, lambda q, X: 1.0,
            TransitionCosts(), adopt_period=2, lease_feedback=False,
        )
        assert not silent.feedback_calls

    def test_invalid_period(self):
        algorithm = _ScriptedAlgorithm([frozenset()])
        with pytest.raises(ValueError):
            run_online(algorithm, ["q"], lambda q, X: 1.0, TransitionCosts(),
                       adopt_period=0)


class TestResultObject:
    def test_empty_workload(self):
        algorithm = _ScriptedAlgorithm([frozenset()])
        result = run_online(algorithm, [], lambda q, X: 1.0, TransitionCosts())
        assert result.total_work == 0.0
        assert result.final_configuration == frozenset()

    def test_optimizer_counter_capture(self, toy_optimizer, toy_stats):
        from repro.core.wfit import WFIT
        from repro.db import StatsTransitionCosts
        from repro.query import select
        transitions = StatsTransitionCosts(toy_stats)
        col = toy_stats.column_stats("shop.sales", "amount")
        query = (
            select("shop.sales")
            .where_between("amount", col.min_value, col.min_value + 10)
            .build()
        )
        tuner = WFIT(toy_optimizer, transitions, idx_cnt=8, state_cnt=64)
        result = run_online(
            tuner, [query] * 3, toy_optimizer.cost, transitions,
            optimizer=toy_optimizer,
        )
        assert result.whatif_calls > 0
        assert result.optimizations > 0
