"""Tests for the feedback mechanism (§3.1 consistency, §5.1 recoverability)."""

from __future__ import annotations

import random

import pytest

from repro.core.wfa import WFA, TransitionCosts
from repro.core.wfa_plus import WFAPlus

from synth import make_indices, make_synthetic_instance


class TestConsistency:
    """F+c ⊆ S and S ∩ F−c = ∅ immediately after feedback."""

    def test_positive_vote_enters_recommendation(self):
        rng = random.Random(31)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 6)
        plus = WFAPlus(workload.partition, frozenset(), workload.cost, transitions)
        for statement in workload.statements[:3]:
            plus.analyze_statement(statement)
        target = sorted(workload.indices)[0]
        rec = plus.feedback({target}, frozenset())
        assert target in rec

    def test_negative_vote_leaves_recommendation(self):
        rng = random.Random(32)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 6)
        plus = WFAPlus(workload.partition, frozenset(), workload.cost, transitions)
        for statement in workload.statements[:3]:
            plus.analyze_statement(statement)
        current = plus.recommend()
        if not current:
            current = plus.feedback(frozenset(workload.indices[:1]), frozenset())
        victim = sorted(current)[0]
        rec = plus.feedback(frozenset(), {victim})
        assert victim not in rec

    def test_simultaneous_votes(self):
        a, b, c = make_indices(3)
        transitions = TransitionCosts(default_create=10.0, default_drop=1.0)
        plus = WFAPlus([{a}, {b}, {c}], frozenset(), lambda q, X: 1.0, transitions)
        rec = plus.feedback({a, b}, {c})
        assert a in rec and b in rec and c not in rec

    def test_rejects_conflicting_votes(self):
        a, b = make_indices(2)
        plus = WFAPlus([{a}, {b}], frozenset(), lambda q, X: 1.0, TransitionCosts())
        with pytest.raises(ValueError):
            plus.feedback({a}, {a})

    def test_votes_on_unknown_indices_are_ignored(self):
        a, b = make_indices(2)
        stranger = make_indices(3)[2]
        plus = WFAPlus([{a}, {b}], frozenset(), lambda q, X: 1.0, TransitionCosts())
        rec = plus.feedback({stranger}, frozenset())
        assert stranger not in rec


class TestScoreBound51:
    """After feedback, score(S) − score(rec) ≥ δ(S, Scons) + δ(Scons, S)."""

    def _check_bound(self, wfa: WFA, f_plus, f_minus) -> None:
        wfa.apply_feedback(f_plus, f_minus)
        rec = wfa.recommend()
        scores = wfa.scores()
        rec_score = scores[rec]
        for subset, score in scores.items():
            consistent = (subset - f_minus) | (f_plus & frozenset(wfa.indices))
            bound = (
                wfa._transitions.delta(subset, consistent)
                + wfa._transitions.delta(consistent, subset)
            )
            assert score - rec_score >= bound - 1e-6, (
                f"S={sorted(i.name for i in subset)}: "
                f"score diff {score - rec_score} < bound {bound}"
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_bound_after_positive_vote(self, seed):
        rng = random.Random(seed)
        workload, transitions = make_synthetic_instance(rng, [3], 8)
        wfa = WFA(workload.indices, frozenset(), workload.cost, transitions)
        for statement in workload.statements:
            wfa.analyze_statement(statement)
        self._check_bound(wfa, frozenset({workload.indices[0]}), frozenset())

    @pytest.mark.parametrize("seed", range(6, 12))
    def test_bound_after_mixed_votes(self, seed):
        rng = random.Random(seed)
        workload, transitions = make_synthetic_instance(rng, [3], 8)
        wfa = WFA(workload.indices, frozenset(), workload.cost, transitions)
        for statement in workload.statements:
            wfa.analyze_statement(statement)
        self._check_bound(
            wfa,
            frozenset({workload.indices[0]}),
            frozenset({workload.indices[2]}),
        )


class TestRecoverability:
    """The workload can override feedback (§5.1): bad votes are not final."""

    def test_workload_overrides_bad_negative_vote(self):
        a = make_indices(1)[0]
        transitions = TransitionCosts(create={a: 10.0}, drop={a: 1.0})
        # Every query strongly favors a.
        wfa = WFA([a], frozenset(), lambda q, X: 0.0 if X else 30.0, transitions)
        wfa.analyze_statement("q0")
        assert wfa.recommend() == frozenset({a})
        wfa.apply_feedback(frozenset(), {a})
        assert wfa.recommend() == frozenset()  # consistency honored
        recovered = False
        for i in range(10):
            rec = wfa.analyze_statement(f"q{i + 1}")
            if a in rec:
                recovered = True
                break
        assert recovered, "WFA never recovered from the bad negative vote"

    def test_workload_overrides_bad_positive_vote(self):
        a = make_indices(1)[0]
        transitions = TransitionCosts(create={a: 10.0}, drop={a: 1.0})
        # Every statement punishes a (update-heavy workload).
        wfa = WFA([a], frozenset(), lambda q, X: 30.0 if X else 0.0, transitions)
        wfa.analyze_statement("q0")
        assert wfa.recommend() == frozenset()
        wfa.apply_feedback({a}, frozenset())
        assert wfa.recommend() == frozenset({a})  # consistency honored
        recovered = False
        for i in range(10):
            rec = wfa.analyze_statement(f"q{i + 1}")
            if a not in rec:
                recovered = True
                break
        assert recovered, "WFA never recovered from the bad positive vote"

    def test_feedback_is_idempotent_when_consistent(self):
        """Votes matching the current recommendation change nothing — the
        lease-renewal no-op that makes T=1 lag equal full autonomy."""
        rng = random.Random(41)
        workload, transitions = make_synthetic_instance(rng, [3], 8)
        wfa = WFA(workload.indices, frozenset(), workload.cost, transitions)
        for statement in workload.statements:
            wfa.analyze_statement(statement)
        rec = wfa.recommend()
        before = wfa.work_function()
        wfa.apply_feedback(rec, frozenset())
        assert wfa.recommend() == rec
        after = wfa.work_function()
        for subset in before:
            # Bound (5.1) already holds for WFA's own chosen recommendation,
            # so re-affirming it must not disturb the work function.
            assert after[subset] == pytest.approx(before[subset], abs=1e-6)
