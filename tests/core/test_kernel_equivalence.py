"""Property tests: the bitset WFA is step-for-step identical to the
retained frozenset reference implementation.

For random workloads and partitions of ≤ 4 candidates, the kernel-backed
:class:`repro.core.wfa.WFA` and :class:`repro.core.wfa_reference.ReferenceWFA`
must produce the same recommendation and the same work-function value for
every configuration after every statement (and after every feedback event).
Synthetic costs are integer-valued, so both implementations perform exact
float arithmetic and the comparison needs no meaningful tolerance.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.wfa import WFA
from repro.core.wfa_reference import ReferenceWFA
from repro.optimizer import WhatIfOptimizer, extract_indices
from repro.query import select
from synth import make_synthetic_instance

#: Work-function values are sums of exact integer-valued floats in both
#: implementations; the tolerance only guards against association noise.
_TOL = 1e-9


def _assert_same_state(kernel: WFA, reference: ReferenceWFA, step: object) -> None:
    assert kernel.recommend() == reference.recommend(), f"at {step}"
    reference_w = reference.work_function()
    kernel_w = kernel.work_function()
    assert set(kernel_w) == set(reference_w)
    for subset, value in reference_w.items():
        assert kernel_w[subset] == pytest.approx(value, abs=_TOL), (
            f"w[{sorted(ix.name for ix in subset)}] diverged at {step}"
        )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    part_size=st.integers(1, 4),
    n_statements=st.integers(1, 12),
    initial_bits=st.integers(0, 15),
)
def test_wfa_matches_reference_on_random_workloads(
    seed, part_size, n_statements, initial_bits
):
    rng = random.Random(seed)
    workload, transitions = make_synthetic_instance(
        rng, [part_size], n_statements
    )
    part = sorted(workload.partition[0])
    initial = frozenset(
        ix for i, ix in enumerate(part) if initial_bits & (1 << i)
    )
    kernel = WFA(part, initial, workload.cost, transitions)
    reference = ReferenceWFA(part, initial, workload.cost, transitions)
    _assert_same_state(kernel, reference, "initialization")
    for statement in workload.statements:
        kernel.analyze_statement(statement)
        reference.analyze_statement(statement)
        _assert_same_state(kernel, reference, statement)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    part_size=st.integers(1, 4),
    n_statements=st.integers(2, 10),
)
def test_wfa_matches_reference_under_feedback(seed, part_size, n_statements):
    """Random DBA votes between statements: the consistent-configuration
    search and the bound-(5.1) raise must agree too."""
    rng = random.Random(seed)
    workload, transitions = make_synthetic_instance(
        rng, [part_size], n_statements
    )
    part = sorted(workload.partition[0])
    kernel = WFA(part, frozenset(), workload.cost, transitions)
    reference = ReferenceWFA(part, frozenset(), workload.cost, transitions)
    vote_rng = random.Random(seed + 1)
    for statement in workload.statements:
        kernel.analyze_statement(statement)
        reference.analyze_statement(statement)
        if vote_rng.random() < 0.5:
            voted = vote_rng.sample(part, vote_rng.randint(0, len(part)))
            split = vote_rng.randint(0, len(voted))
            f_plus = frozenset(voted[:split])
            f_minus = frozenset(voted[split:])
            kernel.apply_feedback(f_plus, f_minus)
            reference.apply_feedback(f_plus, f_minus)
        _assert_same_state(kernel, reference, statement)


class TestMaskProviderPath:
    """The fast path (mask-capable what-if optimizer) must be equivalent to
    driving the same optimizer through the plain frozenset callable."""

    def _statements(self, toy_stats):
        amount = toy_stats.column_stats("shop.sales", "amount")
        date = toy_stats.column_stats("shop.sales", "sale_date")
        lo_a, lo_d = amount.min_value, date.min_value
        out = []
        for k in range(1, 5):
            width_a = amount.domain_width * 0.03 * k
            width_d = date.domain_width * 0.05 * k
            out.append(
                select("shop.sales")
                .where_between("amount", lo_a, lo_a + width_a)
                .where_between("sale_date", lo_d, lo_d + width_d)
                .count_star()
                .build()
            )
        return out

    def test_fast_path_engaged_and_equivalent(self, toy_stats, toy_transitions):
        statements = self._statements(toy_stats)
        part = sorted(extract_indices(statements[0]))[:4]
        assert part, "fixture query must yield candidate indices"

        mask_optimizer = WhatIfOptimizer(toy_stats)
        kernel = WFA(part, frozenset(), mask_optimizer.cost, toy_transitions)
        assert kernel._mask_provider is mask_optimizer  # fast path active

        slow_optimizer = WhatIfOptimizer(toy_stats)
        reference = ReferenceWFA(
            part,
            frozenset(),
            lambda stmt, config: slow_optimizer.cost(stmt, config),
            toy_transitions,
        )
        for statement in statements * 2:  # repeats exercise the memo table
            kernel.analyze_statement(statement)
            reference.analyze_statement(statement)
            _assert_same_state(kernel, reference, statement)

    def test_cost_override_disables_fast_path(self, toy_stats, toy_transitions):
        """A subclass overriding ``cost`` must be honored verbatim — the
        mask fast path would silently bypass the override."""

        class Noisy(WhatIfOptimizer):
            def cost(self, statement, config):
                return 2.0 * super().cost(statement, config)

        statements = self._statements(toy_stats)
        part = sorted(extract_indices(statements[0]))[:3]
        noisy = Noisy(toy_stats)
        kernel = WFA(part, frozenset(), noisy.cost, toy_transitions)
        assert kernel._mask_provider is None
        reference = ReferenceWFA(part, frozenset(), noisy.cost, toy_transitions)
        for statement in statements:
            kernel.analyze_statement(statement)
            reference.analyze_statement(statement)
            _assert_same_state(kernel, reference, statement)
        # The doubled costs actually reached the work function.
        plain = WhatIfOptimizer(toy_stats)
        baseline = WFA(part, frozenset(), plain.cost, toy_transitions)
        for statement in statements:
            baseline.analyze_statement(statement)
        assert kernel.min_work() > baseline.min_work()

    def test_plain_callable_disables_fast_path(self, toy_stats, toy_transitions):
        statements = self._statements(toy_stats)
        part = sorted(extract_indices(statements[0]))[:3]
        optimizer = WhatIfOptimizer(toy_stats)
        wfa = WFA(
            part,
            frozenset(),
            lambda stmt, config: optimizer.cost(stmt, config),
            toy_transitions,
        )
        assert wfa._mask_provider is None
        wfa.analyze_statement(statements[0])  # still works end to end
        assert wfa.statements_analyzed == 1
