"""Tests for offline fixed-partition selection and OPT vote streams."""

from __future__ import annotations

import random

import pytest

from repro.core.offline import compute_fixed_partition
from repro.core.opt import OfflineOptimizer
from repro.db import StatsTransitionCosts
from repro.optimizer import WhatIfOptimizer
from repro.query import select, update

from synth import make_synthetic_instance

SALES = "shop.sales"


@pytest.fixture()
def small_setup(toy_stats):
    optimizer = WhatIfOptimizer(toy_stats)
    transitions = StatsTransitionCosts(toy_stats)
    amount = toy_stats.column_stats(SALES, "amount")
    date = toy_stats.column_stats(SALES, "sale_date")
    statements = []
    for i in range(6):
        lo = amount.min_value + i * amount.domain_width * 0.02
        statements.append(
            select(SALES)
            .where_between("amount", lo, lo + amount.domain_width * 0.02)
            .count_star()
            .build()
        )
        lo2 = date.min_value + i * date.domain_width * 0.02
        statements.append(
            select(SALES)
            .where_between("sale_date", lo2, lo2 + date.domain_width * 0.02)
            .count_star()
            .build()
        )
    statements.append(
        update(SALES)
        .set("amount")
        .where_between("sale_date", date.min_value, date.min_value + 20)
        .build()
    )
    return optimizer, transitions, statements


class TestComputeFixedPartition:
    def test_universe_from_read_only_portion(self, small_setup):
        optimizer, transitions, statements = small_setup
        fixed = compute_fixed_partition(
            statements, optimizer, transitions, idx_cnt=6, state_cnt=64
        )
        # The update's WHERE column index was also mined by the queries,
        # but nothing should come exclusively from write statements.
        assert fixed.universe
        assert all(not ix.table.startswith("nonexistent") for ix in fixed.universe)

    def test_budgets_respected(self, small_setup):
        optimizer, transitions, statements = small_setup
        fixed = compute_fixed_partition(
            statements, optimizer, transitions, idx_cnt=4, state_cnt=32
        )
        assert len(fixed.candidates) <= 4
        assert sum(2 ** len(p) for p in fixed.partition) <= 32

    def test_singleton_partition_helper(self, small_setup):
        optimizer, transitions, statements = small_setup
        fixed = compute_fixed_partition(
            statements, optimizer, transitions, idx_cnt=4, state_cnt=32
        )
        singles = fixed.singleton_partition()
        assert len(singles) == len(fixed.candidates)
        assert all(len(p) == 1 for p in singles)

    def test_benefit_averages_exposed(self, small_setup):
        optimizer, transitions, statements = small_setup
        fixed = compute_fixed_partition(
            statements, optimizer, transitions, idx_cnt=6, state_cnt=64
        )
        assert any(v > 0 for v in fixed.average_benefit.values())


class TestSustainedEvents:
    def _schedule(self, seed=51):
        rng = random.Random(seed)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 20)
        return OfflineOptimizer(
            workload.partition, frozenset(), workload.cost, transitions
        ).run(workload.statements)

    def test_period_layout(self):
        schedule = self._schedule()
        events = schedule.sustained_events(period=5, good=True)
        assert [e.position for e in events] == [4, 9, 14, 19]

    def test_good_votes_match_schedule(self):
        schedule = self._schedule()
        for event in schedule.sustained_events(period=5, good=True):
            config = schedule.schedule[event.position] & schedule.held_anywhere()
            assert event.f_plus == config
            assert event.f_minus == schedule.held_anywhere() - config

    def test_bad_is_inverse_of_good(self):
        schedule = self._schedule()
        good = schedule.sustained_events(period=5, good=True)
        bad = schedule.sustained_events(period=5, good=False)
        for g, b in zip(good, bad):
            assert g.position == b.position
            assert g.f_plus == b.f_minus
            assert g.f_minus == b.f_plus

    def test_votes_restricted_to_scheduled_indices(self):
        schedule = self._schedule()
        universe = schedule.held_anywhere()
        for event in schedule.sustained_events(period=7, good=False):
            assert event.f_plus <= universe
            assert event.f_minus <= universe

    def test_invalid_period(self):
        schedule = self._schedule()
        with pytest.raises(ValueError):
            schedule.sustained_events(period=0)
