"""Tests for the offline optimum (OPT) and its schedule extraction."""

from __future__ import annotations

import random

import pytest

from repro.core.opt import FeedbackEvent, OfflineOptimizer, brute_force_opt
from repro.core.wfa import WFA, TransitionCosts
from repro.core.driver import run_online

from synth import make_indices, make_synthetic_instance


class TestFeedbackEvent:
    def test_rejects_overlapping_votes(self):
        a, b = make_indices(2)
        with pytest.raises(ValueError):
            FeedbackEvent(0, frozenset({a}), frozenset({a, b}))

    def test_inversion(self):
        a, b = make_indices(2)
        event = FeedbackEvent(3, frozenset({a}), frozenset({b}))
        flipped = event.inverted()
        assert flipped.position == 3
        assert flipped.f_plus == frozenset({b})
        assert flipped.f_minus == frozenset({a})


class TestOfflineOptimizer:
    def test_matches_exhaustive_search_on_tiny_instance(self):
        """DP result equals brute-force enumeration over all schedules."""
        rng = random.Random(21)
        workload, transitions = make_synthetic_instance(rng, [2], 4)
        indices = workload.indices
        sched = brute_force_opt(
            workload.statements, set(indices), frozenset(), workload.cost, transitions
        )

        def subsets():
            for mask in range(4):
                yield frozenset(
                    ix for i, ix in enumerate(indices) if mask & (1 << i)
                )

        best = float("inf")
        all_subsets = list(subsets())

        def explore(step, previous, acc):
            nonlocal best
            if acc >= best:
                return
            if step == len(workload.statements):
                best = min(best, acc)
                return
            statement = workload.statements[step]
            for config in all_subsets:
                explore(
                    step + 1,
                    config,
                    acc
                    + transitions.delta(previous, config)
                    + workload.cost(statement, config),
                )

        explore(0, frozenset(), 0.0)
        assert sched.total_work == pytest.approx(best, rel=1e-9)
        # With a single part the decomposed bound is exact.
        assert sched.lower_bound == pytest.approx(best, rel=1e-9)

    def test_schedule_achieves_reported_total(self):
        rng = random.Random(22)
        workload, transitions = make_synthetic_instance(rng, [2, 1], 8)
        sched = OfflineOptimizer(
            workload.partition, frozenset(), workload.cost, transitions
        ).run(workload.statements)
        total = 0.0
        previous = frozenset()
        for statement, config in zip(workload.statements, sched.schedule):
            total += transitions.delta(previous, config)
            total += workload.cost(statement, config)
            previous = config
        assert total == pytest.approx(sched.total_work, rel=1e-9)

    def test_series_monotone(self):
        rng = random.Random(23)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 10)
        sched = OfflineOptimizer(
            workload.partition, frozenset(), workload.cost, transitions
        ).run(workload.statements)
        series = sched.total_work_series
        assert all(series[i] <= series[i + 1] + 1e-9 for i in range(len(series) - 1))

    def test_prefix_optimum_never_exceeds_full_schedule_value(self):
        rng = random.Random(24)
        workload, transitions = make_synthetic_instance(rng, [3], 10)
        checkpoints = (2, 5, 8, 10)
        sched = OfflineOptimizer(
            workload.partition, frozenset(), workload.cost, transitions
        ).run(workload.statements, checkpoints=checkpoints)
        for n in checkpoints:
            assert sched.prefix_total_work[n] <= sched.total_work_series[n - 1] + 1e-9

    def test_opt_not_worse_than_wfa(self):
        """On a stable partition, OPT ≤ the online WFA⁺'s total work."""
        for seed in range(6):
            rng = random.Random(seed)
            workload, transitions = make_synthetic_instance(rng, [2, 2], 12)
            sched = OfflineOptimizer(
                workload.partition, frozenset(), workload.cost, transitions
            ).run(workload.statements)
            from repro.core.wfa_plus import WFAPlus
            plus = WFAPlus(
                workload.partition, frozenset(), workload.cost, transitions
            )
            result = run_online(
                plus, workload.statements, workload.cost, transitions
            )
            assert sched.lower_bound <= result.total_work + 1e-6

    def test_events_reconstruct_schedule(self):
        rng = random.Random(25)
        workload, transitions = make_synthetic_instance(rng, [2, 1], 10)
        sched = OfflineOptimizer(
            workload.partition, frozenset(), workload.cost, transitions
        ).run(workload.statements)
        config = set(sched.initial_config)
        events = {e.position: e for e in sched.events()}
        for position, expected in enumerate(sched.schedule):
            event = events.get(position - 1)
            if event is not None:
                config |= set(event.f_plus)
                config -= set(event.f_minus)
            assert frozenset(config) == expected

    def test_bad_events_mirror_good(self):
        rng = random.Random(26)
        workload, transitions = make_synthetic_instance(rng, [2], 10)
        sched = OfflineOptimizer(
            workload.partition, frozenset(), workload.cost, transitions
        ).run(workload.statements)
        for good, bad in zip(sched.events(), sched.bad_events()):
            assert good.f_plus == bad.f_minus
            assert good.f_minus == bad.f_plus

    def test_empty_candidates(self):
        rng = random.Random(27)
        workload, transitions = make_synthetic_instance(rng, [1], 5)
        sched = brute_force_opt(
            workload.statements, frozenset(), frozenset(), workload.cost, transitions
        )
        expected = sum(
            workload.cost(s, frozenset()) for s in workload.statements
        )
        assert sched.total_work == pytest.approx(expected)
        assert all(config == frozenset() for config in sched.schedule)
