"""Tests for choosePartition and partition losses."""

from __future__ import annotations

import random

import pytest

from repro.core.partitioning import (
    MAX_PART_SIZE,
    choose_partition,
    pairwise_loss,
    partition_loss,
    state_count,
)

from synth import make_indices


def doi_from(matrix):
    def lookup(a, b):
        key = (a, b) if a <= b else (b, a)
        return matrix.get(key, 0.0)
    return lookup


class TestLosses:
    def test_state_count(self):
        a, b, c = make_indices(3)
        assert state_count([{a, b}, {c}]) == 4 + 2

    def test_pairwise_loss(self):
        a, b, c = make_indices(3)
        doi = doi_from({(a, c): 2.0, (b, c): 3.0})
        assert pairwise_loss({a, b}, {c}, doi) == pytest.approx(5.0)

    def test_partition_loss_counts_cross_part_only(self):
        a, b, c = make_indices(3)
        doi = doi_from({(a, b): 7.0, (a, c): 2.0})
        # a,b in the same part: their interaction is captured, not lost.
        assert partition_loss([{a, b}, {c}], doi) == pytest.approx(2.0)
        assert partition_loss([{a, b, c}], doi) == 0.0


class TestChoosePartition:
    def test_empty_candidates(self):
        assert choose_partition(
            frozenset(), 100, [], doi_from({}), random.Random(0)
        ) == []

    def test_no_interactions_yields_singletons(self):
        indices = make_indices(5)
        parts = choose_partition(
            frozenset(indices), 100, [], doi_from({}), random.Random(0)
        )
        assert sorted(map(sorted, parts)) == [[ix] for ix in indices]

    def test_strong_pair_merged(self):
        a, b, c = make_indices(3)
        doi = doi_from({(a, b): 10.0})
        parts = choose_partition(
            frozenset({a, b, c}), 100, [], doi, random.Random(0)
        )
        by_index = {ix: part for part in parts for ix in part}
        assert by_index[a] == by_index[b]
        assert c not in by_index[a]

    def test_partition_covers_exactly_candidates(self):
        indices = make_indices(6)
        doi = doi_from({(indices[0], indices[3]): 1.0, (indices[1], indices[4]): 2.0})
        parts = choose_partition(
            frozenset(indices), 64, [], doi, random.Random(1)
        )
        union = set().union(*parts)
        assert union == set(indices)
        assert sum(len(p) for p in parts) == len(indices)  # disjoint

    def test_state_budget_respected(self):
        indices = make_indices(8)
        doi_matrix = {}
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                doi_matrix[(a, b)] = 1.0
        parts = choose_partition(
            frozenset(indices), 40, [], doi_from(doi_matrix), random.Random(2)
        )
        assert state_count(parts) <= 40

    def test_infeasible_singletons_rejected(self):
        indices = make_indices(6)
        with pytest.raises(ValueError, match="stateCnt"):
            choose_partition(frozenset(indices), 8, [], doi_from({}), random.Random(0))

    def test_baseline_partition_considered(self):
        """With zero rand iterations, the existing partition is kept when
        feasible (Figure 7's baseline branch)."""
        a, b, c = make_indices(3)
        doi = doi_from({(a, b): 1.0})
        parts = choose_partition(
            frozenset({a, b, c}), 100, [frozenset({a, b}), frozenset({c})],
            doi, random.Random(0), rand_cnt=0,
        )
        assert sorted(map(sorted, parts)) == [[a, b], [c]]

    def test_new_index_gets_singleton_in_baseline(self):
        a, b, c = make_indices(3)
        parts = choose_partition(
            frozenset({a, b, c}), 100, [frozenset({a, b})],
            doi_from({}), random.Random(0), rand_cnt=0,
        )
        assert frozenset({c}) in parts

    def test_max_part_size_enforced(self):
        indices = make_indices(MAX_PART_SIZE + 2)
        doi_matrix = {}
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                doi_matrix[(a, b)] = 5.0
        parts = choose_partition(
            frozenset(indices), 1 << 20, [], doi_from(doi_matrix), random.Random(3)
        )
        assert all(len(p) <= MAX_PART_SIZE for p in parts)

    def test_lower_loss_preferred(self):
        """The chooser finds the zero-loss clustering when it fits."""
        a, b, c, d = make_indices(4)
        doi = doi_from({(a, b): 3.0, (c, d): 4.0})
        parts = choose_partition(
            frozenset({a, b, c, d}), 100, [], doi, random.Random(4), rand_cnt=50
        )
        assert partition_loss(parts, doi) == 0.0
