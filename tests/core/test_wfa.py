"""Unit tests for the Work Function Algorithm (Figure 3, Example 4.1)."""

from __future__ import annotations

import random

import pytest

from repro.core.wfa import WFA, TransitionCosts
from repro.db import Index

from synth import make_indices, make_synthetic_instance


@pytest.fixture()
def example_41():
    """The exact instance of Example 4.1 / Figure 2."""
    a = Index("db.t", ("c",))
    costs = {
        "q1": {frozenset(): 15.0, frozenset({a}): 5.0},
        "q2": {frozenset(): 20.0, frozenset({a}): 2.0},
        "q3": {frozenset(): 15.0, frozenset({a}): 20.0},
    }
    transitions = TransitionCosts(create={a: 20.0}, drop={a: 0.0})
    wfa = WFA([a], frozenset(), lambda q, X: costs[q][frozenset(X)], transitions)
    return a, wfa


class TestExample41:
    """Golden test: the worked example of the paper, value for value."""

    def test_initial_work_function(self, example_41):
        a, wfa = example_41
        assert wfa.work_value(frozenset()) == 0.0
        assert wfa.work_value({a}) == 20.0

    def test_q1_keeps_empty_recommendation(self, example_41):
        a, wfa = example_41
        rec = wfa.analyze_statement("q1")
        assert rec == frozenset()
        assert wfa.work_value(frozenset()) == 15.0
        assert wfa.work_value({a}) == 25.0

    def test_q2_switches_to_a_by_tiebreak(self, example_41):
        a, wfa = example_41
        wfa.analyze_statement("q1")
        rec = wfa.analyze_statement("q2")
        # Work function values tie at 27; the p[S] condition picks {a}.
        assert wfa.work_value(frozenset()) == 27.0
        assert wfa.work_value({a}) == 27.0
        assert rec == frozenset({a})

    def test_q3_keeps_a_despite_adverse_query(self, example_41):
        a, wfa = example_41
        for statement in ("q1", "q2"):
            wfa.analyze_statement(statement)
        rec = wfa.analyze_statement("q3")
        assert wfa.work_value(frozenset()) == 42.0
        assert wfa.work_value({a}) == 47.0
        scores = wfa.scores()
        assert scores[frozenset()] == 62.0
        assert scores[frozenset({a})] == 47.0
        # The benefit of dropping does not outweigh re-creation cost.
        assert rec == frozenset({a})


class TestWFABasics:
    def test_initial_recommendation_is_initial_config(self):
        indices = make_indices(3)
        wfa = WFA(
            indices,
            {indices[1]},
            lambda q, X: 1.0,
            TransitionCosts(default_create=5.0),
        )
        assert wfa.recommend() == frozenset({indices[1]})

    def test_state_count(self):
        indices = make_indices(4)
        wfa = WFA(indices, frozenset(), lambda q, X: 0.0, TransitionCosts())
        assert wfa.state_count == 16

    def test_rejects_oversized_part(self):
        with pytest.raises(ValueError, match="repartition"):
            WFA(make_indices(21), frozenset(), lambda q, X: 0.0, TransitionCosts())

    def test_work_function_snapshot_roundtrip(self):
        indices = make_indices(2)
        costs = {frozenset(): 9.0}
        wfa = WFA(
            indices,
            frozenset(),
            lambda q, X: 9.0 - 4.0 * len(X),
            TransitionCosts(default_create=3.0, default_drop=1.0),
        )
        wfa.analyze_statement("q")
        snapshot = wfa.work_function()
        clone = WFA(
            indices,
            frozenset(),
            lambda q, X: 9.0 - 4.0 * len(X),
            TransitionCosts(default_create=3.0, default_drop=1.0),
            work_values=snapshot,
            recommendation=wfa.recommend(),
        )
        assert clone.recommend() == wfa.recommend()
        for subset, value in snapshot.items():
            assert clone.work_value(subset) == value

    def test_incomplete_warm_start_snapshot_rejected(self):
        """Regression: a warm start missing configurations used to default
        them to w = 0.0 — an impossible "free" state that corrupts every
        recommendation after a repartition. It must raise instead."""
        indices = make_indices(2)
        partial = {
            frozenset(): 3.0,
            frozenset({indices[0]}): 5.0,
            # {indices[1]} and {indices[0], indices[1]} missing
        }
        with pytest.raises(ValueError, match="incomplete work-function"):
            WFA(
                indices,
                frozenset(),
                lambda q, X: 1.0,
                TransitionCosts(),
                work_values=partial,
            )

    def test_ambiguous_warm_start_snapshot_rejected(self):
        """Keys that alias after projection onto the part (foreign indices
        are ignored) must not silently overlay each other."""
        indices = make_indices(2)
        foreign = Index("other.t", ("x",))
        snapshot = {
            frozenset(): 3.0,
            frozenset({foreign}): 4.0,  # projects onto {} too
            frozenset({indices[0]}): 5.0,
            frozenset({indices[1]}): 6.0,
            frozenset(indices): 7.0,
        }
        with pytest.raises(ValueError, match="ambiguous work-function"):
            WFA(
                indices,
                frozenset(),
                lambda q, X: 1.0,
                TransitionCosts(),
                work_values=snapshot,
            )

    def test_strong_benefit_triggers_creation(self):
        indices = make_indices(1)
        a = indices[0]
        transitions = TransitionCosts(create={a: 10.0}, drop={a: 1.0})
        wfa = WFA(indices, frozenset(), lambda q, X: 0.0 if X else 20.0, transitions)
        rec = wfa.analyze_statement("q")
        assert rec == frozenset({a})

    def test_weak_benefit_does_not_trigger_creation(self):
        indices = make_indices(1)
        a = indices[0]
        transitions = TransitionCosts(create={a: 100.0}, drop={a: 1.0})
        wfa = WFA(indices, frozenset(), lambda q, X: 19.0 if X else 20.0, transitions)
        rec = wfa.analyze_statement("q")
        assert rec == frozenset()


class TestWorkFunctionInvariants:
    """Properties from the competitive analysis (Appendix A)."""

    def test_work_function_monotone_in_statements(self):
        rng = random.Random(5)
        workload, transitions = make_synthetic_instance(rng, [3], 15)
        wfa = WFA(workload.indices, frozenset(), workload.cost, transitions)
        previous = wfa.work_function()
        for statement in workload.statements:
            wfa.analyze_statement(statement)
            current = wfa.work_function()
            # Lemma A.1: w_{i+1}(S) >= w_i(S) + min-cost >= w_i(S)
            # (costs are positive by construction here).
            for subset, value in current.items():
                assert value >= previous[subset] - 1e-9
            previous = current

    def test_work_function_spread_bounded_by_transition(self):
        """w(S) - w(T) <= δ(T, S): otherwise the path via T beats w(S)."""
        rng = random.Random(6)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 12)
        wfa_parts = [
            WFA(sorted(part), frozenset(), workload.cost, transitions)
            for part in workload.partition
        ]
        for statement in workload.statements:
            for wfa in wfa_parts:
                wfa.analyze_statement(statement)
        for wfa in wfa_parts:
            values = wfa.work_function()
            for s, ws in values.items():
                for t, wt in values.items():
                    assert ws <= wt + transitions.delta(t, s) + 1e-6

    def test_matches_naive_recurrence(self):
        """The O(2^k k) relaxation equals the O(4^k) definition exactly."""
        rng = random.Random(7)
        workload, transitions = make_synthetic_instance(rng, [3], 10)
        indices = workload.indices
        wfa = WFA(indices, frozenset(), workload.cost, transitions)

        def subsets():
            for mask in range(1 << len(indices)):
                yield frozenset(
                    ix for i, ix in enumerate(indices) if mask & (1 << i)
                )

        naive = {s: transitions.delta(frozenset(), s) for s in subsets()}
        for statement in workload.statements:
            wfa.analyze_statement(statement)
            naive = {
                s: min(
                    naive[x] + workload.cost(statement, x) + transitions.delta(x, s)
                    for x in naive
                )
                for s in naive
            }
            for subset, value in naive.items():
                assert wfa.work_value(subset) == pytest.approx(value, abs=1e-9)
