"""Property tests: the numpy and pure-Python work-function kernels are
bit-identical.

The array kernel (:mod:`repro.core.wfa_kernel`) ships two backends — the
vectorized numpy implementation and the retained ``array``-module twin —
that are *by construction* the same float program: every addition,
comparison, and minimum replays the scalar loop's operations in the same
order on IEEE-754 doubles. These tests enforce the consequence: over
random parts (k ≤ 6), random workloads, and random DBA votes, both
backends must produce **exactly equal** (``==``, no tolerance) ``w``
vectors, recommendations, and feedback adjustments — including under the
reversed-δ asymmetry of footnote 4 (create ≫ drop, drop ≫ create, and
zero-cost directions), which is where a transposed prefix-sum gather
would betray itself.

Numpy cases skip automatically when numpy is not importable (the
pure-Python twin is then the only backend and trivially agrees with
itself); the dual-mode CI lane covers that interpreter too.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import wfa_kernel
from repro.core.wfa import WFA, TransitionCosts
from repro.db import Index
from synth import make_indices, make_synthetic_instance

requires_numpy = pytest.mark.skipif(
    "numpy" not in wfa_kernel.available_backends(),
    reason="numpy backend not importable in this interpreter",
)


def _twin_wfas(part, initial, cost_fn, transitions):
    """The same WFA instance once per backend."""
    with wfa_kernel.force_backend("numpy"):
        np_wfa = WFA(part, initial, cost_fn, transitions)
    with wfa_kernel.force_backend("python"):
        py_wfa = WFA(part, initial, cost_fn, transitions)
    assert np_wfa.kernel_backend == "numpy"
    assert py_wfa.kernel_backend == "python"
    return np_wfa, py_wfa


def _assert_identical(np_wfa: WFA, py_wfa: WFA, step: object) -> None:
    # Bit-identical, not approximately equal: == on every w value.
    assert np_wfa._kernel.export_w() == py_wfa._kernel.export_w(), f"w diverged at {step}"
    assert np_wfa.recommend() == py_wfa.recommend(), f"rec diverged at {step}"


@requires_numpy
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    part_size=st.integers(1, 6),
    n_statements=st.integers(1, 12),
    initial_bits=st.integers(0, 63),
)
def test_backends_identical_on_random_workloads(
    seed, part_size, n_statements, initial_bits
):
    rng = random.Random(seed)
    workload, transitions = make_synthetic_instance(
        rng, [part_size], n_statements
    )
    part = sorted(workload.partition[0])
    initial = frozenset(
        ix for i, ix in enumerate(part) if initial_bits & (1 << i)
    )
    np_wfa, py_wfa = _twin_wfas(part, initial, workload.cost, transitions)
    _assert_identical(np_wfa, py_wfa, "initialization")
    for statement in workload.statements:
        np_wfa.analyze_statement(statement)
        py_wfa.analyze_statement(statement)
        _assert_identical(np_wfa, py_wfa, statement)


@requires_numpy
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    part_size=st.integers(1, 6),
    n_statements=st.integers(2, 10),
)
def test_backends_identical_under_feedback(seed, part_size, n_statements):
    """Random DBA votes interleaved with statements: the Figure-4 raise
    (the masked vector update) must adjust both backends identically."""
    rng = random.Random(seed)
    workload, transitions = make_synthetic_instance(
        rng, [part_size], n_statements
    )
    part = sorted(workload.partition[0])
    np_wfa, py_wfa = _twin_wfas(part, frozenset(), workload.cost, transitions)
    vote_rng = random.Random(seed + 1)
    for statement in workload.statements:
        np_wfa.analyze_statement(statement)
        py_wfa.analyze_statement(statement)
        if vote_rng.random() < 0.5:
            voted = vote_rng.sample(part, vote_rng.randint(0, len(part)))
            split = vote_rng.randint(0, len(voted))
            f_plus = frozenset(voted[:split])
            f_minus = frozenset(voted[split:])
            np_wfa.apply_feedback(f_plus, f_minus)
            py_wfa.apply_feedback(f_plus, f_minus)
        _assert_identical(np_wfa, py_wfa, statement)


@requires_numpy
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    part_size=st.integers(1, 5),
    direction=st.sampled_from(["create_heavy", "drop_heavy", "free_drop", "free_create"]),
)
def test_backends_identical_under_delta_asymmetry(seed, part_size, direction):
    """The reversed-δ cases of footnote 4: strongly asymmetric (and
    one-sided zero) transition costs must not expose a swapped
    create/drop prefix-sum gather in either the relaxation, the
    recommendation scan, or the warm-start initialization."""
    rng = random.Random(seed)
    indices = make_indices(part_size)
    create = {}
    drop = {}
    for ix in indices:
        if direction == "create_heavy":
            create[ix], drop[ix] = float(rng.randint(50, 200)), float(rng.randint(0, 3))
        elif direction == "drop_heavy":
            create[ix], drop[ix] = float(rng.randint(0, 3)), float(rng.randint(50, 200))
        elif direction == "free_drop":
            create[ix], drop[ix] = float(rng.randint(1, 100)), 0.0
        else:  # free_create
            create[ix], drop[ix] = 0.0, float(rng.randint(1, 100))
    transitions = TransitionCosts(create=create, drop=drop)

    costs = {}

    def cost_fn(statement, config):
        key = (statement, frozenset(config))
        if key not in costs:
            costs[key] = float(rng.randint(0, 60))
        return costs[key]

    initial = frozenset(rng.sample(indices, rng.randint(0, part_size)))
    np_wfa, py_wfa = _twin_wfas(indices, initial, cost_fn, transitions)
    _assert_identical(np_wfa, py_wfa, "initialization")
    for step in range(8):
        np_wfa.analyze_statement(step)
        py_wfa.analyze_statement(step)
        _assert_identical(np_wfa, py_wfa, step)


@requires_numpy
def test_checkpoint_roundtrips_across_backends():
    """A state exported on one backend loads on the other unchanged —
    service checkpoints stay version- and backend-compatible."""
    rng = random.Random(11)
    workload, transitions = make_synthetic_instance(rng, [4], 6)
    part = sorted(workload.partition[0])
    with wfa_kernel.force_backend("numpy"):
        source = WFA(part, frozenset(part[:1]), workload.cost, transitions)
    for statement in workload.statements:
        source.analyze_statement(statement)
    state = source.export_state()
    # JSON-shaped: plain floats/ints only.
    assert all(isinstance(v, float) for v in state["w"])

    with wfa_kernel.force_backend("python"):
        twin = WFA(part, frozenset(), workload.cost, transitions)
    twin.load_state(state)
    assert twin._kernel.export_w() == source._kernel.export_w()
    assert twin.recommend() == source.recommend()
    assert twin.export_state() == state


@requires_numpy
def test_forced_backend_restores_default():
    before = wfa_kernel.default_backend()
    with wfa_kernel.force_backend("python"):
        assert wfa_kernel.default_backend() == "python"
    assert wfa_kernel.default_backend() == before
    with pytest.raises(ValueError, match="not available"):
        with wfa_kernel.force_backend("fortran"):
            pass  # pragma: no cover


def test_small_parts_prefer_python_backend():
    """Auto-selection is size-aware: tiny parts run the loop twin (it is
    measurably faster below the vectorization crossover)."""
    indices = make_indices(2)
    wfa = WFA(indices, frozenset(), lambda q, X: 1.0, TransitionCosts())
    assert wfa.kernel_backend == "python"
