"""WFA⁺ tests, including the Theorem 4.2 equivalence property."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wfa import WFA, TransitionCosts
from repro.core.wfa_plus import WFAPlus, validate_partition
from repro.db import Index

from synth import make_indices, make_synthetic_instance


class TestValidatePartition:
    def test_rejects_overlap(self):
        a, b = make_indices(2)
        with pytest.raises(ValueError, match="overlap"):
            validate_partition([{a, b}, {b}])

    def test_rejects_empty_part(self):
        with pytest.raises(ValueError, match="empty"):
            validate_partition([set()])

    def test_normalizes(self):
        a, b = make_indices(2)
        parts = validate_partition([{a}, {b}])
        assert parts == (frozenset({a}), frozenset({b}))


class TestWFAPlusBasics:
    def test_state_count_is_sum_of_parts(self):
        indices = make_indices(6)
        partition = [set(indices[:3]), set(indices[3:5]), {indices[5]}]
        plus = WFAPlus(partition, frozenset(), lambda q, X: 0.0, TransitionCosts())
        assert plus.state_count == 8 + 4 + 2
        assert plus.max_part_size == 3

    def test_rejects_initial_outside_candidates(self):
        indices = make_indices(3)
        with pytest.raises(ValueError, match="non-candidate"):
            WFAPlus(
                [set(indices[:2])],
                {indices[2]},
                lambda q, X: 0.0,
                TransitionCosts(),
            )

    def test_recommendation_unions_parts(self):
        rng = random.Random(3)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 8)
        plus = WFAPlus(workload.partition, frozenset(), workload.cost, transitions)
        for statement in workload.statements:
            plus.analyze_statement(statement)
        per_part = [instance.recommend() for instance in plus.instances]
        assert plus.recommend() == frozenset().union(*per_part)


class TestTheorem42Equivalence:
    """WFA⁺ on a stable partition ≡ monolithic WFA on the union (Thm 4.2)."""

    def _check_instance(self, seed: int, part_sizes, n_statements: int) -> None:
        rng = random.Random(seed)
        workload, transitions = make_synthetic_instance(
            rng, part_sizes, n_statements
        )
        joint = WFA(workload.indices, frozenset(), workload.cost, transitions)
        plus = WFAPlus(workload.partition, frozenset(), workload.cost, transitions)
        for n, statement in enumerate(workload.statements):
            joint_rec = joint.analyze_statement(statement)
            plus_rec = plus.analyze_statement(statement)
            assert joint_rec == plus_rec, (
                f"seed={seed} statement={n}: WFA={sorted(i.name for i in joint_rec)} "
                f"WFA+={sorted(i.name for i in plus_rec)}"
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_two_parts(self, seed):
        self._check_instance(seed, [2, 2], 12)

    @pytest.mark.parametrize("seed", range(8, 12))
    def test_uneven_parts(self, seed):
        self._check_instance(seed, [3, 1, 2], 10)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        sizes=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=3),
        n=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, seed, sizes, n):
        self._check_instance(seed, sizes, n)


class TestLemmaB1:
    """w_n(S) = Σ_k w^k_n(S ∩ Ck) − (K−1)·Σ cost(q_i, ∅) (Lemma B.1)."""

    def test_work_function_decomposition(self):
        rng = random.Random(11)
        workload, transitions = make_synthetic_instance(rng, [2, 2], 9)
        joint = WFA(workload.indices, frozenset(), workload.cost, transitions)
        plus = WFAPlus(workload.partition, frozenset(), workload.cost, transitions)
        empty_total = 0.0
        for statement in workload.statements:
            joint.analyze_statement(statement)
            plus.analyze_statement(statement)
            empty_total += workload.cost(statement, frozenset())
            k = len(workload.partition)
            for subset, value in joint.work_function().items():
                decomposed = sum(
                    instance.work_value(subset & part)
                    for instance, part in zip(plus.instances, workload.partition)
                )
                assert value == pytest.approx(
                    decomposed - (k - 1) * empty_total, rel=1e-9
                )
