"""Tests for WFIT: fixed/auto modes, repartitioning, candidate maintenance."""

from __future__ import annotations

import pytest

from repro.core.wfit import WFIT
from repro.db import Index, StatsTransitionCosts
from repro.query import select, update

SALES = "shop.sales"
CUSTOMERS = "shop.customers"


@pytest.fixture()
def env(toy_optimizer, toy_stats):
    return toy_optimizer, StatsTransitionCosts(toy_stats), toy_stats


def narrow(stats, table, column, fraction=0.02, offset=0.0):
    col = stats.column_stats(table, column)
    lo = col.min_value + col.domain_width * offset
    return lo, lo + col.domain_width * fraction


class TestFixedMode:
    def test_requires_initial_config_in_partition(self, env):
        optimizer, transitions, _ = env
        a = Index(SALES, ("amount",))
        b = Index(SALES, ("sale_date",))
        with pytest.raises(ValueError, match="outside fixed partition"):
            WFIT(
                optimizer, transitions,
                initial_config={b},
                fixed_partition=[{a}],
            )

    def test_fixed_mode_never_repartitions(self, env):
        optimizer, transitions, stats = env
        a = Index(SALES, ("amount",))
        tuner = WFIT(optimizer, transitions, fixed_partition=[{a}])
        lo, hi = narrow(stats, SALES, "amount")
        query = select(SALES).where_between("amount", lo, hi).build()
        for _ in range(5):
            tuner.analyze_statement(query)
        assert tuner.repartition_count == 0
        assert tuner.partition == (frozenset({a}),)

    def test_recommends_beneficial_index(self, env):
        optimizer, transitions, stats = env
        a = Index(SALES, ("amount",))
        tuner = WFIT(optimizer, transitions, fixed_partition=[{a}])
        lo, hi = narrow(stats, SALES, "amount")
        query = select(SALES).where_between("amount", lo, hi).build()
        for _ in range(60):
            tuner.analyze_statement(query)
        assert a in tuner.recommend()


class TestAutoMode:
    def test_universe_grows_with_statements(self, env):
        optimizer, transitions, stats = env
        tuner = WFIT(optimizer, transitions, idx_cnt=10, state_cnt=64)
        lo, hi = narrow(stats, SALES, "amount")
        tuner.analyze_statement(
            select(SALES).where_between("amount", lo, hi).build()
        )
        assert Index(SALES, ("amount",)) in tuner.universe
        lo2, hi2 = narrow(stats, CUSTOMERS, "lifetime_value")
        tuner.analyze_statement(
            select(CUSTOMERS).where_between("lifetime_value", lo2, hi2).build()
        )
        assert any(ix.table == CUSTOMERS for ix in tuner.universe)

    def test_idx_cnt_bound_respected(self, env):
        optimizer, transitions, stats = env
        tuner = WFIT(optimizer, transitions, idx_cnt=3, state_cnt=64)
        for column, table in (
            ("amount", SALES), ("sale_date", SALES), ("product_id", SALES),
            ("lifetime_value", CUSTOMERS), ("signup_date", CUSTOMERS),
        ):
            lo, hi = narrow(stats, table, column)
            tuner.analyze_statement(
                select(table).where_between(column, lo, hi).build()
            )
        assert len(tuner.candidates) <= 3

    def test_state_cnt_bound_respected(self, env):
        optimizer, transitions, stats = env
        tuner = WFIT(optimizer, transitions, idx_cnt=12, state_cnt=40)
        lo, hi = narrow(stats, SALES, "amount")
        lo2, hi2 = narrow(stats, SALES, "sale_date")
        query = (
            select(SALES)
            .where_between("amount", lo, hi)
            .where_between("sale_date", lo2, hi2)
            .build()
        )
        for _ in range(10):
            tuner.analyze_statement(query)
        assert tuner.tracked_states <= 40

    def test_repartition_preserves_recommendation(self, env):
        """Repartitioning must never silently change the recommendation."""
        optimizer, transitions, stats = env
        tuner = WFIT(optimizer, transitions, idx_cnt=10, state_cnt=128)
        lo, hi = narrow(stats, SALES, "amount")
        query = select(SALES).where_between("amount", lo, hi).build()
        for _ in range(40):
            before = tuner.recommend()
            parts_before = tuner.partition
            tuner.analyze_statement(query)
            if tuner.partition != parts_before:
                # the repartition itself kept currRec intact; any change
                # came from the subsequent WFA analysis
                assert tuner.recommend() >= before - tuner.candidates

    def test_repartition_warm_start_covers_every_configuration(self, env):
        """Regression for the warm-start default-zero bug: WFA now rejects
        incomplete work-function snapshots, so every repartition must hand
        each new part a *complete* snapshot — and the warm-started values
        must satisfy the work-function spread bound (no configuration may
        look reachable for free the way a silently defaulted 0.0 did)."""
        optimizer, transitions, stats = env
        tuner = WFIT(optimizer, transitions, idx_cnt=10, state_cnt=128)
        lo, hi = narrow(stats, SALES, "amount")
        lo2, hi2 = narrow(stats, SALES, "sale_date")
        queries = [
            select(SALES).where_between("amount", lo, hi).build(),
            select(SALES).where_between("sale_date", lo2, hi2).build(),
            select(CUSTOMERS).where_between(
                "region", *narrow(stats, CUSTOMERS, "region", 0.1)
            ).build(),
        ]
        for step in range(30):
            # Raises ValueError inside _repartition if any snapshot came
            # out incomplete.
            tuner.analyze_statement(queries[step % len(queries)])
        assert tuner.repartition_count > 0
        for instance in tuner._instances:
            values = instance.work_function()
            for s, ws in values.items():
                for t, wt in values.items():
                    assert ws <= wt + transitions.delta(t, s) + 1e-6

    def test_assume_independence_singletons(self, env):
        optimizer, transitions, stats = env
        tuner = WFIT(
            optimizer, transitions, idx_cnt=8, state_cnt=64,
            assume_independence=True,
        )
        lo, hi = narrow(stats, SALES, "amount")
        lo2, hi2 = narrow(stats, SALES, "sale_date")
        query = (
            select(SALES)
            .where_between("amount", lo, hi)
            .where_between("sale_date", lo2, hi2)
            .build()
        )
        for _ in range(5):
            tuner.analyze_statement(query)
        assert all(len(part) == 1 for part in tuner.partition)

    def test_interacting_indices_grouped(self, env):
        optimizer, transitions, stats = env
        tuner = WFIT(
            optimizer, transitions, idx_cnt=8, state_cnt=128,
            partition_refresh_period=1,
        )
        lo, hi = narrow(stats, SALES, "amount", 0.05)
        lo2, hi2 = narrow(stats, SALES, "sale_date", 0.05)
        query = (
            select(SALES)
            .where_between("amount", lo, hi)
            .where_between("sale_date", lo2, hi2)
            .count_star()
            .build()
        )
        for _ in range(5):
            tuner.analyze_statement(query)
        a = Index(SALES, ("amount",))
        b = Index(SALES, ("sale_date",))
        by_index = {ix: part for part in tuner.partition for ix in part}
        if a in by_index and b in by_index:
            assert by_index[a] == by_index[b], (
                "intersecting indices interact and must share a part"
            )

    def test_materialized_indices_survive_candidate_churn(self, env):
        optimizer, transitions, stats = env
        tuner = WFIT(optimizer, transitions, idx_cnt=4, state_cnt=64)
        lo, hi = narrow(stats, SALES, "amount")
        query = select(SALES).where_between("amount", lo, hi).build()
        for _ in range(60):
            tuner.analyze_statement(query)
        recommended = tuner.recommend()
        assert recommended, "expected a materialized index by now"
        # Flood with statements on other columns; the materialized index
        # must stay monitored (M ⊆ D, Figure 6 line 4).
        for offset in range(8):
            lo2, hi2 = narrow(stats, CUSTOMERS, "lifetime_value", 0.02, offset * 0.1)
            tuner.analyze_statement(
                select(CUSTOMERS).where_between("lifetime_value", lo2, hi2).build()
            )
        assert recommended <= tuner.candidates

    def test_feedback_on_unknown_index_lands_in_universe(self, env):
        optimizer, transitions, _ = env
        tuner = WFIT(optimizer, transitions, idx_cnt=8, state_cnt=64)
        stranger = Index(SALES, ("product_id",))
        tuner.feedback({stranger}, frozenset())
        assert stranger in tuner.universe

    def test_invalid_refresh_period(self, env):
        optimizer, transitions, _ = env
        with pytest.raises(ValueError):
            WFIT(optimizer, transitions, partition_refresh_period=0)


class TestWfitFeedback:
    def test_consistency_and_recovery(self, env):
        optimizer, transitions, stats = env
        a = Index(SALES, ("amount",))
        tuner = WFIT(optimizer, transitions, fixed_partition=[{a}])
        lo, hi = narrow(stats, SALES, "amount")
        query = select(SALES).where_between("amount", lo, hi).build()
        for _ in range(60):
            tuner.analyze_statement(query)
        assert a in tuner.recommend()
        # Negative vote is honored immediately...
        assert a not in tuner.feedback(frozenset(), {a})
        # ...but the workload eventually overrides it.
        for _ in range(120):
            tuner.analyze_statement(query)
            if a in tuner.recommend():
                break
        assert a in tuner.recommend()

    def test_notify_materialized_is_feedback(self, env):
        optimizer, transitions, _ = env
        a = Index(SALES, ("amount",))
        b = Index(SALES, ("sale_date",))
        tuner = WFIT(optimizer, transitions, fixed_partition=[{a}, {b}])
        rec = tuner.notify_materialized(created={a}, dropped={b})
        assert a in rec and b not in rec
