"""Property tests: partition-parallel WFIT is bit-identical to serial.

The §4 stability condition makes per-part WFA state disjoint, so fanning
the per-part kernel relaxations out to a worker pool must change *nothing*
observable: over random multi-part traces (with random DBA votes
interleaved), a ``workers > 1`` tuner and the serial oracle must produce
**exactly equal** (``==``, no tolerance) recommendations, per-part ``w``
vectors, and min-work totals — on both kernel backends. These tests also
pin the contracts the fan-out relies on: the ``prepare_statement`` /
``relax`` split composes to ``analyze_statement``, kernel buffers are
per-instance-owned (never aliased), and ``REPRO_WORKERS`` resolves as
documented.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import wfa_kernel
from repro.core.wfa import WFA, TransitionCosts
from repro.core.wfit import WFIT, resolve_workers
from synth import make_indices, make_synthetic_instance

BACKENDS = wfa_kernel.available_backends()


def _twin_tuners(workload, transitions, backend, workers):
    """The same fixed-partition WFIT once serial, once at ``workers``."""
    with wfa_kernel.force_backend(backend):
        serial = WFIT(
            workload, transitions,
            fixed_partition=workload.partition, workers=1,
        )
        parallel = WFIT(
            workload, transitions,
            fixed_partition=workload.partition, workers=workers,
        )
    return serial, parallel


def _assert_identical(serial: WFIT, parallel: WFIT, step: object) -> None:
    assert serial.recommend() == parallel.recommend(), f"rec diverged at {step}"
    for k, (a, b) in enumerate(zip(serial._instances, parallel._instances)):
        assert a._kernel.export_w() == b._kernel.export_w(), (
            f"part {k} w diverged at {step}"
        )
        assert a.min_work() == b.min_work(), f"part {k} minWork at {step}"


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    sizes=st.lists(st.integers(1, 4), min_size=2, max_size=5),
    n_statements=st.integers(1, 10),
    workers=st.integers(2, 6),
    backend=st.sampled_from(BACKENDS),
)
def test_parallel_wfit_identical_on_random_traces(
    seed, sizes, n_statements, workers, backend
):
    rng = random.Random(seed)
    workload, transitions = make_synthetic_instance(rng, sizes, n_statements)
    serial, parallel = _twin_tuners(workload, transitions, backend, workers)
    try:
        _assert_identical(serial, parallel, "initialization")
        for statement in workload.statements:
            serial.analyze_statement(statement)
            parallel.analyze_statement(statement)
            _assert_identical(serial, parallel, statement)
    finally:
        parallel.close()


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    sizes=st.lists(st.integers(1, 4), min_size=2, max_size=4),
    n_statements=st.integers(2, 8),
    backend=st.sampled_from(BACKENDS),
)
def test_parallel_wfit_identical_under_feedback(
    seed, sizes, n_statements, backend
):
    """Random votes between statements: feedback runs serially, but it
    reads the state the fan-out wrote — any cross-part leakage shows."""
    rng = random.Random(seed)
    workload, transitions = make_synthetic_instance(rng, sizes, n_statements)
    serial, parallel = _twin_tuners(workload, transitions, backend, 4)
    indices = workload.indices
    vote_rng = random.Random(seed + 1)
    try:
        for statement in workload.statements:
            serial.analyze_statement(statement)
            parallel.analyze_statement(statement)
            if vote_rng.random() < 0.5:
                voted = vote_rng.sample(indices, vote_rng.randint(0, len(indices)))
                split = vote_rng.randint(0, len(voted))
                f_plus = frozenset(voted[:split])
                f_minus = frozenset(voted[split:])
                serial.feedback(f_plus, f_minus)
                parallel.feedback(f_plus, f_minus)
            _assert_identical(serial, parallel, statement)
    finally:
        parallel.close()


def test_prepare_relax_composes_to_analyze():
    """The split the fan-out uses is exactly analyze_statement."""
    rng = random.Random(3)
    workload, transitions = make_synthetic_instance(rng, [3], 6)
    part = sorted(workload.partition[0])
    whole = WFA(part, frozenset(), workload.cost, transitions)
    split = WFA(part, frozenset(), workload.cost, transitions)
    for statement in workload.statements:
        rec_whole = whole.analyze_statement(statement)
        split.prepare_statement(statement)
        rec_split = split.relax()
        assert rec_whole == rec_split
        assert whole._kernel.export_w() == split._kernel.export_w()
        assert whole.statements_analyzed == split.statements_analyzed


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_buffers_are_per_instance(backend):
    """The threading contract of wfa_kernel: no shared scratch between
    instances, so concurrent relaxations of different parts are safe."""
    indices = make_indices(4)
    transitions = TransitionCosts()
    with wfa_kernel.force_backend(backend):
        a = WFA(indices, frozenset(), lambda q, X: 1.0, transitions)
        b = WFA(indices, frozenset(), lambda q, X: 1.0, transitions)
    ka, kb = a._kernel, b._kernel
    assert ka is not kb
    assert ka.costs is not kb.costs
    if backend == "numpy":
        import numpy as np

        for name in ("_w", "costs", "_base", "_i1", "_i2", "_f1", "_f2", "_f3"):
            assert not np.shares_memory(getattr(ka, name), getattr(kb, name)), name
    else:
        assert ka._w is not kb._w


def test_resolve_workers_env_and_validation(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers() == 1
    assert resolve_workers(5) == 5
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers() == 3
    assert resolve_workers(2) == 2  # explicit beats the environment
    monkeypatch.setenv("REPRO_WORKERS", "zero")
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        resolve_workers()
    with pytest.raises(ValueError, match=">= 1"):
        resolve_workers(0)


def test_wfit_reads_workers_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    rng = random.Random(1)
    workload, transitions = make_synthetic_instance(rng, [2, 2], 1)
    tuner = WFIT(workload, transitions, fixed_partition=workload.partition)
    try:
        assert tuner.workers == 4
        tuner.analyze_statement(workload.statements[0])
        assert tuner.parallel_stats()["parallel_sections"] == 1
    finally:
        tuner.close()


def test_parallel_stats_and_close_lifecycle():
    rng = random.Random(2)
    workload, transitions = make_synthetic_instance(rng, [2, 2, 2], 4)
    tuner = WFIT(
        workload, transitions, fixed_partition=workload.partition, workers=3
    )
    assert tuner.parallel_stats() == {
        "workers": 3,
        "parallel_sections": 0,
        "parallel_wall_seconds": 0.0,
        "parallel_busy_seconds": 0.0,
        "parallel_efficiency": 0.0,
    }
    for statement in workload.statements:
        tuner.analyze_statement(statement)
    stats = tuner.parallel_stats()
    assert stats["parallel_sections"] == len(workload.statements)
    assert stats["parallel_wall_seconds"] > 0.0
    assert stats["parallel_busy_seconds"] > 0.0
    tuner.close()
    tuner.close()  # idempotent
    # Usable after close: the pool is rebuilt on the next statement.
    tuner.analyze_statement(workload.statements[0])
    assert tuner.parallel_stats()["parallel_sections"] == (
        len(workload.statements) + 1
    )
    tuner.close()


def test_serial_tuner_never_builds_a_pool():
    rng = random.Random(4)
    workload, transitions = make_synthetic_instance(rng, [2, 2], 3)
    tuner = WFIT(
        workload, transitions, fixed_partition=workload.partition, workers=1
    )
    for statement in workload.statements:
        tuner.analyze_statement(statement)
    assert tuner._pool is None
    assert tuner.parallel_stats()["parallel_sections"] == 0
