"""Tests for the synthetic benchmark catalogs."""

from __future__ import annotations

import pytest

from repro.db import DATASET_NAMES, build_catalog, build_dataset, build_toy_catalog


class TestBuildDataset:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            build_dataset("mystery")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_dataset("tpch", scale=0)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_each_dataset_builds(self, name):
        database, table_stats = build_dataset(name, scale=0.01)
        assert database.name == name
        assert len(database.tables) == len(table_stats)
        for stats in table_stats:
            assert stats.row_count >= 10

    def test_scaling(self):
        _, small = build_dataset("tpch", scale=0.01)
        _, large = build_dataset("tpch", scale=0.1)
        small_rows = {s.table.qualified_name: s.row_count for s in small}
        for stats in large:
            assert stats.row_count >= small_rows[stats.table.qualified_name]

    def test_distinct_counts_bounded_by_rows(self):
        _, table_stats = build_dataset("tpce", scale=0.05)
        for stats in table_stats:
            for column in stats.table.columns:
                if stats.has_column_stats(column.name):
                    assert stats.column_stats(column.name).n_distinct <= max(
                        stats.row_count, 1
                    )


class TestBuildCatalog:
    def test_full_catalog(self):
        catalog, stats = build_catalog(scale=0.01)
        assert {db.name for db in catalog.databases} == set(DATASET_NAMES)
        for table in catalog.tables:
            assert stats.has_table_stats(table.qualified_name)

    def test_subset_of_datasets(self):
        catalog, _ = build_catalog(scale=0.01, datasets=("tpch", "nref"))
        assert {db.name for db in catalog.databases} == {"tpch", "nref"}

    def test_reference_tables_exist(self):
        catalog, stats = build_catalog(scale=0.01)
        for name in (
            "tpch.lineitem", "tpch.orders", "tpcc.order_line",
            "tpce.daily_market", "tpce.security", "nref.protein",
        ):
            assert catalog.has_table(name)
            assert stats.row_count(name) >= 10

    def test_lineitem_is_biggest_tpch_table(self):
        _, stats = build_catalog(scale=0.05, datasets=("tpch",))
        lineitem = stats.row_count("tpch.lineitem")
        for table in stats.catalog.database("tpch").tables:
            assert stats.row_count(table.qualified_name) <= lineitem


class TestToyCatalog:
    def test_structure(self):
        catalog, stats = build_toy_catalog(rows=5000)
        assert catalog.has_table("shop.sales")
        assert catalog.has_table("shop.customers")
        assert stats.row_count("shop.sales") == 5000
