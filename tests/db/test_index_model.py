"""Tests for the index value object and physical sizing."""

from __future__ import annotations

import pytest

from repro.db import Index, IndexSizer, build_toy_catalog
from repro.db.index import RID_WIDTH


class TestIndexObject:
    def test_validation(self):
        with pytest.raises(ValueError):
            Index("unqualified", ("a",))
        with pytest.raises(ValueError):
            Index("d.t", ())
        with pytest.raises(ValueError):
            Index("d.t", ("a", "a"))

    def test_hashable_and_ordered(self):
        a = Index("d.t", ("a",))
        b = Index("d.t", ("b",))
        ab = Index("d.t", ("a", "b"))
        assert a < b
        assert a < ab  # shorter tuple with same head sorts first
        assert len({a, b, ab, Index("d.t", ("a",))}) == 3

    def test_name(self):
        index = Index("tpch.lineitem", ("l_shipdate", "l_partkey"))
        assert index.name == "ix_lineitem_l_shipdate_l_partkey"

    def test_covers(self):
        index = Index("d.t", ("a", "b", "c"))
        assert index.covers(("a", "c"))
        assert index.covers(())
        assert not index.covers(("a", "z"))

    def test_leading_column(self):
        assert Index("d.t", ("x", "y")).leading_column == "x"

    def test_str(self):
        assert str(Index("d.t", ("a", "b"))) == "d.t(a, b)"


class TestIndexSizer:
    @pytest.fixture()
    def sizer(self):
        _, stats = build_toy_catalog(rows=200_000)
        return IndexSizer(stats), stats

    def test_entry_width(self, sizer):
        sizer, stats = sizer
        index = Index("shop.sales", ("sale_id",))
        table = stats.catalog.table("shop.sales")
        assert sizer.entry_width(index) == table.column("sale_id").byte_width + RID_WIDTH

    def test_leaf_pages_scale_with_rows(self, sizer):
        sizer, _ = sizer
        narrow = Index("shop.sales", ("sale_id",))
        wide = Index("shop.sales", ("sale_id", "customer_id", "amount"))
        assert sizer.leaf_pages(wide) > sizer.leaf_pages(narrow)

    def test_height_reasonable(self, sizer):
        sizer, _ = sizer
        index = Index("shop.sales", ("sale_id",))
        assert 1 <= sizer.height(index) <= 4

    def test_size_includes_inner_levels(self, sizer):
        sizer, _ = sizer
        index = Index("shop.sales", ("sale_id",))
        assert sizer.size_pages(index) >= sizer.leaf_pages(index)

    def test_small_table_single_level(self):
        _, stats = build_toy_catalog(rows=100)
        sizer = IndexSizer(stats)
        index = Index("shop.sales", ("sale_id",))
        assert sizer.leaf_pages(index) == 1
        assert sizer.height(index) == 1
