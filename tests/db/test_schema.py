"""Tests for schema objects (columns, tables, databases, catalog)."""

from __future__ import annotations

import pytest

from repro.db.schema import Catalog, Column, ColumnType, Database, SchemaError, Table


class TestColumn:
    def test_default_width_from_type(self):
        assert Column("x", ColumnType.INT).byte_width == 4
        assert Column("x", ColumnType.BIGINT).byte_width == 8
        assert Column("x", ColumnType.TEXT).byte_width == 32

    def test_width_override(self):
        assert Column("x", ColumnType.TEXT, width=100).byte_width == 100

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("not a name")
        with pytest.raises(SchemaError):
            Column("")

    def test_numeric_classification(self):
        assert ColumnType.INT.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.DATE.is_numeric
        assert not ColumnType.CHAR.is_numeric


class TestTable:
    def test_requires_qualified_name(self):
        with pytest.raises(SchemaError, match="qualified"):
            Table("orders", [Column("a")])
        with pytest.raises(SchemaError, match="qualified"):
            Table("a.b.c", [Column("a")])

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Table("db.t", [Column("a"), Column("a")])

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError, match="no columns"):
            Table("db.t", [])

    def test_column_lookup(self):
        table = Table("db.t", [Column("a"), Column("b")])
        assert table.column("a").name == "a"
        assert table.has_column("b")
        assert not table.has_column("c")
        with pytest.raises(SchemaError):
            table.column("c")

    def test_row_width_includes_header(self):
        table = Table("db.t", [Column("a", ColumnType.INT)])
        assert table.row_width == 24 + 4

    def test_name_parts(self):
        table = Table("tpch.lineitem", [Column("a")])
        assert table.dataset == "tpch"
        assert table.name == "lineitem"
        assert table.column_names == ("a",)


class TestDatabase:
    def test_table_must_match_database(self):
        db = Database("tpch")
        with pytest.raises(SchemaError, match="belong"):
            db.add_table(Table("tpcc.orders", [Column("a")]))

    def test_duplicate_table_rejected(self):
        db = Database("tpch")
        db.add_table(Table("tpch.orders", [Column("a")]))
        with pytest.raises(SchemaError, match="duplicate"):
            db.add_table(Table("tpch.orders", [Column("a")]))

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Database("not a name")

    def test_iteration(self):
        db = Database("d", [Table("d.t1", [Column("a")]), Table("d.t2", [Column("a")])])
        assert [t.name for t in db] == ["t1", "t2"]


class TestCatalog:
    def test_resolution(self):
        catalog = Catalog([Database("d", [Table("d.t", [Column("a")])])])
        assert catalog.table("d.t").name == "t"
        assert catalog.has_table("d.t")
        assert not catalog.has_table("d.missing")
        assert not catalog.has_table("x.t")

    def test_rejects_unqualified_lookup(self):
        catalog = Catalog()
        with pytest.raises(SchemaError):
            catalog.table("justatable")

    def test_duplicate_database_rejected(self):
        catalog = Catalog([Database("d")])
        with pytest.raises(SchemaError, match="duplicate"):
            catalog.add_database(Database("d"))

    def test_tables_spans_databases(self):
        catalog = Catalog([
            Database("a", [Table("a.t", [Column("x")])]),
            Database("b", [Table("b.u", [Column("x")])]),
        ])
        assert {t.qualified_name for t in catalog.tables} == {"a.t", "b.u"}
