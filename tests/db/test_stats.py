"""Tests for catalog statistics and selectivity primitives."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.schema import Catalog, Column, ColumnType, Database, SchemaError, Table
from repro.db.stats import PAGE_SIZE, ColumnStats, StatsRepository, TableStats


def make_table(rows: int = 1000) -> TableStats:
    table = Table("d.t", [Column("a", ColumnType.INT), Column("b", ColumnType.FLOAT)])
    return TableStats(table, rows, {
        "a": ColumnStats(n_distinct=100, min_value=0, max_value=100),
        "b": ColumnStats(n_distinct=500, min_value=0.0, max_value=1.0),
    })


class TestColumnStats:
    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnStats(n_distinct=0)
        with pytest.raises(ValueError):
            ColumnStats(n_distinct=10, min_value=5, max_value=1)
        with pytest.raises(ValueError):
            ColumnStats(n_distinct=10, null_frac=1.0)

    def test_eq_selectivity(self):
        stats = ColumnStats(n_distinct=100)
        assert stats.eq_selectivity() == pytest.approx(0.01)

    def test_eq_selectivity_with_nulls(self):
        stats = ColumnStats(n_distinct=100, null_frac=0.5)
        assert stats.eq_selectivity() == pytest.approx(0.005)

    def test_range_selectivity_midrange(self):
        stats = ColumnStats(n_distinct=1000, min_value=0, max_value=100)
        assert stats.range_selectivity(0, 50) == pytest.approx(0.5)

    def test_range_selectivity_open_bounds(self):
        stats = ColumnStats(n_distinct=1000, min_value=0, max_value=100)
        assert stats.range_selectivity(None, 25) == pytest.approx(0.25)
        assert stats.range_selectivity(75, None) == pytest.approx(0.25)
        assert stats.range_selectivity(None, None) == pytest.approx(1.0)

    def test_range_selectivity_out_of_domain(self):
        stats = ColumnStats(n_distinct=10, min_value=0, max_value=100)
        assert stats.range_selectivity(200, 300) == 0.0

    def test_range_selectivity_floor(self):
        """A vanishing range still matches ~one distinct value."""
        stats = ColumnStats(n_distinct=10, min_value=0, max_value=100)
        assert stats.range_selectivity(50, 50) == pytest.approx(0.1)

    def test_degenerate_domain(self):
        stats = ColumnStats(n_distinct=1, min_value=5, max_value=5)
        assert stats.range_selectivity(5, 5) == pytest.approx(1.0)

    @given(
        lo=st.floats(min_value=0, max_value=100, allow_nan=False),
        width=st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_selectivity_always_in_unit_interval(self, lo, width):
        stats = ColumnStats(n_distinct=50, min_value=0, max_value=100)
        sel = stats.range_selectivity(lo, lo + width)
        assert 0.0 <= sel <= 1.0

    @given(
        a=st.floats(min_value=0, max_value=50, allow_nan=False),
        b=st.floats(min_value=50, max_value=100, allow_nan=False),
        widen=st.floats(min_value=0, max_value=30, allow_nan=False),
    )
    def test_selectivity_monotone_in_range_width(self, a, b, widen):
        stats = ColumnStats(n_distinct=1000, min_value=0, max_value=100)
        narrow = stats.range_selectivity(a, b)
        wide = stats.range_selectivity(max(0.0, a - widen), min(100.0, b + widen))
        assert wide >= narrow - 1e-12


class TestTableStats:
    def test_page_count(self):
        stats = make_table(rows=10_000)
        expected_rows_per_page = PAGE_SIZE // stats.table.row_width
        assert stats.rows_per_page == expected_rows_per_page
        assert stats.page_count == -(-10_000 // expected_rows_per_page)

    def test_rejects_zero_rows(self):
        table = Table("d.t", [Column("a")])
        with pytest.raises(ValueError):
            TableStats(table, 0, {})

    def test_unknown_column_stats_rejected(self):
        table = Table("d.t", [Column("a")])
        with pytest.raises(SchemaError):
            TableStats(table, 10, {"zz": ColumnStats(n_distinct=5)})

    def test_default_stats_for_uncovered_column(self):
        table = Table("d.t", [Column("a"), Column("b")])
        stats = TableStats(table, 1000, {"a": ColumnStats(n_distinct=5)})
        assert stats.has_column_stats("a")
        assert not stats.has_column_stats("b")
        default = stats.column_stats("b")
        assert default.n_distinct >= 2


class TestStatsRepository:
    def test_registration_and_lookup(self):
        table = Table("d.t", [Column("a")])
        catalog = Catalog([Database("d", [table])])
        repo = StatsRepository(catalog)
        repo.add_table_stats(TableStats(table, 500, {}))
        assert repo.row_count("d.t") == 500
        assert repo.page_count("d.t") >= 1
        assert repo.has_table_stats("d.t")

    def test_duplicate_rejected(self):
        table = Table("d.t", [Column("a")])
        catalog = Catalog([Database("d", [table])])
        repo = StatsRepository(catalog)
        repo.add_table_stats(TableStats(table, 500, {}))
        with pytest.raises(SchemaError, match="duplicate"):
            repo.add_table_stats(TableStats(table, 500, {}))

    def test_stats_for_foreign_table_rejected(self):
        table = Table("d.t", [Column("a")])
        foreign = Table("x.t", [Column("a")])
        catalog = Catalog([Database("d", [table])])
        repo = StatsRepository(catalog)
        with pytest.raises(SchemaError):
            repo.add_table_stats(TableStats(foreign, 10, {}))

    def test_missing_stats_raise(self):
        table = Table("d.t", [Column("a")])
        catalog = Catalog([Database("d", [table])])
        repo = StatsRepository(catalog)
        with pytest.raises(SchemaError, match="no statistics"):
            repo.table_stats("d.t")
