"""Tests for δ: asymmetry, triangle inequality, decomposition."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import Index, StatsTransitionCosts, build_toy_catalog


@pytest.fixture(scope="module")
def transitions():
    _, stats = build_toy_catalog(rows=150_000)
    return StatsTransitionCosts(stats)


INDICES = [
    Index("shop.sales", ("sale_id",)),
    Index("shop.sales", ("amount",)),
    Index("shop.sales", ("sale_date", "amount")),
    Index("shop.customers", ("region",)),
]


class TestTransitionCosts:
    def test_asymmetry(self, transitions):
        """δ is not a metric: creating costs far more than dropping (§2)."""
        for index in INDICES:
            assert transitions.create_cost(index) > 10 * transitions.drop_cost(index)

    def test_delta_decomposes(self, transitions):
        a, b, c = INDICES[:3]
        old = frozenset({a})
        new = frozenset({b, c})
        expected = (
            transitions.create_cost(b)
            + transitions.create_cost(c)
            + transitions.drop_cost(a)
        )
        assert transitions.delta(old, new) == pytest.approx(expected)

    def test_delta_identity(self, transitions):
        config = frozenset(INDICES[:2])
        assert transitions.delta(config, config) == 0.0

    @given(
        old_mask=st.integers(min_value=0, max_value=15),
        mid_mask=st.integers(min_value=0, max_value=15),
        new_mask=st.integers(min_value=0, max_value=15),
    )
    def test_triangle_inequality(self, transitions, old_mask, mid_mask, new_mask):
        def config(mask):
            return frozenset(ix for i, ix in enumerate(INDICES) if mask & (1 << i))
        old, mid, new = config(old_mask), config(mid_mask), config(new_mask)
        assert transitions.delta(old, new) <= (
            transitions.delta(old, mid) + transitions.delta(mid, new) + 1e-9
        )

    def test_create_cost_scales_with_table(self):
        _, small = build_toy_catalog(rows=10_000)
        _, large = build_toy_catalog(rows=1_000_000)
        index = Index("shop.sales", ("amount",))
        assert (
            StatsTransitionCosts(large).create_cost(index)
            > 10 * StatsTransitionCosts(small).create_cost(index)
        )

    def test_round_trip(self, transitions):
        a, b = INDICES[:2]
        expected = (
            transitions.create_cost(a) + transitions.drop_cost(a)
            + transitions.create_cost(b) + transitions.drop_cost(b)
        )
        assert transitions.round_trip([a, b]) == pytest.approx(expected)

    def test_create_cost_cached(self, transitions):
        index = INDICES[0]
        assert transitions.create_cost(index) == transitions.create_cost(index)
