"""Tests for IBG-based benefit and interaction analysis."""

from __future__ import annotations

import itertools

import pytest

from repro.db import Index
from repro.ibg.analysis import (
    degree_of_interaction,
    interaction_pairs,
    max_benefit,
)
from repro.ibg.graph import build_ibg
from repro.optimizer import extract_indices
from repro.query import select

SALES = "shop.sales"
CUSTOMERS = "shop.customers"


@pytest.fixture()
def two_range_ibg(toy_optimizer, toy_stats):
    amount = toy_stats.column_stats(SALES, "amount")
    date = toy_stats.column_stats(SALES, "sale_date")
    query = (
        select(SALES)
        .where_between("amount", amount.min_value,
                       amount.min_value + amount.domain_width * 0.05)
        .where_between("sale_date", date.min_value,
                       date.min_value + date.domain_width * 0.05)
        .count_star()
        .build()
    )
    candidates = extract_indices(query)
    return build_ibg(toy_optimizer, query, candidates), query


class TestMaxBenefit:
    def test_nonnegative(self, two_range_ibg):
        ibg, _ = two_range_ibg
        for index in ibg.candidates:
            assert max_benefit(ibg, index) >= 0.0

    def test_matches_exhaustive_maximum(self, two_range_ibg, toy_optimizer):
        ibg, query = two_range_ibg
        ordered = sorted(ibg.candidates)
        for index in ordered:
            contexts = [
                frozenset(c)
                for r in range(len(ordered))
                for c in itertools.combinations(
                    [ix for ix in ordered if ix != index], r
                )
            ]
            exhaustive = max(
                toy_optimizer.cost(query, ctx)
                - toy_optimizer.cost(query, ctx | {index})
                for ctx in contexts
            )
            assert max_benefit(ibg, index) == pytest.approx(
                max(exhaustive, 0.0), abs=1e-9
            )

    def test_foreign_index_zero(self, two_range_ibg):
        ibg, _ = two_range_ibg
        assert max_benefit(ibg, Index(CUSTOMERS, ("region",))) == 0.0


class TestDegreeOfInteraction:
    def test_symmetry(self, two_range_ibg):
        ibg, _ = two_range_ibg
        ordered = sorted(ibg.candidates)
        for a, b in itertools.combinations(ordered, 2):
            assert degree_of_interaction(ibg, a, b) == pytest.approx(
                degree_of_interaction(ibg, b, a)
            )

    def test_self_interaction_rejected(self, two_range_ibg):
        ibg, _ = two_range_ibg
        index = sorted(ibg.candidates)[0]
        with pytest.raises(ValueError):
            degree_of_interaction(ibg, index, index)

    def test_alternative_paths_interact(self, two_range_ibg):
        """Two single-column indices competing/intersecting on the same
        table must have doi > 0 (the paper's canonical example)."""
        ibg, _ = two_range_ibg
        a = Index(SALES, ("amount",))
        b = Index(SALES, ("sale_date",))
        assert degree_of_interaction(ibg, a, b) > 0.0

    def test_matches_exhaustive_definition(self, two_range_ibg, toy_optimizer):
        ibg, query = two_range_ibg
        ordered = sorted(ibg.candidates)
        a, b = ordered[0], ordered[1]
        rest = [ix for ix in ordered if ix not in (a, b)]
        worst = 0.0
        for r in range(len(rest) + 1):
            for combo in itertools.combinations(rest, r):
                ctx = frozenset(combo)
                ben = toy_optimizer.cost(query, ctx) - toy_optimizer.cost(
                    query, ctx | {a}
                )
                ben_b = toy_optimizer.cost(query, ctx | {b}) - toy_optimizer.cost(
                    query, ctx | {a, b}
                )
                worst = max(worst, abs(ben - ben_b))
        assert degree_of_interaction(ibg, a, b) == pytest.approx(worst, abs=1e-9)

    def test_cross_table_zero(self, toy_optimizer, toy_stats):
        amount = toy_stats.column_stats(SALES, "amount")
        query = (
            select(SALES)
            .join(CUSTOMERS, on=("customer_id", "customer_id"))
            .where_between("amount", amount.min_value,
                           amount.min_value + amount.domain_width * 0.03,
                           table=SALES)
            .where_eq("region", 5, table=CUSTOMERS)
            .build()
        )
        candidates = extract_indices(query)
        ibg = build_ibg(toy_optimizer, query, candidates)
        a = Index(SALES, ("amount",))
        b = Index(CUSTOMERS, ("region",))
        assert degree_of_interaction(ibg, a, b) == 0.0


class TestInteractionPairs:
    def test_only_positive_pairs_reported(self, two_range_ibg):
        ibg, _ = two_range_ibg
        pairs = interaction_pairs(ibg, ibg.candidates)
        for (a, b), doi in pairs.items():
            assert doi > 0
            assert a <= b
            assert a.table == b.table
