"""Tests for Index Benefit Graph construction and lookups."""

from __future__ import annotations

import itertools

import pytest

from repro.db import Index
from repro.ibg.graph import build_ibg
from repro.optimizer import WhatIfOptimizer, extract_indices
from repro.query import select, update

SALES = "shop.sales"


@pytest.fixture()
def query(toy_stats):
    amount = toy_stats.column_stats(SALES, "amount")
    date = toy_stats.column_stats(SALES, "sale_date")
    return (
        select(SALES)
        .where_between("amount", amount.min_value,
                       amount.min_value + amount.domain_width * 0.05)
        .where_between("sale_date", date.min_value,
                       date.min_value + date.domain_width * 0.05)
        .count_star()
        .build()
    )


class TestIBGConstruction:
    def test_costs_match_whatif_for_every_subset(self, toy_optimizer, query):
        """The core IBG guarantee: cost(X) for all X ⊆ U from few nodes."""
        candidates = extract_indices(query)
        ibg = build_ibg(toy_optimizer, query, candidates)
        ordered = sorted(candidates)
        for r in range(len(ordered) + 1):
            for combo in itertools.combinations(ordered, r):
                subset = frozenset(combo)
                assert ibg.cost(subset) == pytest.approx(
                    toy_optimizer.cost(query, subset), rel=1e-12
                )

    def test_far_fewer_nodes_than_subsets(self, toy_optimizer, query):
        candidates = extract_indices(query)
        ibg = build_ibg(toy_optimizer, query, candidates)
        assert ibg.node_count < 2 ** len(candidates)

    def test_root_is_relevant_subset(self, toy_optimizer, query):
        candidates = set(extract_indices(query))
        candidates.add(Index("shop.customers", ("region",)))  # irrelevant
        ibg = build_ibg(toy_optimizer, query, frozenset(candidates))
        assert all(ix.table == SALES for ix in ibg.candidates)

    def test_used_subset_of_queried_config(self, toy_optimizer, query):
        candidates = extract_indices(query)
        ibg = build_ibg(toy_optimizer, query, candidates)
        some = frozenset(sorted(candidates)[:2])
        assert ibg.used(some) <= some

    def test_empty_cost(self, toy_optimizer, query):
        candidates = extract_indices(query)
        ibg = build_ibg(toy_optimizer, query, candidates)
        assert ibg.empty_cost == pytest.approx(
            toy_optimizer.cost(query, frozenset())
        )

    def test_benefit_from_graph(self, toy_optimizer, query):
        candidates = extract_indices(query)
        ibg = build_ibg(toy_optimizer, query, candidates)
        index = sorted(candidates)[0]
        expected = toy_optimizer.benefit(query, {index}, frozenset())
        assert ibg.benefit({index}, frozenset()) == pytest.approx(expected)

    def test_update_statement_ibg(self, toy_optimizer, toy_stats):
        """Maintenance-paying indices appear in used sets, keeping lookups
        exact even when cost increases with more indices."""
        date = toy_stats.column_stats(SALES, "sale_date")
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", date.min_value, date.min_value + 30)
            .build()
        )
        amount_ix = Index(SALES, ("amount",))
        date_ix = Index(SALES, ("sale_date",))
        candidates = frozenset({amount_ix, date_ix})
        ibg = build_ibg(toy_optimizer, stmt, candidates)
        for subset in (frozenset(), {amount_ix}, {date_ix}, candidates):
            assert ibg.cost(subset) == pytest.approx(
                toy_optimizer.cost(stmt, frozenset(subset))
            )

    def test_node_cap_enforced(self, toy_optimizer, query):
        candidates = extract_indices(query)
        with pytest.raises(RuntimeError, match="exceeded"):
            build_ibg(toy_optimizer, query, candidates, max_nodes=1)

    def test_all_used_indices_cached(self, toy_optimizer, query):
        candidates = extract_indices(query)
        ibg = build_ibg(toy_optimizer, query, candidates)
        assert ibg.all_used_indices() is ibg.all_used_indices()
