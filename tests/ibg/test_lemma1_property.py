"""Property test of IBG Lemma 1 over the bitset-encoded graph.

For randomly generated statements (reads *and* writes with maintenance
charges), the cost read off the IBG must equal a direct what-if
``cost(q, X)`` for **every** ``X ⊆ U`` with ``|U| ≤ 6`` — the guarantee
that lets WFIT answer exponentially many configuration questions from a
handful of optimizer calls. Both the frozenset API and the mask API are
checked, as is the agreement of ``used(X)`` with its mask variant.
"""

from __future__ import annotations

import pytest

from repro.core.bitset import iter_submasks, popcount
from repro.ibg.graph import build_ibg
from repro.optimizer import WhatIfOptimizer, extract_indices
from repro.workload import generate_workload, scaled_phases

#: |U| cap: 2^6 = 64 exhaustive configurations per statement.
_MAX_UNIVERSE = 6


@pytest.fixture(scope="module")
def lemma_workload(request):
    catalog, stats = request.getfixturevalue("bench_catalog")
    return generate_workload(catalog, stats, scaled_phases(4), seed=1234)


def _candidate_universe(statement):
    return sorted(extract_indices(statement))[:_MAX_UNIVERSE]


class TestLemma1:
    def test_every_subset_matches_direct_whatif(self, bench_stats, lemma_workload):
        optimizer = WhatIfOptimizer(bench_stats)
        write_statements = 0
        maintained = 0
        for statement in lemma_workload.statements:
            universe = _candidate_universe(statement)
            if not universe:
                continue
            ibg = build_ibg(optimizer, statement, frozenset(universe))
            if statement.is_update:
                write_statements += 1
                if ibg.maintained_indices:
                    maintained += 1
            mask_universe = optimizer.mask_universe
            full = mask_universe.encode(universe)
            for config_mask in iter_submasks(full):
                subset = mask_universe.decode(config_mask)
                direct = optimizer.cost(statement, subset)
                assert ibg.cost(subset) == pytest.approx(direct, rel=1e-12), (
                    f"{statement!r} with X={sorted(ix.name for ix in subset)}"
                )
                assert ibg.cost_mask(config_mask) == pytest.approx(
                    direct, rel=1e-12
                )
        # The workload mix must actually exercise the write path, where
        # maintenance charges are re-added analytically per lookup.
        assert write_statements > 0
        assert maintained > 0

    def test_used_sets_consistent_between_apis(self, bench_stats, lemma_workload):
        optimizer = WhatIfOptimizer(bench_stats)
        for statement in lemma_workload.statements[:20]:
            universe = _candidate_universe(statement)
            if not universe:
                continue
            ibg = build_ibg(optimizer, statement, frozenset(universe))
            mask_universe = optimizer.mask_universe
            full = mask_universe.encode(universe)
            for config_mask in iter_submasks(full):
                subset = mask_universe.decode(config_mask)
                used = ibg.used(subset)
                assert used <= subset
                assert mask_universe.encode(used) == ibg.used_mask(config_mask)

    def test_lemma1_removal_invariance(self, bench_stats, lemma_workload):
        """cost(X) is unchanged by removing any index outside used(X)."""
        optimizer = WhatIfOptimizer(bench_stats)
        checked = 0
        for statement in lemma_workload.statements[:30]:
            universe = _candidate_universe(statement)
            if not universe:
                continue
            ibg = build_ibg(optimizer, statement, frozenset(universe))
            mask_universe = optimizer.mask_universe
            full = mask_universe.encode(universe)
            for config_mask in iter_submasks(full):
                plan_used = ibg.used_mask(config_mask) & ~mask_universe.project(
                    ibg.maintained_indices
                )
                removable = config_mask & ~plan_used & ~mask_universe.project(
                    ibg.maintained_indices
                )
                if not removable:
                    continue
                bit = removable & -removable
                assert ibg.cost_mask(config_mask & ~bit) == pytest.approx(
                    ibg.cost_mask(config_mask), rel=1e-12
                )
                checked += 1
        assert checked > 0
