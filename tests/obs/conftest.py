"""Obs-suite fixtures: keep the global enablement flag test-local."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _restore_obs_enablement():
    """Restore the process-wide obs flag so tests compose under any
    ``REPRO_OBS`` setting (the tier-1 suite also runs with it at 0)."""
    was_enabled = obs.enabled()
    yield
    obs.enable() if was_enabled else obs.disable()
