"""Tests for the ``python -m repro.obs`` CLI (show / diff / check)."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.registry import MetricsRegistry


def _make_snapshot(counter: float = 3, observed=(0.5, 2.0)) -> dict:
    registry = MetricsRegistry()
    registry.counter("r_total", help="a counter", labels={"k": "x"}).inc(counter)
    registry.gauge("r_depth").set(4)
    hist = registry.histogram("r_seconds", buckets=(1.0,))
    for value in observed:
        hist.observe(value)
    return registry.snapshot()


@pytest.fixture()
def snapshot_path(tmp_path):
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(_make_snapshot(), sort_keys=True))
    return path


class TestShow:
    def test_table_lists_every_sample(self, snapshot_path, capsys):
        assert main(["show", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "r_total{k=x}  3" in out
        assert "r_depth  4" in out
        assert "r_seconds  count=2" in out

    def test_prom_format_is_parseable(self, snapshot_path, capsys):
        from repro.obs.registry import parse_prometheus_text

        assert main(["show", str(snapshot_path), "--format", "prom"]) == 0
        families = parse_prometheus_text(capsys.readouterr().out)
        assert set(families) == {"r_total", "r_depth", "r_seconds"}

    def test_json_format_round_trips(self, snapshot_path, capsys):
        assert main(["show", str(snapshot_path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1

    def test_unwraps_replay_report(self, tmp_path, capsys):
        report = {
            "metrics": {"statements_ingested": 10},  # engine dict, not a snapshot
            "obs": _make_snapshot(counter=9),
        }
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report, sort_keys=True))
        assert main(["show", str(path)]) == 0
        assert "r_total{k=x}  9" in capsys.readouterr().out


class TestDiff:
    def test_diff_subtracts(self, tmp_path, capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(json.dumps(_make_snapshot(counter=3, observed=(0.5,))))
        after.write_text(json.dumps(_make_snapshot(counter=10, observed=(0.5, 2.0))))
        assert main(["diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "r_total{k=x}  7" in out
        assert "r_seconds  count=1" in out


class TestCheck:
    def test_ok_on_valid_snapshot(self, snapshot_path, capsys):
        assert main(["check", str(snapshot_path)]) == 0
        assert capsys.readouterr().out.startswith("OK ")

    def test_fails_on_invalid_snapshot(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 77, "metrics": {}}))
        assert main(["check", str(path)]) == 1
        assert "FAIL snapshot" in capsys.readouterr().err

    def test_expect_metric_enforced(self, snapshot_path, capsys):
        assert main([
            "check", str(snapshot_path), "--expect-metric", "r_total",
        ]) == 0
        assert main([
            "check", str(snapshot_path), "--expect-metric", "r_missing_total",
        ]) == 1
        assert "r_missing_total" in capsys.readouterr().err

    def test_trace_validation(self, snapshot_path, tmp_path, capsys):
        good = tmp_path / "trace.json"
        good.write_text(json.dumps({"traceEvents": [
            {"name": "s", "ph": "X", "ts": 1.0, "dur": 2.0, "pid": 1, "tid": 5},
        ]}))
        assert main(["check", str(snapshot_path), "--trace", str(good)]) == 0

        bad = tmp_path / "bad-trace.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"name": "s", "ph": "X", "ts": 1.0, "pid": 1, "tid": 5},  # no dur
        ]}))
        assert main(["check", str(snapshot_path), "--trace", str(bad)]) == 1
        assert "dur" in capsys.readouterr().err
