"""Telemetry must never perturb tuning results.

Runs the same workload through WFIT with obs enabled (plus mid-run
snapshot/export churn) and disabled, and requires bit-identical
recommendations and exported tuner state. This is the enforcement test
for the contract documented in ``repro/obs/__init__.py``.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.wfit import WFIT
from repro.db import StatsTransitionCosts
from repro.optimizer import WhatIfOptimizer
from repro.query import select

SALES = "shop.sales"
CUSTOMERS = "shop.customers"


def _workload(stats, count=24):
    """A deterministic mixed workload touching two tables."""
    shapes = (
        (SALES, "amount", 0.02, 0.0),
        (SALES, "sale_date", 0.05, 0.1),
        (CUSTOMERS, "lifetime_value", 0.03, 0.2),
        (SALES, "amount", 0.01, 0.5),
    )
    statements = []
    for i in range(count):
        table, column, fraction, offset = shapes[i % len(shapes)]
        col = stats.column_stats(table, column)
        lo = col.min_value + col.domain_width * offset
        hi = lo + col.domain_width * fraction
        statements.append(select(table).where_between(column, lo, hi).build())
    return statements


def _run(stats, statements, *, churn: bool):
    """Run a fresh tuner over ``statements``; return (recs, exported state).

    With ``churn`` the run also takes registry snapshots, renders the
    Prometheus text and exports traces mid-stream — the observability
    read path must be side-effect-free too.
    """
    optimizer = WhatIfOptimizer(stats)
    tuner = WFIT(
        optimizer, StatsTransitionCosts(stats), idx_cnt=6, state_cnt=64
    )
    recommendations = []
    for i, statement in enumerate(statements):
        recommendations.append(sorted(map(str, tuner.analyze_statement(statement))))
        if churn and i % 5 == 0:
            registry = obs.default_registry()
            registry.expose_text()
            obs.validate_snapshot(registry.snapshot())
            obs.default_tracer().export_chrome()
    state = tuner.export_state()
    tuner.close()
    return recommendations, json.dumps(state, sort_keys=True, default=str)


def test_results_identical_with_obs_on_off_and_churn(toy_stats):
    statements = _workload(toy_stats)
    was_enabled = obs.enabled()  # honour REPRO_OBS=0 runs of the suite
    try:
        obs.enable()
        on_recs, on_state = _run(toy_stats, statements, churn=True)
        obs.disable()
        assert obs.span("noop") is not None  # no-op path, not an error path
        off_recs, off_state = _run(toy_stats, statements, churn=False)
    finally:
        obs.enable() if was_enabled else obs.disable()
    assert on_recs == off_recs
    assert on_state == off_state


def test_disabled_run_records_nothing_new(toy_stats):
    statements = _workload(toy_stats, count=8)
    obs.disable()
    before = obs.default_registry().snapshot()
    _run(toy_stats, statements, churn=False)
    delta = obs.diff_snapshots(before, obs.default_registry().snapshot())
    for name, entry in delta["metrics"].items():
        if entry["type"] == "gauge":
            continue  # gauges report levels, not flows
        for sample in entry["samples"]:
            moved = sample.get("value", sample.get("count", 0))
            assert not moved, f"{name} advanced while obs was disabled"


def test_enabled_run_populates_every_layer(toy_stats):
    statements = _workload(toy_stats, count=8)
    obs.enable()
    before = obs.default_registry().snapshot()
    # Inline run: the what-if counters come from a weakref collector that
    # dies with the optimizer, so snapshot while it is still alive.
    optimizer = WhatIfOptimizer(toy_stats)
    tuner = WFIT(
        optimizer, StatsTransitionCosts(toy_stats), idx_cnt=6, state_cnt=64
    )
    for statement in statements:
        tuner.analyze_statement(statement)
    after = obs.default_registry().snapshot()
    tuner.close()
    delta = obs.diff_snapshots(before, after)
    metrics = delta["metrics"]

    wfit_total = sum(
        s["value"] for s in metrics["repro_wfit_statements_total"]["samples"]
    )
    assert wfit_total == len(statements)

    relax = metrics["repro_wfa_relax_seconds"]["samples"]
    assert sum(s["count"] for s in relax) > 0
    for sample in relax:
        assert set(sample["labels"]) == {"backend", "states"}

    span_names = {
        s["labels"]["span"] for s in metrics["repro_span_seconds"]["samples"]
        if s["count"]
    }
    assert {"wfit.analyze", "wfit.choose_candidates",
            "wfit.prepare", "wfit.relax"} <= span_names

    whatif = sum(
        s["value"] for s in metrics["repro_whatif_calls_total"]["samples"]
    )
    assert whatif > 0
