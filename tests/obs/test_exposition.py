"""Golden-file test for the Prometheus text exposition format.

The golden at ``tests/golden/prometheus_exposition.txt`` pins the exact
rendering — HELP/TYPE lines, label ordering, cumulative ``le`` buckets,
value formatting — so accidental format drift (which would break real
Prometheus scrapers) fails loudly. Regenerate with::

    PYTHONPATH=src python tests/obs/test_exposition.py --regen
"""

from __future__ import annotations

import pathlib
import sys

from repro.obs.registry import (
    MetricsRegistry,
    parse_prometheus_text,
    text_from_snapshot,
    validate_snapshot,
)

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / "golden" / "prometheus_exposition.txt"


def build_fixture_registry() -> MetricsRegistry:
    """A small registry with every instrument type and formatting edge."""
    registry = MetricsRegistry()
    registry.counter(
        "repro_demo_statements_total",
        help="Statements fed to the demo tuner.",
    ).inc(42)
    registry.counter(
        "repro_demo_cache_events_total",
        help="Cache events by kind.",
        labels={"kind": "hit"},
    ).inc(17)
    registry.counter(
        "repro_demo_cache_events_total",
        labels={"kind": "miss"},
    ).inc(3)
    registry.gauge(
        "repro_demo_queue_depth",
        help="Pending statements.",
    ).set(5)
    hist = registry.histogram(
        "repro_demo_relax_seconds",
        help="Relax wall time.",
        buckets=(0.001, 0.01, 0.1, 1.0),
        labels={"backend": "numpy"},
    )
    for value in (0.0005, 0.004, 0.004, 0.05, 2.0):
        hist.observe(value)
    registry.counter(
        "repro_demo_escaped_total",
        help='Help with a "quote" and a \\ backslash.',
        labels={"path": 'a"b\\c\nd'},
    ).inc(1)
    return registry


def test_exposition_matches_golden():
    text = build_fixture_registry().expose_text()
    assert GOLDEN.exists(), f"golden missing: {GOLDEN}"
    assert text == GOLDEN.read_text()


def test_golden_is_self_consistent():
    """The committed golden must itself parse as valid Prometheus text."""
    families = parse_prometheus_text(GOLDEN.read_text())
    assert families["repro_demo_statements_total"]["type"] == "counter"
    assert families["repro_demo_relax_seconds"]["type"] == "histogram"
    bucket_values = [
        value
        for name, labels, value in families["repro_demo_relax_seconds"]["samples"]
        if name == "repro_demo_relax_seconds_bucket"
    ]
    assert bucket_values == sorted(bucket_values)
    assert bucket_values[-1] == 5  # +Inf == count

    samples = {
        (name, labels.get("kind"))
        for name, labels, _ in families["repro_demo_cache_events_total"]["samples"]
    }
    assert samples == {
        ("repro_demo_cache_events_total", "hit"),
        ("repro_demo_cache_events_total", "miss"),
    }


def test_snapshot_render_matches_live_render():
    """``text_from_snapshot(snapshot())`` and ``expose_text()`` agree."""
    registry = build_fixture_registry()
    snapshot = registry.snapshot()
    validate_snapshot(snapshot)
    assert text_from_snapshot(snapshot) == registry.expose_text()


if __name__ == "__main__":
    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(build_fixture_registry().expose_text())
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
