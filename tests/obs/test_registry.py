"""Tests for the metrics registry: instruments, snapshots, exposition."""

from __future__ import annotations

import gc
import json
import math
import threading

import pytest

from repro import obs
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    POW2_BUCKETS,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    parse_prometheus_text,
    text_from_snapshot,
    validate_snapshot,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestInstruments:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("r_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("r_total").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("r_depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8.0

    def test_get_or_create_returns_same_child(self, registry):
        a = registry.counter("r_total", labels={"k": "x"})
        b = registry.counter("r_total", labels={"k": "x"})
        c = registry.counter("r_total", labels={"k": "y"})
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self, registry):
        a = registry.counter("r_total", labels={"a": "1", "b": "2"})
        b = registry.counter("r_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_type_conflict_raises(self, registry):
        registry.counter("r_thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("r_thing")

    def test_histogram_bucket_conflict_raises(self, registry):
        registry.histogram("r_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("r_seconds", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("has space")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels={"bad-label": "v"})

    def test_reset_zeroes_but_keeps_handles(self, registry):
        counter = registry.counter("r_total")
        hist = registry.histogram("r_seconds", buckets=(1.0,))
        counter.inc(5)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0.0
        assert hist.count == 0
        counter.inc()  # the cached handle still feeds the registry
        assert registry.snapshot()["metrics"]["r_total"]["samples"][0]["value"] == 1.0


class TestHistogramBuckets:
    def test_exact_boundary_lands_in_bounding_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)  # le="2.0" bucket, Prometheus v <= bound
        buckets = hist.cumulative_buckets()
        assert buckets["1"] == 0
        assert buckets["2"] == 1
        assert buckets["4"] == 1
        assert buckets["+Inf"] == 1

    def test_overflow_counts_only_in_inf(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(100.0)
        buckets = hist.cumulative_buckets()
        assert buckets["1"] == 0
        assert buckets["+Inf"] == 1
        assert hist.count == 1
        assert hist.sum == 100.0

    def test_cumulative_counts_are_monotone(self):
        hist = Histogram(buckets=POW2_BUCKETS)
        for value in (0.5, 1, 2, 3, 9, 1 << 19, 1 << 25):
            hist.observe(value)
        counts = list(hist.cumulative_buckets().values())
        assert counts == sorted(counts)
        assert counts[-1] == 7

    def test_rejects_unsorted_and_empty(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_trailing_inf_bound_is_folded(self):
        hist = Histogram(buckets=(1.0, math.inf))
        hist.observe(5.0)
        assert list(hist.cumulative_buckets()) == ["1", "+Inf"]

    def test_default_time_buckets_cover_micro_to_seconds(self):
        hist = Histogram(buckets=DEFAULT_TIME_BUCKETS)
        hist.observe(2e-5)
        hist.observe(0.3)
        buckets = hist.cumulative_buckets()
        assert buckets["+Inf"] == 2
        assert buckets["2.5e-05"] >= 1


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("r_total")
        hist = registry.histogram("r_seconds", buckets=(0.5,))
        per_thread, threads = 5_000, 8
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.25)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value == per_thread * threads
        assert hist.count == per_thread * threads
        assert hist.cumulative_buckets()["+Inf"] == per_thread * threads

    def test_concurrent_get_or_create_yields_one_child(self, registry):
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(registry.counter("r_total", labels={"k": "x"}))

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len({id(c) for c in results}) == 1

    def test_snapshot_under_concurrent_writes_is_valid(self, registry):
        counter = registry.counter("r_total")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                counter.inc()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                validate_snapshot(registry.snapshot())
        finally:
            stop.set()
            thread.join()


class TestSnapshot:
    def test_snapshot_schema_round_trips_json(self, registry):
        registry.counter("r_total", help="c").inc(3)
        registry.gauge("r_depth").set(-2)
        registry.histogram("r_seconds", buckets=(1.0,)).observe(0.5)
        document = json.loads(json.dumps(registry.snapshot(), sort_keys=True))
        validate_snapshot(document)
        assert document["metrics"]["r_total"]["samples"][0]["value"] == 3
        hist = document["metrics"]["r_seconds"]["samples"][0]
        assert hist["count"] == 1 and hist["buckets"]["+Inf"] == 1

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_snapshot({"version": 99, "metrics": {}})
        with pytest.raises(ValueError):
            validate_snapshot({"version": 1})
        with pytest.raises(ValueError):
            validate_snapshot({
                "version": 1,
                "metrics": {"x": {"type": "sparkline", "samples": []}},
            })

    def test_validate_rejects_non_cumulative_histogram(self):
        with pytest.raises(ValueError, match="cumulative"):
            validate_snapshot({
                "version": 1,
                "metrics": {"h": {"type": "histogram", "help": "", "samples": [
                    {"labels": {}, "count": 2, "sum": 1.0,
                     "buckets": {"1": 2, "2": 1, "+Inf": 2}},
                ]}},
            })

    def test_diff_subtracts_counters_and_histograms(self, registry):
        counter = registry.counter("r_total")
        gauge = registry.gauge("r_depth")
        hist = registry.histogram("r_seconds", buckets=(1.0,))
        counter.inc(2)
        gauge.set(10)
        hist.observe(0.5)
        before = registry.snapshot()
        counter.inc(3)
        gauge.set(4)
        hist.observe(0.5)
        hist.observe(9.0)
        delta = diff_snapshots(before, registry.snapshot())
        validate_snapshot(delta)
        metrics = delta["metrics"]
        assert metrics["r_total"]["samples"][0]["value"] == 3
        assert metrics["r_depth"]["samples"][0]["value"] == 4  # level, not flow
        hist_sample = metrics["r_seconds"]["samples"][0]
        assert hist_sample["count"] == 2
        assert hist_sample["buckets"]["1"] == 1
        assert hist_sample["buckets"]["+Inf"] == 2

    def test_diff_counts_new_series_from_zero(self, registry):
        before = registry.snapshot()
        registry.counter("r_total").inc(7)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["metrics"]["r_total"]["samples"][0]["value"] == 7


class TestCollectors:
    class _Source:
        def __init__(self, value: float) -> None:
            self.value = value

        def collect(self):
            return [{
                "name": "r_collected_total",
                "type": "counter",
                "help": "from a collector",
                "value": self.value,
            }]

    def test_collector_samples_appear_and_sum(self, registry):
        a, b = self._Source(3), self._Source(4)
        registry.register_collector(a.collect)
        registry.register_collector(b.collect)
        sample = registry.snapshot()["metrics"]["r_collected_total"]["samples"][0]
        assert sample["value"] == 7

    def test_dead_collector_is_pruned(self, registry):
        source = self._Source(5)
        registry.register_collector(source.collect)
        assert "r_collected_total" in registry.snapshot()["metrics"]
        del source
        gc.collect()
        assert "r_collected_total" not in registry.snapshot()["metrics"]

    def test_collector_name_collision_raises(self, registry):
        registry.counter("r_collected_total")
        source = self._Source(1)
        registry.register_collector(source.collect)
        with pytest.raises(ValueError, match="collides"):
            registry.snapshot()


class TestExposition:
    def test_text_parses_and_preserves_values(self, registry):
        registry.counter("r_total", help="a counter", labels={"k": "x"}).inc(3)
        registry.histogram("r_seconds", help="a histogram",
                           buckets=(0.1, 1.0)).observe(0.05)
        text = registry.expose_text()
        families = parse_prometheus_text(text)
        assert families["r_total"]["type"] == "counter"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in families["r_total"]["samples"]
        }
        assert samples[("r_total", (("k", "x"),))] == 3
        hist_samples = families["r_seconds"]["samples"]
        assert any(n == "r_seconds_count" and v == 1 for n, _, v in hist_samples)

    def test_label_escaping_round_trips(self, registry):
        nasty = 'quote " backslash \\ newline \n end'
        registry.counter("r_total", labels={"k": nasty}).inc()
        families = parse_prometheus_text(registry.expose_text())
        (_, labels, value), = families["r_total"]["samples"]
        assert labels["k"] == nasty and value == 1

    def test_sorted_key_snapshot_renders_ordered_buckets(self, registry):
        registry.histogram("r_size", buckets=POW2_BUCKETS).observe(3)
        # Simulate a JSON round-trip with lexicographic keys ("128" < "2").
        document = json.loads(json.dumps(registry.snapshot(), sort_keys=True))
        validate_snapshot(document)
        parse_prometheus_text(text_from_snapshot(document))

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("just some words\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE x sparkline\n")
        with pytest.raises(ValueError):
            # A sample with no TYPE declaration.
            parse_prometheus_text("orphan_total 3\n")


class TestDefaultRegistryContract:
    def test_enable_disable_round_trip(self):
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()

    def test_default_registry_is_a_singleton(self):
        assert obs.default_registry() is obs.default_registry()
