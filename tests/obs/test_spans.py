"""Tests for span tracing: nesting, exception safety, ring bound, export."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.trace import _NULL_SPAN, Tracer


@pytest.fixture()
def tracer() -> Tracer:
    return Tracer(ring_size=8)


class TestNesting:
    def test_children_attach_to_enclosing_span(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a.1"):
                    pass
            with tracer.span("b"):
                pass
        (root,) = tracer.export()
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["a", "b"]
        assert [c["name"] for c in root["children"][0]["children"]] == ["a.1"]

    def test_only_roots_land_in_ring(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [r["name"] for r in tracer.export()] == ["root"]

    def test_current_tracks_innermost_open_span(self, tracer):
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_sibling_roots_accumulate_oldest_first(self, tracer):
        for name in ("one", "two", "three"):
            with tracer.span(name):
                pass
        assert [r["name"] for r in tracer.export()] == ["one", "two", "three"]

    def test_spans_on_other_threads_nest_independently(self, tracer):
        seen = {}

        def worker():
            with tracer.span("thread-root"):
                seen["current"] = tracer.current().name

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            # The worker's span must not have nested under main's.
            assert tracer.current().name == "main-root"
        assert seen["current"] == "thread-root"
        names = {r["name"] for r in tracer.export()}
        assert names == {"main-root", "thread-root"}
        for root in tracer.export():
            assert not root.get("children")


class TestTimingAndErrors:
    def test_wall_time_is_positive_and_plausible(self, tracer):
        with tracer.span("sleepy"):
            time.sleep(0.01)
        (root,) = tracer.export()
        assert 0.005 < root["wall_s"] < 1.0
        assert root["cpu_s"] >= 0.0

    def test_exception_propagates_and_span_is_tagged(self, tracer):
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("root"):
                with tracer.span("failing"):
                    raise RuntimeError("boom")
        (root,) = tracer.export()
        assert root.get("error") == "RuntimeError"
        assert root["children"][0]["error"] == "RuntimeError"
        # The stacks unwound fully: a new span is a fresh root.
        assert tracer.current() is None
        with tracer.span("after"):
            pass
        assert [r["name"] for r in tracer.export()] == ["root", "after"]

    def test_ring_keeps_most_recent(self, tracer):
        for i in range(20):
            with tracer.span(f"s{i}"):
                pass
        names = [r["name"] for r in tracer.export()]
        assert names == [f"s{i}" for i in range(12, 20)]

    def test_clear_empties_ring(self, tracer):
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.export() == []


class TestChromeExport:
    def test_chrome_document_shape(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        document = tracer.export_chrome()
        json.dumps(document)  # must be JSON-serialisable as-is
        events = document["traceEvents"]
        assert {e["name"] for e in events} == {"root", "child"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] > 0 and event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] != 0
            assert "cpu_ms" in event["args"]

    def test_child_interval_nests_inside_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                time.sleep(0.002)
        events = {e["name"]: e for e in tracer.export_chrome()["traceEvents"]}
        root, child = events["root"], events["child"]
        assert root["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1.0

    def test_error_lands_in_args(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("nope")
        (event,) = tracer.export_chrome()["traceEvents"]
        assert event["args"]["error"] == "ValueError"


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_singleton(self, tracer):
        a = tracer.span("x", enabled=False)
        b = tracer.span("y", enabled=False)
        assert a is b is _NULL_SPAN
        with a:
            pass
        assert tracer.export() == []

    def test_module_span_respects_obs_disable(self):
        tracer = obs.default_tracer()
        before = len(tracer.export())
        obs.disable()
        try:
            assert obs.span("while-off") is _NULL_SPAN
            with obs.span("while-off"):
                pass
        finally:
            obs.enable()
        assert len(tracer.export()) == before


class TestSpanSecondsFeed:
    def test_closed_spans_observe_into_default_registry(self):
        obs.enable()
        registry = obs.default_registry()
        name = "test-span-seconds-feed"
        with obs.span(name):
            pass
        with obs.span(name):
            pass
        metrics = registry.snapshot()["metrics"]
        samples = metrics["repro_span_seconds"]["samples"]
        (sample,) = [s for s in samples if s["labels"].get("span") == name]
        assert sample["count"] == 2
