"""Tests for single-table access path enumeration and costing."""

from __future__ import annotations

import pytest

from repro.db import Index
from repro.optimizer.access import AccessCostModel
from repro.optimizer.selectivity import selectivity_by_column
from repro.query.ast import ColumnRef, EqualityPredicate, RangePredicate

SALES = "shop.sales"


@pytest.fixture()
def model(toy_stats):
    return AccessCostModel(toy_stats)


def col_sel(stats, *preds):
    return selectivity_by_column(stats, list(preds))


def narrow_range(stats, column, fraction=0.01):
    col = stats.column_stats(SALES, column)
    width = (col.max_value - col.min_value) * fraction
    return RangePredicate(
        ColumnRef(SALES, column), lo=col.min_value, hi=col.min_value + width
    )


class TestTableScan:
    def test_always_available(self, model, toy_stats):
        paths = model.enumerate_paths(SALES, {}, frozenset(), frozenset())
        assert [p.kind for p in paths] == ["table-scan"]
        assert paths[0].cost > 0

    def test_scan_cost_tracks_pages(self, model, toy_stats):
        assert model.table_scan_cost(SALES) >= toy_stats.page_count(SALES)


class TestIndexScan:
    def test_selective_range_prefers_index(self, model, toy_stats):
        pred = narrow_range(toy_stats, "amount", 0.01)
        index = Index(SALES, ("amount",))
        best = model.best_path(
            SALES, col_sel(toy_stats, pred), frozenset({"amount", "sale_id"}),
            frozenset({index}),
        )
        assert best.kind == "index-scan"
        assert best.indexes == (index,)

    def test_unselective_range_prefers_scan(self, model, toy_stats):
        pred = narrow_range(toy_stats, "amount", 0.95)
        index = Index(SALES, ("amount",))
        best = model.best_path(
            SALES, col_sel(toy_stats, pred), frozenset({"amount", "sale_id"}),
            frozenset({index}),
        )
        assert best.kind == "table-scan"

    def test_covering_index_gives_index_only_scan(self, model, toy_stats):
        pred = narrow_range(toy_stats, "amount", 0.05)
        covering = Index(SALES, ("amount",))
        best = model.best_path(
            SALES, col_sel(toy_stats, pred), frozenset({"amount"}),
            frozenset({covering}),
        )
        assert best.kind == "index-only-scan"

    def test_index_only_cheaper_than_fetching(self, model, toy_stats):
        pred = narrow_range(toy_stats, "amount", 0.05)
        index = Index(SALES, ("amount",))
        paths = model.enumerate_paths(
            SALES, col_sel(toy_stats, pred), frozenset({"amount"}),
            frozenset({index}),
        )
        by_kind = {p.kind: p for p in paths}
        assert by_kind["index-only-scan"].cost < by_kind["index-scan"].cost

    def test_matched_prefix_stops_at_range(self, model, toy_stats):
        eq = EqualityPredicate(ColumnRef(SALES, "product_id"), 7)
        rng = narrow_range(toy_stats, "amount", 0.2)
        index = Index(SALES, ("product_id", "amount", "sale_id"))
        matched, sel = model._matched_prefix(index, col_sel(toy_stats, eq, rng))
        assert matched == 2  # eq + range; nothing after the range column

    def test_unmatched_leading_column_blocks_scan(self, model, toy_stats):
        pred = narrow_range(toy_stats, "amount", 0.01)
        index = Index(SALES, ("sale_date", "amount"))
        paths = model.enumerate_paths(
            SALES, col_sel(toy_stats, pred), frozenset({"amount", "sale_id"}),
            frozenset({index}),
        )
        assert all(p.kind == "table-scan" for p in paths)

    def test_monotone_more_indices_never_worse(self, model, toy_stats):
        pred = narrow_range(toy_stats, "amount", 0.03)
        sels = col_sel(toy_stats, pred)
        needed = frozenset({"amount", "sale_id"})
        base = model.best_path(SALES, sels, needed, frozenset()).cost
        one = model.best_path(
            SALES, sels, needed, frozenset({Index(SALES, ("amount",))})
        ).cost
        two = model.best_path(
            SALES, sels, needed,
            frozenset({Index(SALES, ("amount",)), Index(SALES, ("amount", "sale_id"))}),
        ).cost
        assert one <= base
        assert two <= one


class TestIntersection:
    def test_two_moderate_ranges_intersect(self, model, toy_stats):
        p1 = narrow_range(toy_stats, "amount", 0.05)
        p2 = narrow_range(toy_stats, "sale_date", 0.05)
        a = Index(SALES, ("amount",))
        b = Index(SALES, ("sale_date",))
        paths = model.enumerate_paths(
            SALES, col_sel(toy_stats, p1, p2),
            frozenset({"amount", "sale_date", "sale_id"}),
            frozenset({a, b}),
        )
        kinds = {p.kind for p in paths}
        assert "index-intersection" in kinds
        inter = next(p for p in paths if p.kind == "index-intersection")
        singles = [p for p in paths if p.kind == "index-scan"]
        assert inter.cost < min(p.cost for p in singles)

    def test_same_leading_column_not_intersected(self, model, toy_stats):
        p = narrow_range(toy_stats, "amount", 0.05)
        a = Index(SALES, ("amount",))
        b = Index(SALES, ("amount", "sale_id"))
        paths = model.enumerate_paths(
            SALES, col_sel(toy_stats, p), frozenset({"amount"}),
            frozenset({a, b}),
        )
        assert all(p.kind != "index-intersection" for p in paths)


class TestMaintenance:
    def test_key_change_charged(self, model):
        index = Index(SALES, ("amount",))
        assert model.index_maintenance_cost(index, 100.0, key_change=True) > 0

    def test_non_key_update_free(self, model):
        index = Index(SALES, ("amount",))
        assert model.index_maintenance_cost(index, 100.0, key_change=False) == 0.0

    def test_zero_rows_free(self, model):
        index = Index(SALES, ("amount",))
        assert model.index_maintenance_cost(index, 0.0, key_change=True) == 0.0
