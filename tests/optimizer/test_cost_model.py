"""Tests for whole-statement costing: monotonicity, joins, updates."""

from __future__ import annotations

import itertools

import pytest

from repro.db import Index
from repro.optimizer.cost_model import CostModel, CostModelConfig
from repro.query import delete, select, update
from repro.query.ast import InsertStatement

SALES = "shop.sales"
CUSTOMERS = "shop.customers"


@pytest.fixture()
def model(toy_stats):
    return CostModel(toy_stats)


@pytest.fixture()
def range_query(toy_stats):
    col = toy_stats.column_stats(SALES, "amount")
    width = (col.max_value - col.min_value) * 0.02
    return (
        select(SALES)
        .where_between("amount", col.min_value, col.min_value + width)
        .count_star()
        .build()
    )


@pytest.fixture()
def join_query(toy_stats):
    date = toy_stats.column_stats(SALES, "sale_date")
    width = (date.max_value - date.min_value) * 0.05
    return (
        select(SALES)
        .join(CUSTOMERS, on=("customer_id", "customer_id"))
        .where_between("sale_date", date.min_value, date.min_value + width,
                       table=SALES)
        .where_eq("region", 3, table=CUSTOMERS)
        .count_star()
        .build()
    )


class TestSelectCosting:
    def test_index_reduces_cost(self, model, range_query):
        empty = model.statement_cost(range_query, frozenset())
        indexed = model.statement_cost(
            range_query, frozenset({Index(SALES, ("amount",))})
        )
        assert indexed < empty

    def test_irrelevant_index_is_noop(self, model, range_query):
        empty = model.statement_cost(range_query, frozenset())
        other = model.statement_cost(
            range_query, frozenset({Index(CUSTOMERS, ("region",))})
        )
        assert other == pytest.approx(empty)

    def test_query_cost_monotone_in_config(self, model, range_query):
        """Adding indices never increases a (read-only) query's cost."""
        indices = [
            Index(SALES, ("amount",)),
            Index(SALES, ("amount", "sale_date")),
            Index(SALES, ("sale_date",)),
        ]
        for r in range(len(indices)):
            for combo in itertools.combinations(indices, r):
                base = model.statement_cost(range_query, frozenset(combo))
                for extra in indices:
                    bigger = model.statement_cost(
                        range_query, frozenset(combo) | {extra}
                    )
                    assert bigger <= base + 1e-9

    def test_join_query_uses_both_tables(self, model, join_query):
        plan = model.explain(join_query, frozenset())
        tables = {t for t, _ in plan.access_paths}
        assert tables == {SALES, CUSTOMERS}
        assert len(plan.join_steps) == 1
        assert plan.join_steps[0].method == "hash"

    def test_join_additivity_under_hash_joins(self, model, join_query):
        """Eq (2.1): with hash joins only, per-table benefits are additive."""
        sales_ix = Index(SALES, ("sale_date",))
        cust_ix = Index(CUSTOMERS, ("region",))
        c_empty = model.statement_cost(join_query, frozenset())
        c_s = model.statement_cost(join_query, frozenset({sales_ix}))
        c_c = model.statement_cost(join_query, frozenset({cust_ix}))
        c_both = model.statement_cost(join_query, frozenset({sales_ix, cust_ix}))
        assert c_both == pytest.approx(c_s + c_c - c_empty, rel=1e-9)

    def test_order_by_sort_avoided_by_index(self, model, toy_stats):
        date = toy_stats.column_stats(SALES, "sale_date")
        width = (date.max_value - date.min_value) * 0.2
        query = (
            select(SALES)
            .where_between("sale_date", date.min_value, date.min_value + width)
            .project("sale_date")
            .order_by("sale_date")
            .build()
        )
        no_index = model.explain(query, frozenset())
        assert no_index.sort_cost > 0
        indexed = model.explain(query, frozenset({Index(SALES, ("sale_date",))}))
        assert indexed.sort_cost == 0.0


class TestInljMode:
    @pytest.fixture()
    def lookup_join_query(self):
        """Tiny filtered outer (customers) joining into the big sales table."""
        return (
            select(CUSTOMERS)
            .join(SALES, on=("customer_id", "customer_id"))
            .where_eq("region", 3, table=CUSTOMERS)
            .count_star()
            .build()
        )

    def test_inlj_chosen_for_selective_outer(self, toy_stats, lookup_join_query):
        model = CostModel(toy_stats, CostModelConfig(enable_inlj=True))
        join_ix = Index(SALES, ("customer_id",))
        plan = model.explain(lookup_join_query, frozenset({join_ix}))
        methods = {step.method for step in plan.join_steps}
        assert "index-nested-loop" in methods
        # The inner table is reached through lookups, not a scan.
        assert SALES not in {t for t, _ in plan.access_paths}

    def test_inlj_never_worse_than_hash(self, toy_stats, lookup_join_query):
        plain = CostModel(toy_stats)
        inlj = CostModel(toy_stats, CostModelConfig(enable_inlj=True))
        config = frozenset({Index(SALES, ("customer_id",))})
        assert inlj.statement_cost(lookup_join_query, config) <= (
            plain.statement_cost(lookup_join_query, config) + 1e-9
        )


class TestUpdateCosting:
    def test_update_charges_maintenance_on_set_column_index(self, model, toy_stats):
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", 17000, 17010)
            .build()
        )
        tax_ix = Index(SALES, ("amount",))
        base = model.statement_cost(stmt, frozenset())
        with_ix = model.statement_cost(stmt, frozenset({tax_ix}))
        assert with_ix > base

    def test_update_where_index_helps(self, model, toy_stats):
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", 17000, 17010)
            .build()
        )
        where_ix = Index(SALES, ("sale_date",))
        base = model.statement_cost(stmt, frozenset())
        with_ix = model.statement_cost(stmt, frozenset({where_ix}))
        assert with_ix < base

    def test_update_never_uses_index_only_scan(self, model):
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", 17000, 17100)
            .build()
        )
        config = frozenset({Index(SALES, ("sale_date", "amount"))})
        plan = model.explain(stmt, config)
        kinds = {path.kind for _, path in plan.access_paths}
        assert "index-only-scan" not in kinds

    def test_insert_charges_all_indices(self, model):
        stmt = InsertStatement(SALES, row_count=1000)
        none = model.statement_cost(stmt, frozenset())
        one = model.statement_cost(stmt, frozenset({Index(SALES, ("amount",))}))
        two = model.statement_cost(stmt, frozenset({
            Index(SALES, ("amount",)), Index(SALES, ("sale_date",))
        }))
        assert none < one < two

    def test_insert_cost_scales_with_rows(self, model):
        config = frozenset({Index(SALES, ("amount",))})
        small = model.statement_cost(InsertStatement(SALES, row_count=10), config)
        large = model.statement_cost(InsertStatement(SALES, row_count=10_000), config)
        assert large > 100 * small

    def test_delete_charges_all_indices(self, model):
        stmt = delete(SALES).where_between("sale_date", 17000, 17010).build()
        base = model.statement_cost(stmt, frozenset())
        config = frozenset({Index(SALES, ("amount",))})
        assert model.statement_cost(stmt, config) > base

    def test_plan_describe_smoke(self, model, join_query):
        text = model.explain(join_query, frozenset()).describe()
        assert "total=" in text
        assert "access" in text
